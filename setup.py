from setuptools import setup

setup(
    extras_require={
        # Per-test default timeouts (tests/conftest.py) are enforced by
        # pytest-timeout when available; a SIGALRM fallback covers
        # environments that only have the base toolchain.
        "test": [
            "pytest",
            "pytest-benchmark",
            "pytest-timeout>=2.1",
        ],
    }
)
