"""Unit tests for :class:`repro.UncertainDataset` and realization utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UncertainDataset, UncertainPoint
from repro.exceptions import NotSupportedError, ValidationError
from repro.metrics import MatrixMetric
from repro.uncertain import (
    enumerate_realizations,
    iter_realizations,
    realization_probability,
    sample_realizations,
)
from tests.conftest import make_uncertain_dataset


class TestDatasetBasics:
    def test_properties(self, euclidean_dataset):
        assert euclidean_dataset.size == 6
        assert euclidean_dataset.dimension == 2
        assert euclidean_dataset.max_support_size == 3
        assert euclidean_dataset.total_locations == 18
        assert euclidean_dataset.realization_count == 3**6
        assert len(euclidean_dataset) == 6

    def test_indexing_and_iteration(self, euclidean_dataset):
        assert isinstance(euclidean_dataset[0], UncertainPoint)
        assert len(list(euclidean_dataset)) == 6

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            UncertainDataset(points=())

    def test_mixed_dimensions_rejected(self):
        a = UncertainPoint.certain([0.0, 0.0])
        b = UncertainPoint.certain([0.0, 0.0, 0.0])
        with pytest.raises(ValidationError):
            UncertainDataset(points=(a, b))

    def test_non_point_rejected(self):
        with pytest.raises(ValidationError):
            UncertainDataset(points=("not a point",))

    def test_from_locations_uniform(self):
        dataset = UncertainDataset.from_locations([[[0.0], [1.0]], [[5.0], [6.0]]])
        assert dataset.size == 2
        np.testing.assert_allclose(dataset[0].probabilities, [0.5, 0.5])

    def test_from_locations_with_probabilities(self):
        dataset = UncertainDataset.from_locations(
            [[[0.0], [1.0]]], probabilities=[[0.2, 0.8]], labels=["a"]
        )
        assert dataset[0].label == "a"
        np.testing.assert_allclose(dataset[0].probabilities, [0.2, 0.8])

    def test_from_certain_points(self):
        dataset = UncertainDataset.from_certain_points(np.array([[0.0, 0.0], [1.0, 1.0]]))
        assert dataset.size == 2
        assert all(point.is_certain for point in dataset)

    def test_stacked_views(self, euclidean_dataset):
        locations = euclidean_dataset.all_locations()
        owners = euclidean_dataset.location_owners()
        probabilities = euclidean_dataset.all_probabilities()
        assert locations.shape == (18, 2)
        assert owners.shape == (18,)
        assert probabilities.shape == (18,)
        # Per-point probabilities each sum to one.
        for index in range(euclidean_dataset.size):
            assert probabilities[owners == index].sum() == pytest.approx(1.0)

    def test_expected_points_shape_and_value(self, euclidean_dataset):
        expected = euclidean_dataset.expected_points()
        assert expected.shape == (6, 2)
        manual = (
            euclidean_dataset[0].probabilities[:, None] * euclidean_dataset[0].locations
        ).sum(axis=0)
        np.testing.assert_allclose(expected[0], manual)

    def test_expected_points_rejected_on_finite_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            graph_dataset.expected_points()

    def test_subset_and_with_metric(self, euclidean_dataset):
        subset = euclidean_dataset.subset([0, 2])
        assert subset.size == 2
        matrix = MatrixMetric(np.zeros((1, 1)))
        assert euclidean_dataset.with_metric(matrix).metric is matrix


class TestSamplingAndSerialization:
    def test_sample_realization_shape(self, euclidean_dataset):
        realization = euclidean_dataset.sample_realization(rng=0)
        assert realization.shape == (6, 2)

    def test_sample_realizations_shape(self, euclidean_dataset):
        realizations = euclidean_dataset.sample_realizations(10, rng=0)
        assert realizations.shape == (10, 6, 2)

    def test_sampled_locations_are_from_support(self, euclidean_dataset):
        realizations = euclidean_dataset.sample_realizations(20, rng=1)
        for point_index, point in enumerate(euclidean_dataset):
            for sample in realizations[:, point_index, :]:
                assert any(np.allclose(sample, location) for location in point.locations)

    def test_json_round_trip(self, tmp_path, euclidean_dataset):
        path = tmp_path / "dataset.json"
        euclidean_dataset.save_json(path)
        restored = UncertainDataset.load_json(path)
        assert restored.size == euclidean_dataset.size
        np.testing.assert_allclose(restored.all_locations(), euclidean_dataset.all_locations())
        np.testing.assert_allclose(restored.all_probabilities(), euclidean_dataset.all_probabilities())

    def test_from_dict_empty_rejected(self):
        with pytest.raises(ValidationError):
            UncertainDataset.from_dict({"points": []})


class TestRealizations:
    def test_enumeration_count_and_mass(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=1, seed=1)
        realizations = enumerate_realizations(dataset)
        assert len(realizations) == 8
        assert sum(r.probability for r in realizations) == pytest.approx(1.0)

    def test_each_realization_picks_one_location_per_point(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=2)
        for realization in iter_realizations(dataset):
            assert realization.locations.shape == (3, 2)
            for point_index, choice in enumerate(realization.choice_indices):
                np.testing.assert_allclose(
                    realization.locations[point_index], dataset[point_index].locations[choice]
                )

    def test_enumeration_cap(self):
        dataset = make_uncertain_dataset(n=8, z=6, dimension=1, seed=3)
        with pytest.raises(ValidationError):
            enumerate_realizations(dataset, max_realizations=1000)

    def test_realization_probability(self):
        dataset = make_uncertain_dataset(n=2, z=2, dimension=1, seed=4)
        probability = realization_probability(dataset, (0, 1))
        expected = float(dataset[0].probabilities[0] * dataset[1].probabilities[1])
        assert probability == pytest.approx(expected)

    def test_realization_probability_validation(self):
        dataset = make_uncertain_dataset(n=2, z=2, dimension=1, seed=4)
        with pytest.raises(ValidationError):
            realization_probability(dataset, (0,))
        with pytest.raises(ValidationError):
            realization_probability(dataset, (0, 5))

    def test_sample_realizations_helper(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=5)
        samples = sample_realizations(dataset, 7, rng=0)
        assert samples.shape == (7, 3, 2)
