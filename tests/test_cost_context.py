"""Differential tests for the shared CostContext cost-evaluation service.

Every path the refactor re-routed through the shared context — assigned
batch scoring, the rank-keyed unassigned evaluator, the round-amortized
local-search sweep, the baselines and the polish path — is compared against
the scratch single-call engines (:func:`expected_cost_assigned` /
:func:`expected_cost_unassigned`) on randomized instances that include
zero-probability support entries and repeated values.  Tolerances are a few
ulps: the shared paths fold the same entries in a different order, which is
the only permitted difference.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms.unrestricted import solve_unrestricted_assigned
from repro.assignments import (
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
    OptimalAssignment,
)
from repro.baselines import (
    brute_force_restricted_assigned,
    brute_force_unassigned,
    guha_munagala_baseline,
    wang_zhang_1d,
)
from repro.cost import (
    CostContext,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_max_batch_values,
)
from repro.exceptions import ValidationError
from repro.experiments.ablation import AblationSettings, run_assignment_ablation
from repro.metrics import EuclideanMetric
from repro.uncertain import UncertainDataset, UncertainPoint

RTOL = 1e-12
ATOL = 1e-12


def make_tricky_dataset(seed: int, n: int = 5, z: int = 4, dimension: int = 2) -> UncertainDataset:
    """Clustered dataset with zero-probability entries and repeated locations."""
    rng = np.random.default_rng(seed)
    points = []
    for index in range(n):
        base = rng.normal(scale=4.0, size=dimension)
        locations = base + rng.normal(scale=0.8, size=(z, dimension))
        if z > 1 and rng.random() < 0.5:
            locations[rng.integers(1, z)] = locations[0]  # repeated values
        probabilities = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.6:
            probabilities[rng.integers(0, z)] = 0.0  # explicit zero mass
            probabilities = probabilities / probabilities.sum()
        points.append(UncertainPoint(locations=locations, probabilities=probabilities))
    return UncertainDataset(points=tuple(points), metric=EuclideanMetric())


class TestAssignedPaths:
    @pytest.mark.parametrize("seed", range(8))
    def test_assigned_costs_match_scratch_engine(self, seed):
        dataset = make_tricky_dataset(seed)
        candidates = np.vstack([dataset.all_locations(), dataset.expected_points()])
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 100)
        rows = rng.integers(0, candidates.shape[0], size=(6, dataset.size))
        batch = context.assigned_costs(rows)
        for row, labels in zip(batch, rows):
            scratch = expected_cost_assigned(dataset, candidates[labels], np.arange(dataset.size))
            assert row == pytest.approx(scratch, rel=RTOL, abs=ATOL)
            assert context.assigned_cost(labels) == pytest.approx(scratch, rel=RTOL, abs=ATOL)

    @pytest.mark.parametrize("seed", range(8))
    def test_local_search_sweep_matches_per_point_profiles(self, seed):
        dataset = make_tricky_dataset(seed, n=6, z=3)
        centers = dataset.expected_points()[:3]
        context = CostContext(dataset, centers)
        evaluator = context.evaluator
        rng = np.random.default_rng(seed + 200)
        assignment = rng.integers(0, 3, size=dataset.size)
        sweep = context.local_search_sweep(assignment)
        assert sweep.cost() == pytest.approx(context.assigned_cost(assignment), rel=RTOL, abs=ATOL)
        all_columns = np.arange(3)
        for move in range(6):
            for point in range(dataset.size):
                via_sweep = evaluator.move_costs(sweep.rest_profile(point), all_columns)
                via_profile = evaluator.move_costs(
                    evaluator.rest_profile(assignment, point), all_columns
                )
                np.testing.assert_allclose(via_sweep, via_profile, rtol=1e-9, atol=1e-12)
            point = int(rng.integers(0, dataset.size))
            column = int(rng.integers(0, 3))
            sweep.apply_move(point, column)
            assignment[point] = column
            assert sweep.cost() == pytest.approx(
                context.assigned_cost(assignment), rel=1e-9, abs=1e-12
            )

    def test_expected_matrix_matches_policy_matrix(self):
        dataset = make_tricky_dataset(3)
        candidates = dataset.all_locations()
        context = CostContext(dataset, candidates)
        policy_matrix = ExpectedDistanceAssignment().candidate_scores(dataset, candidates)
        np.testing.assert_array_equal(context.expected, policy_matrix)

    def test_score_assignments_shape_validation(self):
        dataset = make_tricky_dataset(4)
        context = CostContext(dataset, dataset.all_locations())
        with pytest.raises(ValidationError):
            context.score_assignments(np.zeros((2, 2)), np.array([[0, 1]]))


class TestUnassignedPaths:
    @pytest.mark.parametrize("seed", range(8))
    def test_rank_keyed_evaluator_matches_scratch_engine(self, seed):
        dataset = make_tricky_dataset(seed, n=4, z=3)
        candidates = np.vstack([dataset.all_locations(), dataset.expected_points()])
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 300)
        subsets = np.array(
            [rng.choice(candidates.shape[0], size=3, replace=False) for _ in range(10)]
        )
        batch = context.unassigned_costs(subsets)
        for row, subset in zip(batch, subsets):
            scratch = expected_cost_unassigned(dataset, candidates[subset])
            assert row == pytest.approx(scratch, rel=RTOL, abs=ATOL)

    @pytest.mark.parametrize("seed", range(4))
    def test_rank_keyed_evaluator_matches_min_reduce_batch(self, seed):
        dataset = make_tricky_dataset(seed, n=4, z=4)
        candidates = dataset.all_locations()
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 400)
        subsets = np.array(
            [rng.choice(candidates.shape[0], size=2, replace=False) for _ in range(7)]
        )
        # The historical per-chunk path: min-reduce then re-sort the values.
        value_rows = [support[:, subsets].min(axis=2).T for support in context.supports]
        reference = expected_max_batch_values(value_rows, context.probabilities)
        np.testing.assert_allclose(context.unassigned_costs(subsets), reference, rtol=RTOL)

    def test_empty_subset_rejected(self):
        dataset = make_tricky_dataset(5)
        context = CostContext(dataset, dataset.all_locations())
        with pytest.raises(ValidationError):
            context.unassigned_costs(np.empty((2, 0), dtype=int))

    def test_out_of_range_subset_rejected(self):
        dataset = make_tricky_dataset(6)
        context = CostContext(dataset, dataset.all_locations())
        with pytest.raises(ValidationError):
            context.unassigned_costs(np.array([[0, 999]]))


def make_ragged_dataset(seed: int, n: int = 6) -> UncertainDataset:
    """Points with different support sizes (exercises rank-merge grouping)."""
    rng = np.random.default_rng(seed)
    points = []
    for index in range(n):
        z = int(rng.integers(1, 5))
        locations = rng.normal(scale=3.0, size=(z, 2))
        if z > 1 and rng.random() < 0.5:
            locations[z - 1] = locations[0]  # tied values across locations
        probabilities = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.5:
            probabilities[0] = 0.0
            probabilities = probabilities / probabilities.sum()
        points.append(UncertainPoint(locations=locations, probabilities=probabilities))
    return UncertainDataset(points=tuple(points), metric=EuclideanMetric())


class TestRankMergeSweep:
    """The rank-merge sweep must be *bit-identical* to the float-sort sweep.

    The global ranking is a stable sort over the same entry enumeration the
    per-point rankings use, so per-row integer merges reproduce the float
    sort's exact tie order — equality here is ``==``, not ``allclose``.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_bit_identical_to_float_sort(self, seed):
        dataset = make_tricky_dataset(seed, n=5, z=4)
        candidates = np.vstack([dataset.all_locations(), dataset.expected_points()])
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 500)
        subsets = np.array(
            [rng.choice(candidates.shape[0], size=3, replace=False) for _ in range(40)]
        )
        merged = context.unassigned_costs(subsets, chunk_rows=16)
        float_sorted = context._unassigned_costs_float_sort(subsets, chunk_rows=16)
        assert np.array_equal(merged, float_sorted)

    @pytest.mark.parametrize("seed", range(6))
    def test_bit_identical_on_ragged_supports(self, seed):
        dataset = make_ragged_dataset(seed)
        candidates = dataset.all_locations()
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 600)
        size = min(3, candidates.shape[0])
        subsets = np.array(
            [rng.choice(candidates.shape[0], size=size, replace=False) for _ in range(25)]
        )
        merged = context.unassigned_costs(subsets, chunk_rows=7)
        float_sorted = context._unassigned_costs_float_sort(subsets, chunk_rows=7)
        assert np.array_equal(merged, float_sorted)

    def test_single_candidate_subsets(self):
        dataset = make_ragged_dataset(3)
        context = CostContext(dataset, dataset.all_locations())
        subsets = np.arange(context.candidate_count).reshape(-1, 1)
        assert np.array_equal(
            context.unassigned_costs(subsets),
            context._unassigned_costs_float_sort(subsets),
        )

    def test_tables_invalidate_on_column_replacement(self):
        dataset = make_tricky_dataset(9, n=4, z=3)
        candidates = dataset.all_locations()
        context = CostContext(dataset, candidates)
        subsets = np.array([[0, 1], [2, 3], [4, 5]])
        context.unassigned_costs(subsets)  # builds the rank-merge tables
        replacement = candidates[:2] + 0.75
        context.replace_candidate_columns(np.array([0, 1]), replacement)
        fresh = CostContext(dataset, context.candidates.copy())
        assert np.array_equal(
            context.unassigned_costs(subsets), fresh.unassigned_costs(subsets)
        )

    def test_chunk_rows_do_not_change_results(self):
        dataset = make_tricky_dataset(11, n=5, z=4)
        context = CostContext(dataset, dataset.all_locations())
        rng = np.random.default_rng(77)
        subsets = np.array(
            [rng.choice(context.candidate_count, size=2, replace=False) for _ in range(23)]
        )
        baseline = context.unassigned_costs(subsets, chunk_rows=1024)
        for chunk_rows in (1, 5, 23):
            assert np.array_equal(
                context.unassigned_costs(subsets, chunk_rows=chunk_rows), baseline
            )


class TestCandidateScores:
    @pytest.mark.parametrize(
        "policy",
        [
            ExpectedDistanceAssignment(),
            ExpectedPointAssignment(),
            OneCenterAssignment(),
            NearestLocationAssignment(),
        ],
        ids=lambda policy: policy.name,
    )
    def test_argmin_of_scores_reproduces_assign(self, policy):
        dataset = make_tricky_dataset(7)
        centers = dataset.expected_points()[:3]
        scores = policy.candidate_scores(dataset, centers)
        assert scores is not None and scores.shape == (dataset.size, 3)
        np.testing.assert_array_equal(scores.argmin(axis=1), policy(dataset, centers))

    def test_optimal_assignment_is_black_box(self):
        dataset = make_tricky_dataset(8)
        centers = dataset.expected_points()[:2]
        assert OptimalAssignment().candidate_scores(dataset, centers) is None

    def test_optimal_assignment_rejects_mismatched_context(self):
        dataset = make_tricky_dataset(9)
        centers = dataset.expected_points()[:2]
        context = CostContext(dataset, dataset.all_locations())
        with pytest.raises(ValidationError):
            OptimalAssignment(context=context)(dataset, centers)

    def test_optimal_assignment_rejects_context_for_other_dataset(self):
        dataset_a = make_tricky_dataset(9)
        dataset_b = make_tricky_dataset(10)
        centers = dataset_a.expected_points()[:2]
        context = CostContext(dataset_a, centers)
        with pytest.raises(ValidationError):
            OptimalAssignment(context=context)(dataset_b, centers)


class TestLazyStructure:
    def test_streaming_context_never_pins_supports(self):
        dataset = make_tricky_dataset(12)
        candidates = dataset.all_locations()
        # The threshold-greedy shape: expected matrix + one final score over
        # a huge candidate set must not pin the (z_i, m) supports or the
        # per-candidate sorted columns.
        context = CostContext(dataset, candidates, pin_supports=False)
        matrix = context.expected
        assert matrix.shape == (dataset.size, candidates.shape[0])
        labels = matrix.argmin(axis=1)
        cost = context.assigned_cost(labels)
        assert context._supports is None and context._evaluator is None
        scratch = expected_cost_assigned(dataset, candidates[labels], np.arange(dataset.size))
        assert cost == pytest.approx(scratch, rel=RTOL, abs=ATOL)

    def test_default_context_pins_supports_once_for_expected(self):
        dataset = make_tricky_dataset(12)
        candidates = dataset.all_locations()
        context = CostContext(dataset, candidates)
        context.expected
        # Batch consumers read expected then score: the supports the matrix
        # derived from are pinned so the evaluator reuses the same pass.
        assert context._supports is not None

    def test_single_score_paths_agree_with_evaluator_path(self):
        dataset = make_tricky_dataset(13)
        candidates = dataset.all_locations()
        rng = np.random.default_rng(0)
        labels = rng.integers(0, candidates.shape[0], size=dataset.size)
        lazy = CostContext(dataset, candidates).assigned_cost(labels)
        eager = CostContext(dataset, candidates)
        eager.evaluator  # force the cached-columns path
        assert lazy == pytest.approx(eager.assigned_cost(labels), rel=RTOL, abs=ATOL)

    def test_single_score_validates_assignment(self):
        dataset = make_tricky_dataset(14)
        context = CostContext(dataset, dataset.all_locations())
        with pytest.raises(ValidationError):
            context.assigned_cost(np.zeros(dataset.size + 1, dtype=int))
        with pytest.raises(ValidationError):
            context.assigned_cost(np.full(dataset.size, 999))


class TestRefactoredLayersAgainstScratchEngine:
    """The bit-level differential suite: every refactored layer's reported
    cost must equal the scratch engine's score of its own output."""

    @pytest.mark.parametrize("seed", range(6))
    def test_guha_munagala_cost_is_scratch_cost(self, seed):
        dataset = make_tricky_dataset(seed, n=6, z=3)
        result = guha_munagala_baseline(dataset, 2)
        scratch = expected_cost_assigned(dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(scratch, rel=RTOL, abs=ATOL)

    @pytest.mark.parametrize("seed", range(6))
    def test_polish_path_cost_is_scratch_cost(self, seed):
        dataset = make_tricky_dataset(seed, n=6, z=3)
        result = solve_unrestricted_assigned(dataset, 2, polish_assignment=True)
        scratch = expected_cost_assigned(dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(scratch, rel=RTOL, abs=ATOL)
        unpolished = solve_unrestricted_assigned(dataset, 2, polish_assignment=False)
        assert result.expected_cost <= unpolished.expected_cost + ATOL

    @pytest.mark.parametrize("seed", range(3))
    def test_brute_force_restricted_policies_match_per_subset_loop(self, seed):
        dataset = make_tricky_dataset(seed, n=4, z=2)
        candidates = dataset.all_locations()[:6]
        for policy_type in (ExpectedDistanceAssignment, ExpectedPointAssignment):
            result = brute_force_restricted_assigned(
                dataset, 2, assignment=policy_type(), candidates=candidates
            )
            # Reference: the pre-refactor per-subset loop over scratch calls.
            from itertools import combinations

            best = np.inf
            for subset in combinations(range(candidates.shape[0]), 2):
                centers = candidates[list(subset)]
                labels = policy_type()(dataset, centers)
                best = min(best, expected_cost_assigned(dataset, centers, labels))
            assert result.expected_cost == pytest.approx(best, rel=1e-9, abs=1e-9)

    @pytest.mark.parametrize("seed", range(3))
    def test_brute_force_unassigned_matches_per_subset_loop(self, seed):
        dataset = make_tricky_dataset(seed, n=4, z=2)
        candidates = dataset.all_locations()[:6]
        result = brute_force_unassigned(dataset, 2, candidates=candidates)
        from itertools import combinations

        best = np.inf
        for subset in combinations(range(candidates.shape[0]), 2):
            best = min(best, expected_cost_unassigned(dataset, candidates[list(subset)]))
        assert result.expected_cost == pytest.approx(best, rel=1e-9, abs=1e-9)

    def test_wang_zhang_cost_is_scratch_cost(self):
        dataset = make_tricky_dataset(11, n=5, z=2, dimension=1)
        result = wang_zhang_1d(dataset, 2)
        scratch = expected_cost_assigned(dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(scratch, rel=1e-9, abs=1e-9)

    def test_assignment_ablation_rows_are_scratch_costs(self):
        # Re-run one ablation configuration and check each batched cost
        # equals the scratch engine's score of the same (centers, labels).
        settings = AblationSettings(trials=1, n=8, z=3, k=2)
        record = run_assignment_ablation(settings)
        from repro.deterministic.gonzalez import gonzalez_kcenter
        from repro.uncertain.reduction import reduce_dataset
        from repro.workloads.synthetic import gaussian_clusters

        dataset, spec = gaussian_clusters(n=settings.n, z=settings.z, dimension=2, seed=settings.seed + 50)
        representatives = reduce_dataset(dataset, "expected-point")
        centers = gonzalez_kcenter(representatives, settings.k, dataset.metric).centers
        row = next(r for r in record.rows if r.configuration == spec.describe())
        for policy in (
            ExpectedDistanceAssignment(),
            ExpectedPointAssignment(),
            OneCenterAssignment(),
            NearestLocationAssignment(),
        ):
            labels = policy(dataset, centers)
            scratch = expected_cost_assigned(dataset, centers, labels)
            measured = row.measured[f"cost_{policy.name.replace('-', '_')}"]
            assert measured == pytest.approx(scratch, rel=RTOL, abs=ATOL)
