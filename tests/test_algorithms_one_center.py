"""Tests for the uncertain 1-center algorithms (Theorem 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import UncertainDataset, UncertainPoint
from repro.algorithms import (
    best_expected_point_one_center,
    exact_uncertain_one_center_discrete,
    expected_point_one_center,
    refined_uncertain_one_center,
)
from repro.cost import expected_one_center_cost
from repro.exceptions import NotSupportedError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestTheorem21:
    def test_basic_shape_and_metadata(self, euclidean_dataset):
        result = expected_point_one_center(euclidean_dataset)
        assert result.centers.shape == (1, euclidean_dataset.dimension)
        assert result.objective == "unassigned"
        assert result.guaranteed_factor == 2.0
        assert result.metadata["algorithm"] == "theorem-2.1"

    def test_center_is_expected_point_of_chosen_point(self, euclidean_dataset):
        result = expected_point_one_center(euclidean_dataset, point_index=2)
        np.testing.assert_allclose(result.centers[0], euclidean_dataset[2].expected_point())

    def test_cost_matches_engine(self, euclidean_dataset):
        result = expected_point_one_center(euclidean_dataset)
        assert result.expected_cost == pytest.approx(
            expected_one_center_cost(euclidean_dataset, result.centers[0])
        )

    def test_invalid_point_index(self, euclidean_dataset):
        with pytest.raises(IndexError):
            expected_point_one_center(euclidean_dataset, point_index=99)

    def test_rejected_on_graph_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            expected_point_one_center(graph_dataset)

    def test_factor_two_against_refined_optimum(self):
        # Theorem 2.1's guarantee holds for every choice of the anchor point.
        for seed in range(4):
            dataset = make_uncertain_dataset(n=8, z=3, dimension=2, seed=seed, spread=3.0)
            reference = refined_uncertain_one_center(dataset)
            for index in range(dataset.size):
                result = expected_point_one_center(dataset, point_index=index)
                assert result.expected_cost <= 2.0 * reference.expected_cost + 1e-9

    def test_certain_single_point_is_exact(self):
        dataset = UncertainDataset(points=(UncertainPoint.certain([1.0, 2.0]),))
        result = expected_point_one_center(dataset)
        assert result.expected_cost == pytest.approx(0.0, abs=1e-12)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_property_factor_two_vs_discrete_reference(self, seed):
        dataset = make_uncertain_dataset(n=5, z=3, dimension=2, seed=seed)
        reference = exact_uncertain_one_center_discrete(dataset)
        result = expected_point_one_center(dataset)
        # The discrete reference over locations + expected points upper-bounds
        # the true optimum, so the factor-2 guarantee must hold against the
        # true optimum; allow the tiny slack for the candidate discretisation.
        assert result.expected_cost <= 2.0 * reference.expected_cost + 1e-9


class TestStrongerReferences:
    def test_best_expected_point_never_worse_than_default(self, euclidean_dataset):
        default = expected_point_one_center(euclidean_dataset)
        best = best_expected_point_one_center(euclidean_dataset)
        assert best.expected_cost <= default.expected_cost + 1e-12
        assert best.guaranteed_factor == 2.0

    def test_refined_never_worse_than_best_expected_point(self, euclidean_dataset):
        best = best_expected_point_one_center(euclidean_dataset)
        refined = refined_uncertain_one_center(euclidean_dataset)
        assert refined.expected_cost <= best.expected_cost + 1e-9

    def test_discrete_reference_on_graph_metric_is_optimal(self):
        dataset = make_graph_dataset(n=4, z=2, nodes=10, seed=3)
        result = exact_uncertain_one_center_discrete(dataset)
        # Exhaustive check over every node of the graph.
        best = min(
            expected_one_center_cost(dataset, element)
            for element in dataset.metric.all_elements()
        )
        assert result.expected_cost == pytest.approx(best)

    def test_discrete_reference_custom_candidates(self, euclidean_dataset):
        candidates = euclidean_dataset.all_locations()
        result = exact_uncertain_one_center_discrete(euclidean_dataset, candidates=candidates)
        assert any(
            np.allclose(result.centers[0], candidate) for candidate in candidates
        )

    def test_refined_rejected_on_graph_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            refined_uncertain_one_center(graph_dataset)
