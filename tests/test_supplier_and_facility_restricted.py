"""Tests for the k-supplier substrate and the facility-restricted variant."""

from __future__ import annotations

import numpy as np
import pytest

from repro import k_supplier, exact_k_supplier, solve_facility_restricted
from repro.baselines import brute_force_unrestricted_assigned
from repro.cost import expected_cost_assigned
from repro.exceptions import ValidationError
from repro.metrics import EuclideanMetric
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestKSupplier:
    def test_centers_come_from_facilities(self, rng):
        clients = rng.normal(size=(20, 2))
        facilities = rng.normal(size=(8, 2)) * 2
        result = k_supplier(clients, facilities, 3)
        for center in result.centers:
            assert any(np.allclose(center, facility) for facility in facilities)

    def test_three_approximation_vs_exact(self, rng):
        clients = rng.normal(size=(12, 2))
        facilities = rng.normal(size=(6, 2))
        approx = k_supplier(clients, facilities, 2)
        exact = exact_k_supplier(clients, facilities, 2)
        assert exact.radius <= approx.radius + 1e-9
        assert approx.radius <= 3.0 * exact.radius + 1e-7

    def test_exact_is_optimal_over_facility_subsets(self, rng):
        from itertools import combinations

        clients = rng.normal(size=(8, 2))
        facilities = rng.normal(size=(5, 2))
        metric = EuclideanMetric()
        exact = exact_k_supplier(clients, facilities, 2)
        best = min(
            metric.pairwise(clients, facilities[list(subset)]).min(axis=1).max()
            for subset in combinations(range(5), 2)
        )
        assert exact.radius == pytest.approx(best, rel=1e-9)

    def test_single_facility(self, rng):
        clients = rng.normal(size=(10, 2))
        facilities = np.array([[0.0, 0.0]])
        result = k_supplier(clients, facilities, 3)
        assert result.centers.shape == (1, 2)
        assert result.radius == pytest.approx(np.linalg.norm(clients, axis=1).max())

    def test_k_larger_than_facilities_clamped(self, rng):
        clients = rng.normal(size=(6, 2))
        facilities = rng.normal(size=(2, 2))
        result = k_supplier(clients, facilities, 5)
        assert result.centers.shape[0] <= 2

    def test_exact_rejects_large_instances(self, rng):
        clients = rng.normal(size=(250, 2))
        facilities = rng.normal(size=(10, 2))
        with pytest.raises(ValidationError):
            exact_k_supplier(clients, facilities, 2)

    def test_approximation_factor_metadata(self, rng):
        clients = rng.normal(size=(10, 2))
        facilities = rng.normal(size=(4, 2))
        assert k_supplier(clients, facilities, 2).approximation_factor == 3.0
        assert exact_k_supplier(clients, facilities, 2).approximation_factor == 1.0


class TestFacilityRestrictedUncertain:
    def test_centers_restricted_to_facilities(self, euclidean_dataset, rng):
        facilities = rng.normal(scale=5.0, size=(6, 2))
        result = solve_facility_restricted(euclidean_dataset, 2, facilities)
        for center in result.centers:
            assert any(np.allclose(center, facility) for facility in facilities)
        assert result.objective == "facility-restricted-assigned"

    def test_cost_consistent_with_engine(self, euclidean_dataset, rng):
        facilities = rng.normal(scale=5.0, size=(6, 2))
        result = solve_facility_restricted(euclidean_dataset, 2, facilities)
        recomputed = expected_cost_assigned(euclidean_dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(recomputed)

    def test_exact_never_worse_than_approximate(self, euclidean_dataset, rng):
        facilities = rng.normal(scale=5.0, size=(6, 2))
        approx = solve_facility_restricted(euclidean_dataset, 2, facilities, exact=False)
        exact = solve_facility_restricted(euclidean_dataset, 2, facilities, exact=True)
        # The exact supplier solver gives a smaller (or equal) deterministic
        # radius, which typically (not provably per-instance) carries over.
        assert exact.metadata["deterministic_factor"] == 1.0
        assert approx.metadata["deterministic_factor"] == 3.0

    def test_guarantee_vs_facility_restricted_reference(self):
        # The guarantee is relative to the best assigned solution whose
        # centers sit on facilities; brute force over the facilities provides
        # that reference on micro instances.
        dataset = make_uncertain_dataset(n=5, z=2, dimension=2, seed=31, spread=6.0)
        rng = np.random.default_rng(0)
        facilities = np.vstack([dataset.expected_points(), rng.normal(scale=6.0, size=(3, 2))])
        reference = brute_force_unrestricted_assigned(dataset, 2, candidates=facilities)
        for assignment in ("expected-distance", "expected-point"):
            result = solve_facility_restricted(dataset, 2, facilities, assignment=assignment)
            assert result.guaranteed_factor is not None
            assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-9

    def test_graph_metric_variant(self, graph_dataset):
        facilities = graph_dataset.metric.all_elements()[::2]
        result = solve_facility_restricted(graph_dataset, 2, facilities, assignment="one-center")
        size = graph_dataset.metric.size
        for center in result.centers:
            assert 0 <= int(center[0]) < size
        assert result.guaranteed_factor == pytest.approx(3.0 + 2.0 * 3.0)

    def test_unknown_assignment_rejected(self, euclidean_dataset, rng):
        facilities = rng.normal(size=(4, 2))
        with pytest.raises(ValidationError):
            solve_facility_restricted(euclidean_dataset, 2, facilities, assignment="bogus")

    def test_expected_point_assignment_factor(self, euclidean_dataset, rng):
        facilities = rng.normal(scale=5.0, size=(6, 2))
        result = solve_facility_restricted(euclidean_dataset, 2, facilities, assignment="expected-point")
        # 2 + f with the 3-approximate supplier solver.
        assert result.guaranteed_factor == pytest.approx(5.0)
