"""Unit tests for the shared validation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro._validation import (
    as_point_array,
    as_probability_vector,
    as_rng,
    as_single_point,
    check_epsilon,
    check_positive_int,
    check_same_dimension,
)
from repro.exceptions import DimensionMismatchError, ProbabilityError, ValidationError


class TestAsPointArray:
    def test_list_of_lists(self):
        array = as_point_array([[1.0, 2.0], [3.0, 4.0]])
        assert array.shape == (2, 2)
        assert array.dtype == np.float64

    def test_flat_list_becomes_column(self):
        array = as_point_array([1.0, 2.0, 3.0])
        assert array.shape == (3, 1)

    def test_empty_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array(np.empty((0, 2)))

    def test_zero_dimension_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array(np.empty((3, 0)))

    def test_three_dimensional_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array(np.zeros((2, 2, 2)))

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array([[1.0, np.nan]])

    def test_inf_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array([[np.inf, 0.0]])

    def test_non_numeric_rejected(self):
        with pytest.raises(ValidationError):
            as_point_array([["a", "b"]])


class TestAsSinglePoint:
    def test_scalar_becomes_vector(self):
        assert as_single_point(3.0).shape == (1,)

    def test_vector_passthrough(self):
        np.testing.assert_allclose(as_single_point([1.0, 2.0]), [1.0, 2.0])

    def test_matrix_rejected(self):
        with pytest.raises(ValidationError):
            as_single_point([[1.0, 2.0]])

    def test_nan_rejected(self):
        with pytest.raises(ValidationError):
            as_single_point([np.nan])


class TestProbabilityVector:
    def test_valid(self):
        vector = as_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(vector, [0.25, 0.75])

    def test_sum_not_one_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([0.2, 0.2])

    def test_normalize(self):
        vector = as_probability_vector([2.0, 2.0], normalize=True)
        np.testing.assert_allclose(vector, [0.5, 0.5])

    def test_negative_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([-0.5, 1.5])

    def test_size_mismatch_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([1.0], size=2)

    def test_empty_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([])

    def test_nan_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([np.nan, 1.0])

    def test_normalize_zero_sum_rejected(self):
        with pytest.raises(ProbabilityError):
            as_probability_vector([0.0, 0.0], normalize=True)

    def test_tiny_negative_clipped(self):
        vector = as_probability_vector([1.0 + 1e-12, -1e-12])
        assert vector[1] == 0.0
        assert np.isclose(vector.sum(), 1.0)


class TestScalarChecks:
    def test_check_positive_int_ok(self):
        assert check_positive_int(3, name="k") == 3

    def test_check_positive_int_zero_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(0, name="k")

    def test_check_positive_int_bool_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(True, name="k")

    def test_check_positive_int_float_rejected(self):
        with pytest.raises(ValidationError):
            check_positive_int(2.0, name="k")

    def test_check_positive_int_maximum(self):
        with pytest.raises(ValidationError):
            check_positive_int(10, name="k", maximum=5)

    def test_check_epsilon_ok(self):
        assert check_epsilon(0.1) == pytest.approx(0.1)
        assert check_epsilon(0) == 0.0

    def test_check_epsilon_negative_rejected(self):
        with pytest.raises(ValidationError):
            check_epsilon(-0.1)

    def test_check_epsilon_nan_rejected(self):
        with pytest.raises(ValidationError):
            check_epsilon(float("nan"))


class TestDimensionAndRng:
    def test_same_dimension_ok(self):
        a = np.zeros((3, 2))
        b = np.zeros((5, 2))
        assert check_same_dimension(a, b) == 2

    def test_dimension_mismatch(self):
        with pytest.raises(DimensionMismatchError):
            check_same_dimension(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_as_rng_from_seed(self):
        rng1 = as_rng(7)
        rng2 = as_rng(7)
        assert rng1.integers(0, 100) == rng2.integers(0, 100)

    def test_as_rng_passthrough(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator
