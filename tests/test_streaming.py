"""Tests for the streaming uncertain 1-center sketch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import expected_point_one_center, refined_uncertain_one_center
from repro.exceptions import ValidationError
from repro.uncertain import StreamingOneCenterSketch, UncertainDataset
from tests.conftest import make_uncertain_dataset


class TestStreamingSketch:
    def test_empty_sketch_rejects_queries(self):
        sketch = StreamingOneCenterSketch()
        with pytest.raises(ValidationError):
            _ = sketch.center
        with pytest.raises(ValidationError):
            sketch.estimated_cost()

    def test_center_is_first_points_expected_point(self, euclidean_dataset):
        sketch = StreamingOneCenterSketch()
        sketch.extend(euclidean_dataset.points)
        np.testing.assert_allclose(sketch.center, euclidean_dataset[0].expected_point())
        assert sketch.count == euclidean_dataset.size
        assert sketch.guaranteed_factor == 2.0

    def test_matches_batch_theorem_2_1(self, euclidean_dataset):
        sketch = StreamingOneCenterSketch()
        sketch.extend(euclidean_dataset.points)
        batch = expected_point_one_center(euclidean_dataset)
        exact_cost = sketch.finalise(euclidean_dataset)
        assert exact_cost == pytest.approx(batch.expected_cost)

    def test_factor_two_guarantee_holds(self):
        dataset = make_uncertain_dataset(n=12, z=3, dimension=2, seed=3)
        sketch = StreamingOneCenterSketch()
        sketch.extend(dataset.points)
        reference = refined_uncertain_one_center(dataset)
        assert sketch.finalise(dataset) <= 2.0 * reference.expected_cost + 1e-9

    def test_estimated_cost_exact_when_reservoir_large(self):
        dataset = make_uncertain_dataset(n=10, z=2, dimension=2, seed=5)
        sketch = StreamingOneCenterSketch(reservoir_size=100)
        sketch.extend(dataset.points)
        assert sketch.estimated_cost() == pytest.approx(sketch.finalise(dataset))

    def test_estimated_cost_reasonable_when_sampling(self):
        dataset = make_uncertain_dataset(n=60, z=2, dimension=2, seed=6)
        sketch = StreamingOneCenterSketch(reservoir_size=20, seed=1)
        sketch.extend(dataset.points)
        exact = sketch.finalise(dataset)
        estimate = sketch.estimated_cost()
        # The sample estimate is downward biased but must stay in the ballpark.
        assert 0.3 * exact <= estimate <= exact + 1e-9

    def test_reservoir_respects_memory_bound(self):
        dataset = make_uncertain_dataset(n=50, z=2, dimension=2, seed=7)
        sketch = StreamingOneCenterSketch(reservoir_size=8)
        sketch.extend(dataset.points)
        assert len(sketch._reservoir) == 8

    def test_dimension_change_rejected(self):
        sketch = StreamingOneCenterSketch()
        first = make_uncertain_dataset(n=1, z=2, dimension=2, seed=0)[0]
        second = make_uncertain_dataset(n=1, z=2, dimension=3, seed=0)[0]
        sketch.update(first)
        with pytest.raises(ValidationError):
            sketch.update(second)

    def test_non_point_rejected(self):
        sketch = StreamingOneCenterSketch()
        with pytest.raises(ValidationError):
            sketch.update("not a point")

    def test_order_only_affects_anchor(self):
        dataset = make_uncertain_dataset(n=8, z=2, dimension=2, seed=9)
        forward = StreamingOneCenterSketch()
        forward.extend(dataset.points)
        backward = StreamingOneCenterSketch()
        backward.extend(tuple(reversed(dataset.points)))
        np.testing.assert_allclose(forward.center, dataset[0].expected_point())
        np.testing.assert_allclose(backward.center, dataset[-1].expected_point())
