"""Chaos suite for ``repro serve`` (PR 9 acceptance).

The server's whole reason to exist is staying correct while the runtime
underneath it is being killed, so these tests arm the PR-8 fault harness
*around* the HTTP stack and assert the end-to-end contract:

* 50 concurrent solves under ``crash:p=0.1`` (with the shm/lock/det
  sanitizers armed): **zero 5xx**, every response **bit-identical** to the
  fault-free reference, and the ``/healthz`` audit identity
  ``chunks_submitted == chunks_completed + retries`` holding at
  quiescence;
* persistent crashes (``crash:p=1``) trip the circuit breaker — ``/readyz``
  goes 503 while solves keep answering 200 out of serial degraded mode;
* admission-fault chaos (``serve_reject`` + ``crash`` together): retrying
  clients all converge to the same bits;
* SIGTERM against a real ``python -m repro serve`` subprocess with faults
  and sanitizers armed: in-flight work drains, the exit is clean, no
  shared-memory segment outlives the process, no sanitizer report fires.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.baselines.brute_force import brute_force_unassigned, default_candidates
from repro.runtime import set_oversubscribe, shutdown_runtime
from repro.runtime import shm as shm_module
from repro.sanitize import enabled_names as sanitize_enabled_names
from repro.sanitize import set_enabled as sanitize_set_enabled
from repro.serve import ReproServer, ServeClient, ServeConfig
from repro.uncertain.dataset import UncertainDataset
from repro.workloads import gaussian_clusters

SRC = Path(__file__).resolve().parents[1] / "src"

#: The acceptance load: this many concurrent solve requests under crashes.
CHAOS_CLIENTS = 50


@pytest.fixture(autouse=True)
def _armed_chaos_environment():
    """Real pools on 1-CPU boxes; restore ambient fault/sanitizer config."""
    previous_faults = faults.enabled_spec()
    previous_sanitizers = sanitize_enabled_names()
    previous_oversubscribe = set_oversubscribe(True)
    yield
    set_oversubscribe(previous_oversubscribe)
    faults.set_enabled(previous_faults or None)
    sanitize_set_enabled(previous_sanitizers)
    shutdown_runtime()


def _chaos_instance():
    """n=10, z=4 -> 40 default candidates; k=3 is 9880 subsets = 5 chunks,
    so a pooled map has real chunk-granular crash surface.

    Canonicalized through ``to_dict``/``from_dict`` (probability
    renormalization shifts one ulp on the round trip), so in-process
    reference solves see byte-for-byte what the server reconstructs from
    request JSON.
    """
    dataset, _ = gaussian_clusters(n=10, z=4, dimension=2, k_true=3, seed=21)
    return UncertainDataset.from_dict(dataset.to_dict())


class TestConcurrentSolvesUnderCrashes:
    def test_fifty_concurrent_solves_zero_5xx_bit_identical(self):
        dataset = _chaos_instance()
        # Fault-free serial reference, computed before arming anything.
        reference = brute_force_unassigned(dataset, 3)
        shutdown_runtime()

        sanitize_set_enabled(("shm", "lock", "det"))
        faults.set_enabled("crash:p=0.1:seed=17")
        config = ServeConfig(port=0, max_inflight=CHAOS_CLIENTS, workers=2)
        server = ReproServer(config)
        server.start()
        try:
            def one_solve(index: int) -> dict:
                client = ServeClient(server.url, max_retries=4, seed=index, timeout=120.0)
                return client.solve(dataset, 3)

            with ThreadPoolExecutor(max_workers=CHAOS_CLIENTS) as executor:
                responses = list(executor.map(one_solve, range(CHAOS_CLIENTS)))

            # Zero 5xx attributable to crashes: every request answered 200
            # (a 5xx raises ServeError out of executor.map) with full results.
            assert len(responses) == CHAOS_CLIENTS
            costs = {response["expected_cost"] for response in responses}
            assert costs == {reference.expected_cost}  # bit-identical under crashes
            for response in responses:
                assert np.array_equal(np.asarray(response["centers"]), reference.centers)
                assert response["deadline_hit"] is False

            # The audit identity holds at quiescence, crashes and all.
            monitor = ServeClient(server.url, max_retries=4)
            healthz = monitor.healthz()
            assert healthz["audit_ok"] is True
            stats = monitor.stats()
            assert stats["endpoints"]["/v1/solve"]["errors"] == 0
            assert stats["contexts"]["builds"] == 1  # single-flight held under chaos
        finally:
            assert server.stop() is True
        assert shm_module.live_segments() == []  # nothing leaked into /dev/shm


class TestBreakerUnderPersistentCrashes:
    def test_persistent_crashes_trip_breaker_and_flip_readyz(self):
        dataset = _chaos_instance()
        faults.set_enabled("crash:p=1")
        config = ServeConfig(
            port=0,
            workers=2,
            breaker_threshold=3,
            breaker_window_seconds=60.0,
            breaker_cooldown_seconds=3600.0,  # stay open for the test's lifetime
        )
        server = ReproServer(config)
        server.start()
        try:
            client = ServeClient(server.url, max_retries=2, timeout=120.0)
            # Every pooled map exhausts its rebuild budget (crash:p=1) and
            # completes serially; the rebuilds + serial fallback are >= the
            # threshold, so the very first pooled solve trips the breaker —
            # while still answering 200 with full results.
            first = client.solve(dataset, 3)
            assert first["expected_cost"] > 0
            assert server.state.breaker.state() == "open"
            assert client.readyz()["ready"] is False

            # Open breaker = serial-only degraded mode: still correct, still 200.
            degraded = client.solve(dataset, 3)
            assert degraded["degraded"] is True
            assert degraded["expected_cost"] == first["expected_cost"]
            assert client.healthz()["status"] == "ok"  # alive even when not ready
        finally:
            server.stop()


class TestAdmissionFaultChaos:
    def test_serve_reject_plus_crashes_converge_bitwise(self):
        dataset = _chaos_instance()
        reference = brute_force_unassigned(dataset, 3)
        shutdown_runtime()

        faults.set_enabled("crash:p=0.1:seed=3,serve_reject:p=0.3:seed=5")
        config = ServeConfig(port=0, max_inflight=16, workers=2)
        server = ReproServer(config)
        server.start()
        try:
            def one_solve(index: int) -> float:
                client = ServeClient(
                    server.url,
                    max_retries=8,
                    backoff_seconds=0.02,
                    seed=index,
                    timeout=120.0,
                )
                return float(client.solve(dataset, 3)["expected_cost"])

            with ThreadPoolExecutor(max_workers=16) as executor:
                costs = set(executor.map(one_solve, range(16)))
            assert costs == {reference.expected_cost}
            assert server.state.faults_rejected > 0  # the admission fault fired
        finally:
            server.stop()


class TestSigtermDrain:
    def test_sigterm_drains_inflight_work_and_leaves_no_residue(self, tmp_path):
        """The full acceptance lifecycle against a real subprocess."""
        dataset = _chaos_instance()
        env = {
            **os.environ,
            "PYTHONPATH": str(SRC),
            "REPRO_FAULTS": "crash:p=0.1:seed=29",
            "REPRO_SANITIZE": "shm,lock,det",
            "REPRO_OVERSUBSCRIBE": "1",
        }
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = json.loads(proc.stdout.readline())
            assert ready["event"] == "ready"
            url = f"http://{ready['host']}:{ready['port']}"

            body = json.dumps({"dataset": dataset.to_dict(), "k": 3}).encode()

            def solve_once() -> dict:
                request = urllib.request.Request(
                    url + "/v1/solve", data=body, headers={"Content-Type": "application/json"}
                )
                with urllib.request.urlopen(request, timeout=120) as response:
                    return json.loads(response.read())

            warm = solve_once()  # also warms the context store
            inflight: dict = {}
            worker = threading.Thread(target=lambda: inflight.update(solve_once()))
            worker.start()
            time.sleep(0.05)  # let the request reach the server
            proc.send_signal(signal.SIGTERM)
            stdout, stderr = proc.communicate(timeout=120)
            worker.join(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=30)

        assert proc.returncode == 0, stderr
        stopped = json.loads(stdout.strip().splitlines()[-1])
        assert stopped == {"event": "stopped", "drained": True}
        # The in-flight request drained to a full, correct answer.
        assert inflight.get("expected_cost") == warm["expected_cost"]
        # Clean shutdown: no sanitizer report, no leaked shared memory.
        assert "repro.sanitize:" not in stderr
        leaked = [name for name in os.listdir("/dev/shm") if name.startswith("repro")]
        assert leaked == []
