"""Unit tests for the certain-point reductions (expected point, 1-center, medoid)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UncertainDataset, UncertainPoint
from repro.exceptions import NotSupportedError, ValidationError
from repro.geometry import median_objective
from repro.uncertain import (
    expected_point_reduction,
    medoid_reduction,
    one_center_reduction,
    reduce_dataset,
)
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestExpectedPointReduction:
    def test_shape_and_values(self, euclidean_dataset):
        reps = expected_point_reduction(euclidean_dataset)
        assert reps.shape == (euclidean_dataset.size, euclidean_dataset.dimension)
        np.testing.assert_allclose(reps, euclidean_dataset.expected_points())

    def test_certain_points_unchanged(self, certain_dataset):
        reps = expected_point_reduction(certain_dataset)
        np.testing.assert_allclose(reps, certain_dataset.all_locations())

    def test_rejected_on_finite_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            reduce_dataset(graph_dataset, "expected-point")


class TestOneCenterReduction:
    def test_euclidean_uses_weighted_median(self, euclidean_dataset):
        reps = one_center_reduction(euclidean_dataset)
        assert reps.shape == (euclidean_dataset.size, 2)
        # Each representative minimises the expected distance at least as well
        # as every location of its own point.
        for point, representative in zip(euclidean_dataset, reps):
            value = median_objective(point.locations, representative, point.probabilities)
            for location in point.locations:
                assert value <= median_objective(point.locations, location, point.probabilities) + 1e-6

    def test_finite_metric_uses_candidates(self, graph_dataset):
        reps = one_center_reduction(graph_dataset)
        assert reps.shape == (graph_dataset.size, 1)
        # Representatives must be elements of the finite metric.
        size = graph_dataset.metric.size
        for representative in reps:
            assert 0 <= int(representative[0]) < size
            assert representative[0] == pytest.approx(round(representative[0]))

    def test_finite_metric_representative_is_optimal_over_candidates(self, graph_dataset):
        reps = one_center_reduction(graph_dataset)
        metric = graph_dataset.metric
        candidates = metric.all_elements()
        for point, representative in zip(graph_dataset, reps):
            expected = point.expected_distances_to_many(candidates, metric)
            achieved = point.expected_distance_to(representative, metric)
            assert achieved == pytest.approx(expected.min(), abs=1e-12)

    def test_custom_candidates(self, euclidean_dataset):
        candidates = euclidean_dataset.all_locations()
        reps = one_center_reduction(euclidean_dataset, candidates=candidates)
        # Every representative must come from the supplied candidate set.
        for representative in reps:
            assert any(np.allclose(representative, candidate) for candidate in candidates)


class TestMedoidReduction:
    def test_medoid_is_own_location(self, euclidean_dataset):
        reps = medoid_reduction(euclidean_dataset)
        for point, representative in zip(euclidean_dataset, reps):
            assert any(np.allclose(representative, location) for location in point.locations)

    def test_certain_point_medoid_is_itself(self, certain_dataset):
        reps = medoid_reduction(certain_dataset)
        np.testing.assert_allclose(reps, certain_dataset.all_locations())


class TestDispatch:
    def test_reduce_dataset_kinds(self, euclidean_dataset):
        for kind in ("expected-point", "one-center", "medoid"):
            reps = reduce_dataset(euclidean_dataset, kind)
            assert reps.shape == (euclidean_dataset.size, 2)

    def test_unknown_kind_rejected(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            reduce_dataset(euclidean_dataset, "nonsense")

    def test_heavy_outlier_separates_mean_and_median(self):
        # With a far, low-probability outlier the expected point moves toward
        # the outlier while the 1-center (weighted median) stays at the mass.
        point = UncertainPoint(
            locations=[[0.0, 0.0], [0.2, 0.0], [100.0, 0.0]],
            probabilities=[0.55, 0.4, 0.05],
        )
        dataset = UncertainDataset(points=(point,))
        expected = reduce_dataset(dataset, "expected-point")[0]
        median = reduce_dataset(dataset, "one-center")[0]
        assert expected[0] > 4.0
        assert median[0] < 1.0
