"""Unit tests for the assignment policies (ED, EP, OC, nearest-mode, optimal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import UncertainDataset, UncertainPoint
from repro.assignments import (
    ASSIGNMENT_POLICIES,
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
    OptimalAssignment,
)
from repro.cost import expected_cost_assigned, expected_distance_matrix
from repro.exceptions import NotSupportedError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


@pytest.fixture
def instance():
    dataset = make_uncertain_dataset(n=6, z=3, dimension=2, seed=11)
    rng = np.random.default_rng(5)
    centers = rng.normal(scale=5.0, size=(3, 2))
    return dataset, centers


class TestExpectedDistanceAssignment:
    def test_minimises_expected_distance_per_point(self, instance):
        dataset, centers = instance
        labels = ExpectedDistanceAssignment()(dataset, centers)
        matrix = expected_distance_matrix(dataset, centers)
        np.testing.assert_array_equal(labels, matrix.argmin(axis=1))

    def test_works_on_graph_metric(self, graph_dataset):
        centers = graph_dataset.metric.all_elements()[:2]
        labels = ExpectedDistanceAssignment()(graph_dataset, centers)
        assert labels.shape == (graph_dataset.size,)
        assert set(labels) <= {0, 1}


class TestExpectedPointAssignment:
    def test_assigns_to_nearest_expected_point(self, instance):
        dataset, centers = instance
        labels = ExpectedPointAssignment()(dataset, centers)
        expected_points = dataset.expected_points()
        manual = dataset.metric.pairwise(expected_points, centers).argmin(axis=1)
        np.testing.assert_array_equal(labels, manual)

    def test_rejected_on_finite_metric(self, graph_dataset):
        centers = graph_dataset.metric.all_elements()[:2]
        with pytest.raises(NotSupportedError):
            ExpectedPointAssignment()(graph_dataset, centers)

    def test_agrees_with_ed_for_certain_points(self, certain_dataset):
        centers = certain_dataset.all_locations()[:2]
        ed = ExpectedDistanceAssignment()(certain_dataset, centers)
        ep = ExpectedPointAssignment()(certain_dataset, centers)
        np.testing.assert_array_equal(ed, ep)


class TestOneCenterAssignment:
    def test_euclidean(self, instance):
        dataset, centers = instance
        labels = OneCenterAssignment()(dataset, centers)
        assert labels.shape == (dataset.size,)
        assert labels.min() >= 0 and labels.max() < centers.shape[0]

    def test_graph_metric(self, graph_dataset):
        centers = graph_dataset.metric.all_elements()[:3]
        labels = OneCenterAssignment()(graph_dataset, centers)
        assert labels.shape == (graph_dataset.size,)

    def test_custom_candidates(self, instance):
        dataset, centers = instance
        candidates = dataset.all_locations()
        labels = OneCenterAssignment(candidates=candidates)(dataset, centers)
        assert labels.shape == (dataset.size,)


class TestNearestLocationAssignment:
    def test_uses_most_probable_location(self):
        point_a = UncertainPoint(locations=[[0.0, 0.0], [10.0, 0.0]], probabilities=[0.9, 0.1])
        point_b = UncertainPoint(locations=[[10.0, 0.0], [0.0, 0.0]], probabilities=[0.8, 0.2])
        dataset = UncertainDataset(points=(point_a, point_b))
        centers = np.array([[0.0, 0.0], [10.0, 0.0]])
        labels = NearestLocationAssignment()(dataset, centers)
        np.testing.assert_array_equal(labels, [0, 1])


def _legacy_optimal_assignment(dataset, centers, max_rounds=20):
    """Pre-evaluator local search: full exact recomputation per candidate move
    through the historical pure-Python engine, identical acceptance semantics.

    This is the "before" implementation for the evaluator-swap property test:
    :class:`OptimalAssignment` must walk the same improvement path now that
    moves are scored incrementally against the cached rest-sweep.
    """
    from repro.cost.expected import _expected_max_reference, distance_supports_for_assignment

    def cost_of(assignment):
        values, probabilities = distance_supports_for_assignment(dataset, centers, assignment)
        return _expected_max_reference(values, probabilities)

    assignment = ExpectedDistanceAssignment().assign(dataset, centers)
    k = centers.shape[0]
    if k == 1:
        return assignment
    best_cost = cost_of(assignment)
    for _ in range(max_rounds):
        improved = False
        for point_index in range(dataset.size):
            current = int(assignment[point_index])
            costs = []
            for center_index in range(k):
                trial = assignment.copy()
                trial[point_index] = center_index
                costs.append(cost_of(trial))
            best_center = int(np.argmin(costs))
            tolerance = 1e-12 * max(1.0, abs(best_cost))
            if best_center != current and costs[best_center] < best_cost - tolerance:
                assignment[point_index] = best_center
                best_cost = costs[best_center]
                improved = True
        if not improved:
            break
    return assignment


class TestOptimalAssignment:
    def test_never_worse_than_expected_distance(self, instance):
        dataset, centers = instance
        ed_labels = ExpectedDistanceAssignment()(dataset, centers)
        optimal_labels = OptimalAssignment()(dataset, centers)
        ed_cost = expected_cost_assigned(dataset, centers, ed_labels)
        optimal_cost = expected_cost_assigned(dataset, centers, optimal_labels)
        assert optimal_cost <= ed_cost + 1e-12

    def test_matches_exhaustive_on_micro_instance(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=21)
        rng = np.random.default_rng(2)
        centers = rng.normal(scale=4.0, size=(2, 2))
        local = OptimalAssignment()(dataset, centers)
        local_cost = expected_cost_assigned(dataset, centers, local)
        from itertools import product

        best = min(
            expected_cost_assigned(dataset, centers, np.array(assignment))
            for assignment in product(range(2), repeat=4)
        )
        assert local_cost == pytest.approx(best, rel=1e-9)

    @pytest.mark.parametrize("seed", range(15))
    def test_identical_to_pre_evaluator_implementation(self, seed):
        """Property: the incremental-evaluator swap must not change the
        assignments the local search returns."""
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 14))
        z = int(rng.integers(2, 5))
        k = int(rng.integers(2, 4))
        dataset = make_uncertain_dataset(n=n, z=z, dimension=2, seed=seed + 500)
        centers = rng.normal(scale=3.0, size=(k, 2))
        incremental = OptimalAssignment()(dataset, centers)
        legacy = _legacy_optimal_assignment(dataset, centers)
        np.testing.assert_array_equal(incremental, legacy)


class TestPolicyRegistry:
    def test_registry_contents(self):
        assert set(ASSIGNMENT_POLICIES) == {
            "expected-distance",
            "expected-point",
            "one-center",
            "nearest-mode-location",
            "optimal-local",
        }

    def test_all_policies_return_valid_labels(self, instance):
        dataset, centers = instance
        for name, policy_cls in ASSIGNMENT_POLICIES.items():
            policy = policy_cls()
            labels = policy(dataset, centers)
            assert labels.shape == (dataset.size,)
            assert labels.dtype.kind == "i"
            assert labels.min() >= 0 and labels.max() < centers.shape[0]
