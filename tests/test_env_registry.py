"""Tier-1 tests for the central environment-variable registry (`repro._env`).

The registry exists to kill two failure modes: knobs nobody declared (reads
of unregistered names now raise) and README drift (the docs table is
generated from the registry, and this file pins the README to it byte for
byte).  The accessor tests pin the *exact* semantics the scattered call
sites had before the refactor — unset-vs-empty flags, garbage-tolerant
positive numbers — so routing through the registry changed no behavior.
"""

from __future__ import annotations

import math
from pathlib import Path

import pytest

from repro._env import (
    REGISTRY,
    EnvVar,
    env_flag,
    env_number,
    env_raw,
    env_str,
    render_readme_table,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


class TestRegistry:
    def test_registers_every_runtime_variable(self):
        assert set(REGISTRY) == {
            "REPRO_SHM",
            "REPRO_OVERSUBSCRIBE",
            "REPRO_CONTEXT_SPILL",
            "REPRO_CONTEXT_SPILL_MAX",
            "REPRO_CONTEXT_SPILL_MAX_AGE",
            "REPRO_CONTEXT_DTYPE",
            "REPRO_SANITIZE",
            "REPRO_FAULTS",
            "REPRO_SERVE_MAX_INFLIGHT",
            "REPRO_SERVE_MAX_BYTES",
            "REPRO_SERVE_DRAIN_SECONDS",
        }
        for variable in REGISTRY.values():
            assert isinstance(variable, EnvVar)
            assert variable.name in variable.usage
            assert variable.effect

    def test_undeclared_reads_are_refused(self):
        with pytest.raises(KeyError, match="not declared"):
            env_raw("REPRO_TOTALLY_NEW_KNOB")
        with pytest.raises(KeyError, match="not declared"):
            env_flag("REPRO_TOTALLY_NEW_KNOB", default=True)
        with pytest.raises(KeyError, match="not declared"):
            env_number("REPRO_TOTALLY_NEW_KNOB", int)


class TestAccessors:
    def test_flag_unset_means_default_but_set_is_explicit(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHM", raising=False)
        assert env_flag("REPRO_SHM", default=True) is True
        assert env_flag("REPRO_SHM", default=False) is False
        # "" and "0" mean off even when the default is on (REPRO_SHM= works).
        for off in ("", "0"):
            monkeypatch.setenv("REPRO_SHM", off)
            assert env_flag("REPRO_SHM", default=True) is False
        for on in ("1", "yes", "anything"):
            monkeypatch.setenv("REPRO_SHM", on)
            assert env_flag("REPRO_SHM", default=False) is True

    def test_str_treats_empty_as_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_CONTEXT_SPILL", raising=False)
        assert env_str("REPRO_CONTEXT_SPILL") is None
        monkeypatch.setenv("REPRO_CONTEXT_SPILL", "")
        assert env_str("REPRO_CONTEXT_SPILL") is None
        monkeypatch.setenv("REPRO_CONTEXT_SPILL", "/tmp/spill")
        assert env_str("REPRO_CONTEXT_SPILL") == "/tmp/spill"

    def test_number_accepts_positive_and_rejects_garbage(self, monkeypatch):
        name = "REPRO_CONTEXT_SPILL_MAX"
        monkeypatch.delenv(name, raising=False)
        assert env_number(name, int) is None
        monkeypatch.setenv(name, "1048576")
        assert env_number(name, int) == 1048576
        monkeypatch.setenv(name, "2.5")
        assert env_number(name, float) == 2.5
        assert env_number(name, int) == 2  # int cast truncates like int(float(raw))
        for bad in ("", "garbage", "-3", "0", "inf", "nan", str(math.inf)):
            monkeypatch.setenv(name, bad)
            assert env_number(name, float) is None, bad


class TestReadmeTable:
    def test_readme_contains_the_generated_table_verbatim(self):
        """README's env-var table is the registry's render, byte for byte.

        Regenerate with ``python -m repro lint --env-table`` after
        registering a variable — this test is the drift alarm the hand-
        maintained table never had.
        """
        readme = (REPO_ROOT / "README.md").read_text()
        assert render_readme_table() in readme

    def test_table_lists_every_registered_variable(self):
        table = render_readme_table()
        assert table.splitlines()[0] == "| Variable | Effect |"
        for variable in REGISTRY.values():
            assert variable.usage in table
