"""Tier-1 tests for the ``repro serve`` server (PR 9).

Coverage, mechanism by mechanism:

* admission control — bounded inflight + bounded queue, 429 with a
  Retry-After derived from observed service time, 413 for oversized
  bodies/instances *before any context build*;
* deadlines — ``deadline_ms`` maps onto the anytime ``time_budget``; a
  zero/expired deadline still answers 200 with a sound ``(cost,
  lower_bound, gap)`` certificate and never hangs, and deadline answers
  are identical at every worker count;
* circuit breaker — trips after repeated runtime degradation events,
  flips ``/readyz`` to 503 while solves keep answering 200 (serial-only),
  half-open probe un-trips after the cooldown;
* single-flight contexts — N concurrent first-touch requests cost one
  context build;
* the retrying client — honors Retry-After on 429/503 rejections,
  survives the ``serve_reject`` admission fault, transport-retries only
  idempotent requests;
* satellites — the health reset-generation guard (no negative windows, the
  audit identity holds per window) and ``runtime_health_summary``'s
  ``always`` flag feeding ``/stats``.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import faults
from repro.experiments.records import runtime_health_summary
from repro.runtime import health, set_oversubscribe, shutdown_runtime
from repro.runtime.store import ContextStore
from repro.sanitize import enabled_names as sanitize_enabled_names
from repro.sanitize import set_enabled as sanitize_set_enabled
from repro.serve import ReproServer, ServeClient, ServeConfig, ServeError
from repro.serve.state import AdmissionGate, CircuitBreaker, LatencyWindow, SingleFlightContexts
from repro.workloads import gaussian_clusters


@pytest.fixture(autouse=True)
def _restore_runtime_config():
    """Restore ambient fault/sanitizer config; allow real pools on 1 CPU."""
    previous_faults = faults.enabled_spec()
    previous_sanitizers = sanitize_enabled_names()
    previous_oversubscribe = set_oversubscribe(True)
    yield
    set_oversubscribe(previous_oversubscribe)
    faults.set_enabled(previous_faults or None)
    sanitize_set_enabled(previous_sanitizers)
    shutdown_runtime()


def _dataset(n: int = 8, z: int = 3, seed: int = 0):
    dataset, _ = gaussian_clusters(n=n, z=z, dimension=2, k_true=2, seed=seed)
    return dataset


@pytest.fixture()
def server():
    instance = ReproServer(ServeConfig(port=0, max_inflight=4))
    instance.start()
    yield instance
    instance.stop()


@pytest.fixture()
def client(server):
    return ServeClient(server.url, max_retries=2, timeout=30.0)


# ---------------------------------------------------------------------------
# unit: admission gate / latency window / breaker / single-flight
# ---------------------------------------------------------------------------


class TestAdmissionGate:
    def test_admits_up_to_max_inflight(self):
        gate = AdmissionGate(max_inflight=2, queue_limit=0, queue_wait_seconds=0.0)
        assert gate.try_enter() and gate.try_enter()
        assert not gate.try_enter()
        gate.exit()
        assert gate.try_enter()

    def test_queue_full_rejects_immediately(self):
        gate = AdmissionGate(max_inflight=1, queue_limit=0, queue_wait_seconds=5.0)
        assert gate.try_enter()
        started = time.monotonic()
        assert not gate.try_enter()
        assert time.monotonic() - started < 1.0  # no slot waiting with a full queue

    def test_queued_request_gets_a_freed_slot(self):
        gate = AdmissionGate(max_inflight=1, queue_limit=1, queue_wait_seconds=5.0)
        assert gate.try_enter()
        outcome: list[bool] = []
        waiter = threading.Thread(target=lambda: outcome.append(gate.try_enter()))
        waiter.start()
        time.sleep(0.05)
        gate.exit()
        waiter.join(timeout=5.0)
        assert outcome == [True]

    def test_queue_wait_budget_expires_as_rejection(self):
        gate = AdmissionGate(max_inflight=1, queue_limit=1, queue_wait_seconds=0.05)
        assert gate.try_enter()
        assert not gate.try_enter()  # waited the budget, no slot

    def test_wait_idle_reports_drain_completion(self):
        gate = AdmissionGate(max_inflight=1, queue_limit=0, queue_wait_seconds=0.0)
        assert gate.wait_idle(0.01)
        assert gate.try_enter()
        assert not gate.wait_idle(0.05)
        gate.exit()
        assert gate.wait_idle(1.0)


class TestLatencyWindow:
    def test_percentiles_over_recorded_samples(self):
        window = LatencyWindow()
        for value in (0.01, 0.02, 0.03, 0.04, 0.10):
            window.record(value)
        assert window.percentile(0.50) == 0.03
        assert window.percentile(0.95) == 0.10
        summary = window.as_dict()
        assert summary["count"] == 5 and summary["p50_ms"] == 30.0

    def test_empty_window_has_no_percentile(self):
        window = LatencyWindow()
        assert window.percentile(0.5) is None
        assert window.as_dict()["p50_ms"] is None


class TestCircuitBreaker:
    def test_trips_after_threshold_in_window(self):
        breaker = CircuitBreaker(window_seconds=10.0, threshold=3, cooldown_seconds=5.0)
        breaker.record_degradation(2, now=0.0)
        assert breaker.state(now=0.0) == "closed" and breaker.allow_parallel(now=0.0)
        breaker.record_degradation(1, now=1.0)
        assert breaker.state(now=1.0) == "open"
        assert not breaker.allow_parallel(now=1.0)

    def test_events_outside_window_do_not_trip(self):
        breaker = CircuitBreaker(window_seconds=1.0, threshold=2, cooldown_seconds=5.0)
        breaker.record_degradation(1, now=0.0)
        breaker.record_degradation(1, now=10.0)  # first event expired
        assert breaker.state(now=10.0) == "closed"

    def test_half_open_probe_untrips_on_success(self):
        breaker = CircuitBreaker(window_seconds=10.0, threshold=1, cooldown_seconds=2.0)
        breaker.record_degradation(1, now=0.0)
        assert not breaker.allow_parallel(now=1.0)  # still cooling down
        assert breaker.allow_parallel(now=3.0)  # this caller is the probe
        assert not breaker.allow_parallel(now=3.0)  # only one probe at a time
        breaker.record_probe_success()
        assert breaker.state(now=3.0) == "closed"
        assert breaker.allow_parallel(now=3.0)

    def test_degraded_probe_reopens(self):
        breaker = CircuitBreaker(window_seconds=10.0, threshold=1, cooldown_seconds=2.0)
        breaker.record_degradation(1, now=0.0)
        assert breaker.allow_parallel(now=3.0)  # probe
        breaker.record_degradation(1, now=3.5)  # probe degraded
        assert breaker.state(now=4.0) == "open"
        assert not breaker.allow_parallel(now=4.0)
        assert breaker.trips == 2


class TestSingleFlightContexts:
    def test_concurrent_first_touch_builds_once(self):
        contexts = SingleFlightContexts(ContextStore(maxsize=4))
        dataset = _dataset()
        candidates = dataset.all_locations()[:6]
        clients = 6
        barrier = threading.Barrier(clients)

        def first_touch(_index: int):
            barrier.wait()
            return contexts.get(dataset, candidates)

        with ThreadPoolExecutor(max_workers=clients) as executor:
            built = list(executor.map(first_touch, range(clients)))
        assert contexts.builds == 1
        assert all(context is built[0] for context in built)  # one shared object
        assert contexts.store.misses == 1


# ---------------------------------------------------------------------------
# unit: configuration
# ---------------------------------------------------------------------------


class TestServeConfig:
    def test_defaults_and_derived_queue_limit(self):
        config = ServeConfig()
        assert config.effective_queue_limit == 2 * config.max_inflight
        assert ServeConfig(queue_limit=0).effective_queue_limit == 0

    def test_validation_rejects_nonsense(self):
        with pytest.raises(ValueError):
            ServeConfig(max_inflight=0)
        with pytest.raises(ValueError):
            ServeConfig(workers=0)
        with pytest.raises(ValueError):
            ServeConfig(drain_seconds=-1.0)

    def test_env_defaults_and_cli_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "7")
        monkeypatch.setenv("REPRO_SERVE_MAX_BYTES", "1024")
        monkeypatch.setenv("REPRO_SERVE_DRAIN_SECONDS", "2.5")
        config = ServeConfig.from_env()
        assert config.max_inflight == 7
        assert config.max_body_bytes == 1024
        assert config.drain_seconds == 2.5
        # explicit overrides (CLI flags) beat the environment; None is "unset"
        config = ServeConfig.from_env(max_inflight=2, drain_seconds=None)
        assert config.max_inflight == 2 and config.drain_seconds == 2.5

    def test_garbage_env_reads_as_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_MAX_INFLIGHT", "banana")
        assert ServeConfig.from_env().max_inflight == ServeConfig().max_inflight


# ---------------------------------------------------------------------------
# integration: endpoints over a real socket
# ---------------------------------------------------------------------------


class TestEndpoints:
    def test_solve_score_assign_round_trip(self, server, client):
        dataset = _dataset()
        solved = client.solve(dataset, 2)
        assert solved["objective"] == "unassigned"
        assert solved["deadline_hit"] is False and solved["certificate"] is None
        # score computes through expected_cost_unassigned directly; the solve
        # enumeration reduces in a different order, so agreement is to rounding
        scored = client.score(dataset, solved["centers"])
        assert scored["expected_cost"] == pytest.approx(solved["expected_cost"], rel=1e-12)
        assigned = client.assign(dataset, solved["centers"])
        assert len(assigned["assignment"]) == dataset.size
        assert assigned["assignment_policy"] == "expected-distance"

    def test_restricted_solve_returns_assignment(self, server, client):
        solved = client.solve(_dataset(), 2, objective="restricted")
        assert solved["objective"] == "restricted-assigned"
        assert solved["assignment"] is not None
        assert solved["assignment_policy"] == "expected-distance"

    def test_solve_matches_inprocess_reference_bitwise(self, server, client):
        from repro.baselines.brute_force import brute_force_unassigned
        from repro.uncertain.dataset import UncertainDataset

        dataset = _dataset()
        # The reference must see what the server reconstructs from request
        # JSON: the to_dict/from_dict round trip renormalizes probabilities,
        # which can move costs one ulp.
        reference = brute_force_unassigned(UncertainDataset.from_dict(dataset.to_dict()), 2)
        served = client.solve(dataset, 2)
        assert served["expected_cost"] == reference.expected_cost
        assert np.array_equal(np.asarray(served["centers"]), reference.centers)

    def test_health_ready_stats_shapes(self, server, client):
        healthz = client.healthz()
        assert healthz["status"] == "ok" and healthz["audit_ok"] is True
        assert healthz["breaker"]["state"] == "closed"
        # the always=True summary is present even with zero degradation
        assert set(healthz["runtime_health"]) == {
            field for field in health.RuntimeHealth().as_dict()
        }
        assert client.readyz()["ready"] is True
        stats = client.stats()
        assert stats["admission"]["max_inflight"] == 4
        assert stats["contexts"]["builds"] == 0
        assert stats["runtime_health"] is not None

    def test_unknown_endpoint_and_malformed_json(self, server, client):
        with pytest.raises(ServeError) as outcome:
            client.request("POST", "/v1/nope", {"x": 1})
        assert outcome.value.status == 404
        request = urllib.request.Request(
            server.url + "/v1/solve", data=b"{not json", method="POST"
        )
        with pytest.raises(urllib.error.HTTPError) as http_outcome:
            urllib.request.urlopen(request, timeout=10)
        assert http_outcome.value.code == 400

    def test_missing_fields_and_bad_values_are_400(self, server, client):
        for payload in (
            {"k": 2},  # no dataset
            {"dataset": _dataset().to_dict()},  # no k
            {"dataset": _dataset().to_dict(), "k": 0},
            {"dataset": _dataset().to_dict(), "k": 2, "objective": "sideways"},
            {"dataset": _dataset().to_dict(), "k": 2, "deadline_ms": "soon"},
            {"dataset": _dataset().to_dict(), "k": 999},  # k > candidates
        ):
            with pytest.raises(ServeError) as outcome:
                client.request("POST", "/v1/solve", payload)
            assert outcome.value.status == 400, payload

    def test_empty_dataset_reports_validation_error(self, server, client):
        with pytest.raises(ServeError) as outcome:
            client.request("POST", "/v1/solve", {"dataset": {"points": []}, "k": 1})
        assert outcome.value.status == 400


class TestAdmissionOverHttp:
    def test_oversized_body_is_413_before_read(self):
        server = ReproServer(ServeConfig(port=0, max_body_bytes=256))
        server.start()
        try:
            client = ServeClient(server.url, max_retries=0)
            with pytest.raises(ServeError) as outcome:
                client.solve(_dataset(n=10, z=4), 2)
            assert outcome.value.status == 413
        finally:
            server.stop()

    def test_oversized_instance_is_413_before_context_build(self):
        server = ReproServer(ServeConfig(port=0, max_cells=16))
        server.start()
        try:
            client = ServeClient(server.url, max_retries=0)
            with pytest.raises(ServeError) as outcome:
                client.solve(_dataset(), 2)
            assert outcome.value.status == 413
            assert server.state.contexts.builds == 0  # rejected before any build
            assert server.state.contexts.store.misses == 0
        finally:
            server.stop()

    def test_too_many_candidates_is_413(self, server, client):
        dataset = _dataset()
        too_many = np.random.default_rng(0).normal(size=(65, 2))
        with pytest.raises(ServeError) as outcome:
            client.request(
                "POST",
                "/v1/solve",
                {"dataset": dataset.to_dict(), "k": 2, "candidates": too_many.tolist()},
                retry_rejections=False,
            )
        assert outcome.value.status == 413

    def test_full_queue_is_429_with_retry_after(self):
        # One slot, no wait queue: the second request rejects immediately.
        server = ReproServer(ServeConfig(port=0, max_inflight=1, queue_limit=0))
        server.start()
        try:
            assert server.state.gate.try_enter()  # occupy the only slot
            client = ServeClient(server.url, max_retries=0)
            with pytest.raises(ServeError) as outcome:
                client.solve(_dataset(), 2)
            assert outcome.value.status == 429
            assert outcome.value.retry_after is not None and outcome.value.retry_after > 0
        finally:
            server.state.gate.exit()
            server.stop()

    def test_client_retries_429_until_capacity_frees(self):
        server = ReproServer(ServeConfig(port=0, max_inflight=1, queue_limit=0))
        server.start()
        assert server.state.gate.try_enter()  # occupy the only slot
        release = threading.Timer(0.3, server.state.gate.exit)
        release.start()
        try:
            client = ServeClient(
                server.url, max_retries=6, backoff_seconds=0.1, seed=3
            )
            solved = client.solve(_dataset(), 2)
            assert solved["expected_cost"] > 0
            assert client.retries_used >= 1
        finally:
            release.cancel()
            server.stop()

    def test_draining_server_rejects_with_503(self, server, client):
        server.state.draining = True
        assert client.readyz()["ready"] is False
        with pytest.raises(ServeError) as outcome:
            client.request("POST", "/v1/solve", {"dataset": {}, "k": 1}, retry_rejections=False)
        assert outcome.value.status == 503


class TestServeRejectFault:
    def test_always_firing_rejection_exhausts_retries(self, server):
        faults.set_enabled("serve_reject:p=1")
        client = ServeClient(server.url, max_retries=2, backoff_seconds=0.01, seed=1)
        with pytest.raises(ServeError) as outcome:
            client.solve(_dataset(), 2)
        assert outcome.value.status == 503
        assert client.retries_used == 2  # the whole budget was spent backing off
        assert server.state.faults_rejected == 3  # initial attempt + 2 retries

    def test_probabilistic_rejection_is_survived_by_retries(self, server):
        faults.set_enabled("serve_reject:p=0.5:seed=7")
        client = ServeClient(server.url, max_retries=6, backoff_seconds=0.01, seed=2)
        results = [client.solve(_dataset(), 2)["expected_cost"] for _ in range(6)]
        assert len(set(results)) == 1  # rejections never corrupt results
        assert server.state.faults_rejected > 0  # the fault actually fired
        stats = ServeClient(server.url).stats()
        assert stats["faults_rejected"] == server.state.faults_rejected

    def test_rejections_do_not_count_as_service_latency(self, server):
        faults.set_enabled("serve_reject:p=1")
        client = ServeClient(server.url, max_retries=0)
        with pytest.raises(ServeError):
            client.solve(_dataset(), 2)
        window = server.state.endpoint_latency("/v1/solve")
        assert window.count == 0 and window.rejected == 1


# ---------------------------------------------------------------------------
# integration: deadlines (satellite d)
# ---------------------------------------------------------------------------


class TestDeadlines:
    def _assert_sound_certificate(self, served: dict, exact_cost: float) -> None:
        certificate = served["certificate"]
        assert certificate is not None
        assert certificate["gap"] >= 0.0
        assert certificate["lower_bound"] <= exact_cost + 1e-12
        assert certificate["cost"] == served["expected_cost"]

    def test_zero_deadline_answers_with_certificate_not_a_hang(self, server, client):
        from repro.baselines.brute_force import brute_force_unassigned

        dataset = _dataset()
        exact = brute_force_unassigned(dataset, 2).expected_cost
        served = client.solve(dataset, 2, deadline_ms=0)
        assert served["deadline_hit"] is True
        self._assert_sound_certificate(served, exact)
        assert served["expected_cost"] >= exact  # feasible, hence no better than exact

    def test_negative_deadline_is_treated_as_expired(self, server, client):
        served = client.solve(_dataset(), 2, deadline_ms=-50)
        assert served["deadline_hit"] is True
        assert served["certificate"]["gap"] >= 0.0

    def test_generous_deadline_matches_unbudgeted_solve_bitwise(self, server, client):
        dataset = _dataset()
        unbudgeted = client.solve(dataset, 2)
        budgeted = client.solve(dataset, 2, deadline_ms=600_000)
        assert budgeted["deadline_hit"] is False
        assert budgeted["expected_cost"] == unbudgeted["expected_cost"]
        assert budgeted["centers"] == unbudgeted["centers"]

    def test_expired_deadline_parity_across_worker_counts(self):
        """A deadline answer is the same object serially and under a pool."""
        dataset = _dataset()
        answers = []
        for workers in (1, 2):
            server = ReproServer(ServeConfig(port=0, workers=workers))
            server.start()
            try:
                client = ServeClient(server.url, max_retries=2)
                answers.append(client.solve(dataset, 2, deadline_ms=0))
            finally:
                server.stop()
        serial, pooled = answers
        assert serial["expected_cost"] == pooled["expected_cost"]
        assert serial["centers"] == pooled["centers"]
        assert serial["certificate"] == pooled["certificate"]

    def test_deadline_is_never_a_5xx(self, server, client):
        for deadline_ms in (0, 1, 10):
            served = client.solve(_dataset(), 2, deadline_ms=deadline_ms)
            assert served["expected_cost"] > 0  # a 5xx would have raised


# ---------------------------------------------------------------------------
# integration: breaker + degraded mode over HTTP
# ---------------------------------------------------------------------------


class TestBreakerOverHttp:
    def test_open_breaker_flips_readyz_but_solves_still_answer(self, server, client):
        breaker = server.state.breaker
        breaker.record_degradation(breaker.threshold)
        ready = client.readyz()
        assert ready["ready"] is False and "breaker" in ready["reason"]
        served = client.solve(_dataset(), 2)  # degraded mode still answers 200
        assert served["expected_cost"] > 0
        assert client.healthz()["breaker"]["state"] in ("open", "half-open")

    def test_breaker_recovery_restores_readiness(self):
        config = ServeConfig(port=0, breaker_cooldown_seconds=0.05, workers=2)
        server = ReproServer(config)
        server.start()
        try:
            client = ServeClient(server.url, max_retries=2)
            server.state.breaker.record_degradation(config.breaker_threshold)
            assert client.readyz()["ready"] is False
            time.sleep(0.1)  # past the cooldown: next parallel solve is the probe
            served = client.solve(_dataset(), 2)
            assert served["expected_cost"] > 0
            assert client.readyz()["ready"] is True  # clean probe closed the breaker
        finally:
            server.stop()


# ---------------------------------------------------------------------------
# lifecycle: prewarm + drain
# ---------------------------------------------------------------------------


class TestLifecycle:
    def test_prewarm_builds_once_and_serves_from_store(self, server, client):
        dataset = _dataset()
        assert server.prewarm([dataset, dataset]) == 1  # single-flight dedupe
        client.solve(dataset, 2)
        assert server.state.contexts.store.misses == 1  # solve hit the warm store

    def test_stop_drains_inflight_requests(self):
        server = ReproServer(ServeConfig(port=0))
        server.start()
        url = server.url
        outcome: dict = {}

        def slow_request():
            client = ServeClient(url, max_retries=0, timeout=60.0)
            outcome["solve"] = client.solve(_dataset(n=10, z=4), 3)

        worker = threading.Thread(target=slow_request)
        worker.start()
        deadline = time.monotonic() + 10.0
        while not server.state.gate.as_dict()["inflight"]:
            assert time.monotonic() < deadline, "request never became in-flight"
            time.sleep(0.005)
        assert server.stop() is True  # drained, not aborted
        worker.join(timeout=30.0)
        assert outcome["solve"]["expected_cost"] > 0  # the in-flight answer landed


# ---------------------------------------------------------------------------
# satellites: health reset generations + records `always` flag
# ---------------------------------------------------------------------------


class TestHealthGenerations:
    def test_reset_between_snapshot_and_delta_rebaselines(self):
        baseline = health.snapshot()
        health.record(retries=3, chunks_submitted=3)
        health.reset()
        health.record(chunks_submitted=2, chunks_completed=2)
        window = health.delta(baseline)
        assert all(value >= 0 for value in window.as_dict().values())  # never negative
        assert window.chunks_submitted == 2  # the current generation only
        assert window.audit_ok()

    def test_same_generation_delta_is_exact_movement(self):
        health.reset()
        baseline = health.snapshot()
        health.record(chunks_submitted=5, chunks_completed=4, retries=1)
        window = health.delta(baseline)
        assert window.chunks_submitted == 5 and window.retries == 1
        assert window.audit_ok()

    def test_generation_moves_only_on_reset(self):
        generation = health.generation()
        health.record(deadline_hits=1)
        assert health.generation() == generation
        health.reset()
        assert health.generation() == generation + 1

    def test_audit_ok_detects_the_broken_identity(self):
        counters = health.RuntimeHealth(chunks_submitted=3, chunks_completed=2, retries=1)
        assert counters.audit_ok()
        counters.chunks_completed = 1  # a lost, un-retried chunk
        assert not counters.audit_ok()


class TestRuntimeHealthSummary:
    def test_quiet_window_is_none_by_default(self):
        health.reset()
        baseline = health.snapshot()
        assert runtime_health_summary(baseline) is None

    def test_always_reports_the_quiet_window(self):
        health.reset()
        baseline = health.snapshot()
        summary = runtime_health_summary(baseline, always=True)
        assert summary is not None and summary["retries"] == 0

    def test_degraded_window_is_reported_either_way(self):
        health.reset()
        baseline = health.snapshot()
        health.record(serial_fallbacks=1)
        assert runtime_health_summary(baseline)["serial_fallbacks"] == 1
        assert runtime_health_summary(baseline, always=True)["serial_fallbacks"] == 1
