"""Tests for the brute-force references and prior-work-style baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignments import ExpectedDistanceAssignment, ExpectedPointAssignment
from repro.baselines import (
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
    cormode_mcgregor_baseline,
    default_candidates,
    guha_munagala_baseline,
    wang_zhang_1d,
)
from repro.baselines.guha_munagala import _greedy_open_centers
from repro.cost import expected_cost_assigned, expected_cost_unassigned
from repro.exceptions import ValidationError
from repro.uncertain import UncertainDataset, UncertainPoint
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestDefaultCandidates:
    def test_euclidean_includes_locations_and_expected_points(self, euclidean_dataset):
        candidates = default_candidates(euclidean_dataset)
        assert candidates.shape[0] == euclidean_dataset.total_locations + euclidean_dataset.size

    def test_graph_metric_uses_all_elements(self, graph_dataset):
        candidates = default_candidates(graph_dataset)
        assert candidates.shape[0] == graph_dataset.metric.size


class TestEffectiveKMetadata:
    """The silent ``k = min(k, candidate_count)`` clamp is now recorded."""

    def test_restricted_records_clamped_k(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=4)
        candidates = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = brute_force_restricted_assigned(dataset, 5, candidates=candidates)
        assert result.metadata["requested_k"] == 5
        assert result.metadata["effective_k"] == 2
        assert result.centers.shape[0] == 2

    def test_unrestricted_records_clamped_k(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=4)
        candidates = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 0.0]])
        result = brute_force_unrestricted_assigned(dataset, 7, candidates=candidates)
        assert result.metadata["requested_k"] == 7
        assert result.metadata["effective_k"] == 3

    def test_unassigned_records_clamped_k(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=4)
        candidates = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = brute_force_unassigned(dataset, 4, candidates=candidates)
        assert result.metadata["requested_k"] == 4
        assert result.metadata["effective_k"] == 2

    def test_feasible_k_is_not_clamped(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=4)
        result = brute_force_unassigned(dataset, 2)
        assert result.metadata["requested_k"] == 2
        assert result.metadata["effective_k"] == 2


class TestBruteForce:
    def test_restricted_is_best_over_candidates(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=1)
        policy = ExpectedDistanceAssignment()
        result = brute_force_restricted_assigned(dataset, 2, assignment=policy)
        # Verify optimality over a small random sample of candidate subsets.
        candidates = default_candidates(dataset)
        rng = np.random.default_rng(0)
        for _ in range(20):
            subset = rng.choice(candidates.shape[0], size=2, replace=False)
            centers = candidates[subset]
            cost = expected_cost_assigned(dataset, centers, policy(dataset, centers))
            assert result.expected_cost <= cost + 1e-9

    def test_restricted_with_expected_point_policy(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=2)
        result = brute_force_restricted_assigned(dataset, 2, assignment=ExpectedPointAssignment())
        assert result.assignment_policy == "expected-point"
        assert result.expected_cost > 0

    def test_unrestricted_never_worse_than_restricted(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=3)
        restricted = brute_force_restricted_assigned(dataset, 2)
        unrestricted = brute_force_unrestricted_assigned(dataset, 2)
        assert unrestricted.expected_cost <= restricted.expected_cost + 1e-9

    def test_unassigned_never_worse_than_unrestricted(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=4)
        unrestricted = brute_force_unrestricted_assigned(dataset, 2)
        unassigned = brute_force_unassigned(dataset, 2)
        assert unassigned.expected_cost <= unrestricted.expected_cost + 1e-9

    def test_unrestricted_exhaustive_matches_polish_on_micro(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=5)
        exhaustive = brute_force_unrestricted_assigned(dataset, 2, exhaustive_assignment=True, polish_top=10_000)
        polished = brute_force_unrestricted_assigned(dataset, 2, exhaustive_assignment=False)
        assert exhaustive.expected_cost <= polished.expected_cost + 1e-9

    def test_subset_cap_enforced(self):
        dataset = make_uncertain_dataset(n=20, z=5, dimension=2, seed=6)
        with pytest.raises(ValidationError):
            brute_force_unassigned(dataset, 6)

    def test_unassigned_cost_matches_engine(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=7)
        result = brute_force_unassigned(dataset, 2)
        assert result.expected_cost == pytest.approx(
            expected_cost_unassigned(dataset, result.centers)
        )

    def test_works_on_graph_metric(self):
        dataset = make_graph_dataset(n=4, z=2, nodes=10, seed=8)
        result = brute_force_unrestricted_assigned(dataset, 2)
        assert result.centers.shape == (2, 1)


class TestThresholdGreedyRegression:
    """The greedy opener must cover itself — the historical infinite loop."""

    @pytest.mark.timeout(30)
    def test_tight_threshold_terminates(self):
        # T = 1.0 < best_values[0] / 3: the opener's own best expected
        # distance exceeds 3T, so pre-fix the loop re-opened candidate 0
        # forever.  Post-fix the opener is force-covered and the greedy
        # pass returns the single opened candidate.
        expected = np.array([[10.0, 12.0]])
        opened = _greedy_open_centers(expected, expected.argmin(axis=1), 1.0)
        assert opened == [0]

    @pytest.mark.timeout(30)
    def test_shared_best_candidate_is_deduplicated(self):
        # Two far-apart points whose best candidate is the same column and
        # whose expected distances both exceed 3T: each opens candidate 0,
        # which must be recorded once (distinct-center count vs k).
        expected = np.array([[9.0, 30.0], [10.0, 30.0]])
        best = np.zeros(2, dtype=int)
        opened = _greedy_open_centers(expected, best, 0.5)
        assert opened == [0]

    @pytest.mark.timeout(60)
    def test_full_baseline_terminates_on_spread_single_point(self):
        # A single uncertain point with far-apart locations drives the
        # binary search through tight thresholds; pre-fix this hung.
        point = UncertainPoint(
            locations=np.array([[0.0, 0.0], [100.0, 0.0]]),
            probabilities=np.array([0.5, 0.5]),
        )
        dataset = UncertainDataset(points=(point,))
        result = guha_munagala_baseline(dataset, 1)
        assert result.centers.shape[0] == 1
        assert result.expected_cost == pytest.approx(
            expected_cost_assigned(dataset, result.centers, result.assignment)
        )

    def test_top_up_fills_budget_with_distinct_candidates(self):
        dataset = make_uncertain_dataset(n=6, z=3, dimension=2, seed=13)
        for k in (2, 3, 4):
            result = guha_munagala_baseline(dataset, k)
            centers = result.centers
            assert centers.shape[0] <= k
            # Top-up may only add *distinct* candidate ids, so no two
            # returned centers coincide.
            assert len({tuple(np.round(c, 12)) for c in centers}) == centers.shape[0]

    def test_duplicate_coordinate_candidates_never_double_open(self):
        # Candidates with identical coordinates have identical expected
        # columns, so argmin always nominates the first id — neither the
        # greedy pass nor the top-up can open a coordinate duplicate.
        dataset = make_uncertain_dataset(n=5, z=2, dimension=2, seed=15)
        base = dataset.all_locations()
        candidates = np.vstack([base, base])  # every coordinate twice
        for k in (2, 3):
            result = guha_munagala_baseline(dataset, k, candidates=candidates)
            keys = {tuple(np.round(c, 12)) for c in result.centers}
            assert len(keys) == result.centers.shape[0]

    def test_top_up_capped_by_candidate_count(self):
        dataset = make_uncertain_dataset(n=3, z=2, dimension=2, seed=14)
        candidates = np.array([[0.0, 0.0], [1.0, 1.0]])
        result = guha_munagala_baseline(dataset, 5, candidates=candidates)
        # Budget is min(k, candidate_count); the old comparison against k
        # could loop the whole point list without ever reaching it.
        assert result.centers.shape[0] <= 2


class TestPriorWorkBaselines:
    def test_guha_munagala_respects_k(self, euclidean_dataset):
        result = guha_munagala_baseline(euclidean_dataset, 2)
        assert result.centers.shape[0] <= 2 or result.centers.shape[0] == 2
        assert result.expected_cost > 0

    def test_guha_munagala_on_graph(self, graph_dataset):
        result = guha_munagala_baseline(graph_dataset, 2)
        assert result.centers.shape[0] <= 2
        assert result.expected_cost == pytest.approx(
            expected_cost_assigned(graph_dataset, result.centers, result.assignment)
        )

    def test_guha_munagala_single_center(self, euclidean_dataset):
        result = guha_munagala_baseline(euclidean_dataset, 1)
        assert result.centers.shape[0] == 1

    def test_cormode_mcgregor_structure(self, euclidean_dataset):
        result = cormode_mcgregor_baseline(euclidean_dataset, 2)
        assert result.centers.shape[0] == 2
        assert "unassigned_cost" in result.metadata

    def test_cormode_mcgregor_bicriteria_blowup(self, euclidean_dataset):
        single = cormode_mcgregor_baseline(euclidean_dataset, 2, center_blowup=1.0)
        doubled = cormode_mcgregor_baseline(euclidean_dataset, 2, center_blowup=2.0)
        assert doubled.metadata["center_budget"] == 4
        assert doubled.expected_cost <= single.expected_cost + 1e-9

    def test_baselines_are_finite_and_positive(self, euclidean_dataset):
        for result in (
            guha_munagala_baseline(euclidean_dataset, 3),
            cormode_mcgregor_baseline(euclidean_dataset, 3),
        ):
            assert np.isfinite(result.expected_cost)
            assert result.expected_cost > 0


class TestWangZhang1D:
    def test_rejects_multidimensional_input(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            wang_zhang_1d(euclidean_dataset, 2)

    def test_result_structure(self, line_dataset):
        result = wang_zhang_1d(line_dataset, 2)
        assert result.centers.shape == (2, 1)
        assert result.assignment_policy == "expected-distance"

    def test_cost_matches_engine(self, line_dataset):
        result = wang_zhang_1d(line_dataset, 2)
        recomputed = expected_cost_assigned(line_dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(recomputed)

    @pytest.mark.parametrize("seed", range(3))
    def test_close_to_brute_force_on_micro_instances(self, seed):
        dataset = make_uncertain_dataset(n=5, z=2, dimension=1, seed=seed, spread=8.0)
        numerical = wang_zhang_1d(dataset, 2)
        reference = brute_force_restricted_assigned(dataset, 2)
        # The numerical solver searches continuous center positions, so it can
        # only be better than the candidate-restricted brute force up to noise;
        # require it never be more than 10% worse.
        assert numerical.expected_cost <= 1.10 * reference.expected_cost + 1e-9

    def test_theorem_2_3_chain(self):
        # Theorem 2.3: the ED-restricted optimum is a 3-approximation of the
        # unrestricted optimum; the numerical solver should stay within that
        # bound of the unrestricted brute-force reference.
        dataset = make_uncertain_dataset(n=5, z=2, dimension=1, seed=9, spread=8.0)
        numerical = wang_zhang_1d(dataset, 2)
        reference = brute_force_unrestricted_assigned(dataset, 2)
        assert numerical.expected_cost <= 3.0 * reference.expected_cost + 1e-9
