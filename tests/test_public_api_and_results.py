"""Tests for the public API surface and the result dataclasses."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.algorithms.result import UncertainKCenterResult
from repro.deterministic.result import KCenterResult


class TestPublicApi:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"__all__ lists {name} but it is not importable"

    def test_key_entry_points_present(self):
        for name in (
            "UncertainPoint",
            "UncertainDataset",
            "solve_restricted_assigned",
            "solve_unrestricted_assigned",
            "solve_metric_unrestricted",
            "expected_point_one_center",
            "expected_cost_assigned",
            "gonzalez_kcenter",
            "gaussian_clusters",
        ):
            assert name in repro.__all__

    def test_quickstart_docstring_example_runs(self):
        points = [
            repro.UncertainPoint(locations=[[0.0, 0.0], [0.5, 0.2]], probabilities=[0.7, 0.3]),
            repro.UncertainPoint(locations=[[5.0, 5.0], [5.3, 4.9]], probabilities=[0.5, 0.5]),
            repro.UncertainPoint(locations=[[0.2, -0.1], [0.1, 0.3]], probabilities=[0.6, 0.4]),
        ]
        dataset = repro.UncertainDataset(points=tuple(points))
        result = repro.solve_unrestricted_assigned(dataset, k=2)
        assert result.centers.shape == (2, 2)

    def test_exception_hierarchy(self):
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.ProbabilityError, repro.ValidationError)
        assert issubclass(repro.NotSupportedError, repro.ReproError)
        assert issubclass(repro.ValidationError, ValueError)


class TestKCenterResult:
    def test_summary_and_clusters(self, rng):
        points = rng.normal(size=(10, 2))
        result = repro.gonzalez_kcenter(points, 3)
        assert result.k == 3
        assert "k=3" in result.summary()
        all_members = np.concatenate([result.cluster_indices(i) for i in range(3)])
        assert sorted(all_members.tolist()) == list(range(10))

    def test_exact_summary_wording(self, rng):
        points = rng.normal(size=(6, 2))
        result = repro.exact_euclidean_kcenter(points, 2)
        assert "exact" in result.summary()

    def test_dataclass_fields(self, rng):
        result = KCenterResult(
            centers=np.zeros((1, 2)), labels=np.zeros(3, dtype=int), radius=1.0, approximation_factor=None
        )
        assert "heuristic" in result.summary()


class TestUncertainKCenterResult:
    def test_summary_contains_fields(self, euclidean_dataset):
        result = repro.solve_unrestricted_assigned(euclidean_dataset, 2)
        text = result.summary()
        assert "unrestricted-assigned" in text
        assert "Ecost" in text
        assert "opt" in text  # the guarantee clause

    def test_k_property(self, euclidean_dataset):
        result = repro.solve_restricted_assigned(euclidean_dataset, 3)
        assert result.k == 3

    def test_minimal_construction(self):
        result = UncertainKCenterResult(
            centers=np.zeros((2, 2)), expected_cost=1.0, objective="unassigned"
        )
        assert result.assignment is None
        assert "unassigned" in result.summary()
