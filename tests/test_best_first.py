"""Best-first anytime branch-and-bound (PR 10): bounds, schedule, certificates.

Four contracts under test:

* **Pair-bound admissibility** — the second-level subset bound
  (:meth:`~repro.cost.context.CostContext.subset_pair_lower_bounds`, the
  two-point max of per-point expected minima) sits below the exact cost of
  every subset row under *both* objectives, on instances with exact
  location ties, zero-probability masses and ragged support sizes; the
  two-level max dominates the unassigned first level; and the lazy
  per-chunk fold in ``_chunk_lower_bounds`` is bit-identical to the eager
  per-row pass it replaces.
* **Schedule independence** — best-first submission (``gap_target=0``
  engages the full priority machinery without permitting early stops)
  returns bit-identical results to plain submission-order pruning and to
  the ``prune=False`` exhaustive reference, at workers in {1, 2, 4} with
  shared memory on and off.
* **Float32 layout** — ``REPRO_CONTEXT_DTYPE=float32`` changes shm segment
  bytes, never results: the margin-zone survivor re-score keeps pooled
  solves bit-identical to the float64 reference.
* **Certificate soundness** — the ``(cost, lower_bound, gap)`` metadata
  satisfies ``lower_bound <= C* <= cost`` whenever a gap target or
  deadline truncates the run, including under ``crash:p=0.1`` fault
  injection, and ``gap_target_hit`` implies the certified gap met the
  request.  The HTTP surface forwards ``gap_target`` and counts the stop.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import faults
from repro.assignments.policies import (
    ExpectedDistanceAssignment,
    NearestLocationAssignment,
    OptimalAssignment,
)
from repro.baselines.brute_force import (
    _best_first_order,
    _chunk_lower_bounds,
    _check_gap_target,
    brute_force_restricted_assigned,
    brute_force_unassigned,
)
from repro.cost.context import CostContext
from repro.runtime import set_oversubscribe, shutdown_runtime
from repro.serve import ReproServer, ServeClient, ServeConfig, ServeError
from repro.exceptions import ValidationError
from repro.workloads import gaussian_clusters

from test_bruteforce_pruning import (
    assert_same_result,
    make_ragged_dataset,
    make_tricky_dataset,
)


@pytest.fixture(autouse=True)
def _real_pools_and_clean_faults():
    """Real pools on 1-CPU boxes; restore the ambient fault config."""
    previous_faults = faults.enabled_spec()
    previous_oversubscribe = set_oversubscribe(True)
    yield
    set_oversubscribe(previous_oversubscribe)
    faults.set_enabled(previous_faults or None)
    shutdown_runtime()


def random_subset_rows(candidates: int, kk: int, batch: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.choice(candidates, size=kk, replace=False) for _ in range(batch)]
    )


class TestPairBoundAdmissibility:
    """Second-level bound <= exact cost, on every adversarial instance shape."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("make", [make_tricky_dataset, make_ragged_dataset])
    def test_pair_bound_below_unassigned_cost(self, seed, make):
        dataset = make(seed)
        candidates = dataset.all_locations()[:10]
        context = CostContext(dataset, candidates)
        rows = random_subset_rows(candidates.shape[0], 3, 12, seed + 500)
        bounds = context.subset_pair_lower_bounds(rows)
        costs = context.unassigned_costs(rows)
        slack = 1e-12 * np.maximum(1.0, np.abs(costs))
        assert np.all(bounds <= costs + slack)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("make", [make_tricky_dataset, make_ragged_dataset])
    def test_pair_bound_below_every_assignment_rule(self, seed, make):
        dataset = make(seed)
        candidates = dataset.all_locations()[:10]
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 600)
        rows = random_subset_rows(candidates.shape[0], 3, 12, seed + 600)
        bounds = context.subset_pair_lower_bounds(rows)
        # ED assignments and adversarial random assignments both dominate.
        for assignments in (
            context.ed_assignments(rows),
            np.take_along_axis(
                rows, rng.integers(0, rows.shape[1], size=(rows.shape[0], dataset.size)), axis=1
            ),
        ):
            costs = context.assigned_costs(assignments)
            slack = 1e-12 * np.maximum(1.0, np.abs(costs))
            assert np.all(bounds <= costs + slack)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("objective", ["assigned", "unassigned"])
    def test_two_level_dominates_its_levels(self, seed, objective):
        dataset = make_tricky_dataset(seed)
        candidates = dataset.all_locations()[:10]
        context = CostContext(dataset, candidates)
        rows = random_subset_rows(candidates.shape[0], 3, 16, seed + 700)
        two_level = context.subset_two_level_lower_bounds(rows, objective=objective)
        pair = context.subset_pair_lower_bounds(rows)
        level1 = (
            context.subset_assigned_lower_bounds(rows)
            if objective == "assigned"
            else context.subset_unassigned_lower_bounds(rows)
        )
        assert np.array_equal(two_level, np.maximum(level1, pair))
        if objective == "unassigned":
            # Jensen: E[max(Y, Z)] >= max(E[Y], E[Z]) — the pair bound
            # always dominates the unassigned first level.
            assert np.all(pair >= level1 - 1e-12 * np.maximum(1.0, np.abs(level1)))

    def test_pair_bound_degenerate_single_point(self):
        dataset = make_tricky_dataset(0, n=1, z=3)
        candidates = dataset.all_locations()[:3]
        context = CostContext(dataset, candidates)
        rows = np.array([[0, 1], [1, 2]])
        # n < 2: no pair exists, the bound degrades to the trivial zero.
        assert np.array_equal(context.subset_pair_lower_bounds(rows), np.zeros(2))

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("make", [make_tricky_dataset, make_ragged_dataset])
    @pytest.mark.parametrize("objective", ["assigned", "unassigned"])
    def test_lazy_chunk_fold_matches_eager_pass(self, seed, make, objective):
        dataset = make(seed, n=5)
        candidates = dataset.all_locations()[:8]
        context = CostContext(dataset, candidates)
        rows = random_subset_rows(candidates.shape[0], 3, 40, seed + 800)
        # Ragged chunk sizes, including singletons.
        chunks = [rows[:1], rows[1:14], rows[14:15], rows[15:]]
        lazy = _chunk_lower_bounds(context, chunks, objective)
        eager = [
            float(context.subset_two_level_lower_bounds(chunk, objective=objective).min())
            for chunk in chunks
        ]
        # Same mathematical value; batching pair evaluations across chunks
        # may shift the BLAS reduction order by an ulp (absorbed by the
        # prune margins), so the comparison is ulp-close, not bitwise.
        np.testing.assert_allclose(lazy, eager, rtol=1e-12, atol=0.0)
        # ... but the lazy fold itself is deterministic call over call,
        # which is what the det sanitizer holds the schedule to.
        assert lazy == _chunk_lower_bounds(context, chunks, objective)

    def test_best_first_order_is_ascending_and_tie_stable(self):
        assert _best_first_order([3.0, 1.0, 2.0, 1.0]) == [1, 3, 2, 0]
        assert _best_first_order([]) == []


class TestBestFirstBitIdentity:
    """The schedule is a performance detail: results never depend on it."""

    @pytest.fixture(scope="class")
    def micro(self):
        # A 10-candidate pool keeps each solve at C(10, 3) = 120 rows so
        # the whole matrix stays cheap under the chaos job's crash:p=0.1
        # retry amplification on small CI boxes.
        dataset, _ = gaussian_clusters(n=7, z=3, dimension=2, k_true=3, seed=4)
        return dataset, dataset.all_locations()[:10]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm", [True, False])
    def test_restricted_best_first_matrix(self, micro, workers, shm):
        dataset, candidates = micro
        reference = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, prune=False
        )
        plain = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, workers=workers, shm=shm, chunk_rows=16
        )
        best_first = brute_force_restricted_assigned(
            dataset,
            3,
            candidates=candidates,
            workers=workers,
            shm=shm,
            chunk_rows=16,
            gap_target=0.0,
        )
        assert_same_result(plain, reference)
        assert_same_result(best_first, reference)
        assert best_first.metadata["gap_target_hit"] is False
        assert best_first.metadata["chunks_completed"] == best_first.metadata["chunks_total"]

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm", [True, False])
    def test_unassigned_best_first_matrix(self, micro, workers, shm):
        dataset, candidates = micro
        reference = brute_force_unassigned(dataset, 2, candidates=candidates, prune=False)
        best_first = brute_force_unassigned(
            dataset,
            2,
            candidates=candidates,
            workers=workers,
            shm=shm,
            chunk_rows=16,
            gap_target=0.0,
        )
        assert_same_result(best_first, reference)
        assert best_first.metadata["gap_target_hit"] is False

    def test_gap_target_requires_prune(self, micro):
        dataset, candidates = micro
        with pytest.raises(ValidationError):
            brute_force_restricted_assigned(
                dataset, 2, candidates=candidates, prune=False, gap_target=0.1
            )
        with pytest.raises(ValidationError):
            brute_force_unassigned(
                dataset, 2, candidates=candidates, prune=False, gap_target=0.1
            )

    def test_gap_target_validation(self):
        assert _check_gap_target(None, False) is None
        assert _check_gap_target(0.0, True) == 0.0
        with pytest.raises(ValidationError):
            _check_gap_target(-0.5, True)
        with pytest.raises(ValidationError):
            _check_gap_target(float("nan"), True)


class TestFloat32Differential:
    """f32 tables + exact re-score == f64 results, bit for bit."""

    @pytest.fixture(scope="class")
    def micro(self):
        dataset, _ = gaussian_clusters(n=8, z=4, dimension=2, k_true=3, seed=11)
        return dataset, dataset.all_locations()[:12]

    @pytest.mark.parametrize("workers", [1, 2])
    def test_restricted_float32_matches_float64(self, micro, workers, monkeypatch):
        dataset, candidates = micro
        reference = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, workers=workers, shm=True, chunk_rows=16
        )
        monkeypatch.setenv("REPRO_CONTEXT_DTYPE", "float32")
        shutdown_runtime()  # drop pools/publications keyed on the f64 layout
        compact = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, workers=workers, shm=True, chunk_rows=16
        )
        assert_same_result(compact, reference)
        monkeypatch.delenv("REPRO_CONTEXT_DTYPE")
        shutdown_runtime()

    @pytest.mark.parametrize("workers", [1, 2])
    def test_unassigned_float32_matches_float64(self, micro, workers, monkeypatch):
        dataset, candidates = micro
        reference = brute_force_unassigned(
            dataset, 2, candidates=candidates, workers=workers, shm=True, chunk_rows=16
        )
        monkeypatch.setenv("REPRO_CONTEXT_DTYPE", "float32")
        shutdown_runtime()
        compact = brute_force_unassigned(
            dataset, 2, candidates=candidates, workers=workers, shm=True, chunk_rows=16
        )
        assert_same_result(compact, reference)
        monkeypatch.delenv("REPRO_CONTEXT_DTYPE")
        shutdown_runtime()


class TestGapCertificateSoundness:
    """lower_bound <= C* <= cost — also when workers crash mid-solve."""

    @pytest.fixture(scope="class")
    def instance(self):
        dataset, _ = gaussian_clusters(n=9, z=3, dimension=2, k_true=3, seed=6)
        candidates = dataset.all_locations()[:12]
        reference = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, prune=False
        )
        return dataset, candidates, reference

    def assert_sound_certificate(self, result, reference, gap_target):
        certificate = result.metadata["certificate"]
        optimum = reference.expected_cost
        slack = 1e-12 * max(1.0, abs(optimum))
        assert certificate["cost"] == result.expected_cost
        assert certificate["lower_bound"] <= optimum + slack
        assert result.expected_cost >= optimum - slack
        if result.metadata["gap_target_hit"]:
            assert certificate["gap"] <= gap_target

    @pytest.mark.parametrize("gap_target", [0.0, 0.05, 0.5, 10.0])
    def test_certificate_sound_at_every_target(self, instance, gap_target):
        dataset, candidates, reference = instance
        result = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=8, gap_target=gap_target
        )
        self.assert_sound_certificate(result, reference, gap_target)
        if gap_target == 0.0:
            # Zero gap can only certify at full completion: bit-identity.
            assert_same_result(result, reference)
            assert result.metadata["gap_target_hit"] is False

    @pytest.mark.parametrize("workers", [2, 4])
    def test_certificate_sound_under_crash_faults(self, instance, workers):
        dataset, candidates, reference = instance
        faults.set_enabled(faults.parse_spec("crash:p=0.1"))
        try:
            result = brute_force_restricted_assigned(
                dataset, 3, candidates=candidates, workers=workers, chunk_rows=8, gap_target=0.3
            )
        finally:
            faults.set_enabled(None)
        self.assert_sound_certificate(result, reference, 0.3)

    def test_loose_target_stops_early_with_certificate(self, instance):
        dataset, candidates, reference = instance
        result = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=4, gap_target=10.0
        )
        # A 1000% gap is certified before the enumeration finishes on any
        # non-degenerate instance; the run must say so and stay sound.
        assert result.metadata["gap_target_hit"] is True
        assert result.metadata["chunks_completed"] < result.metadata["chunks_total"]
        self.assert_sound_certificate(result, reference, 10.0)


class TestChunkAssignments:
    """Batched black-box assignments == the per-subset loop they replace."""

    @pytest.mark.parametrize(
        "policy_cls", [ExpectedDistanceAssignment, NearestLocationAssignment, OptimalAssignment]
    )
    @pytest.mark.parametrize("seed", range(3))
    def test_chunk_matches_per_subset_assign(self, policy_cls, seed):
        dataset = make_tricky_dataset(seed, n=5, z=3)
        candidates = dataset.all_locations()[:8]
        context = CostContext(dataset, candidates)
        rows = random_subset_rows(candidates.shape[0], 3, 10, seed + 900)
        policy = policy_cls()
        batched = policy.chunk_assignments(context, rows)
        assert batched.shape == (rows.shape[0], dataset.size)
        for b in range(rows.shape[0]):
            local = policy.assign(dataset, candidates[rows[b]])
            assert np.array_equal(batched[b], rows[b][local])


class TestServeGapTarget:
    """The HTTP surface forwards gap_target and counts certified stops."""

    @pytest.fixture()
    def server(self):
        instance = ReproServer(ServeConfig(port=0, max_inflight=4))
        instance.start()
        yield instance
        instance.stop()

    @pytest.fixture()
    def client(self, server):
        return ServeClient(server.url, max_retries=2, timeout=30.0)

    def _dataset(self):
        dataset, _ = gaussian_clusters(n=8, z=3, dimension=2, k_true=2, seed=0)
        return dataset

    def test_gap_target_roundtrip_and_stats(self, client):
        dataset = self._dataset()
        exact = client.solve(dataset, 2, objective="restricted")
        loose = client.solve(dataset, 2, objective="restricted", gap_target=10.0)
        assert exact["gap_target_hit"] is False
        assert loose["gap_target_hit"] is True
        certificate = loose["metadata"]["certificate"]
        assert certificate["lower_bound"] <= exact["expected_cost"]
        assert loose["expected_cost"] >= exact["expected_cost"]
        assert client.stats()["gap_target_stops"] >= 1

    def test_zero_gap_target_is_bit_identical(self, client):
        dataset = self._dataset()
        exact = client.solve(dataset, 2, objective="restricted")
        certified = client.solve(dataset, 2, objective="restricted", gap_target=0.0)
        assert certified["expected_cost"] == exact["expected_cost"]
        assert certified["centers"] == exact["centers"]
        assert certified["gap_target_hit"] is False

    @pytest.mark.parametrize("bad", [-0.1, float("nan"), True, "half"])
    def test_invalid_gap_target_is_400(self, client, bad):
        dataset = self._dataset()
        payload = {"dataset": dataset.to_dict(), "k": 2, "gap_target": bad}
        with pytest.raises(ServeError) as outcome:
            client.request("POST", "/v1/solve", payload)
        assert outcome.value.status == 400
