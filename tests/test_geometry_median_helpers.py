"""Unit tests for the geometric median and the small geometry helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.geometry import (
    bounding_box,
    bounding_box_diagonal,
    centroid,
    exact_diameter,
    farthest_point_index,
    geometric_median,
    median_objective,
    unique_points,
)

coords = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False)


class TestGeometricMedian:
    def test_single_point(self):
        np.testing.assert_allclose(geometric_median([[2.0, 3.0]]), [2.0, 3.0])

    def test_two_points_any_point_on_segment_is_optimal(self):
        median = geometric_median([[0.0, 0.0], [2.0, 0.0]])
        value = median_objective([[0.0, 0.0], [2.0, 0.0]], median)
        assert value == pytest.approx(2.0, abs=1e-6)

    def test_symmetric_square_center(self):
        points = [[1.0, 1.0], [1.0, -1.0], [-1.0, 1.0], [-1.0, -1.0]]
        median = geometric_median(points)
        np.testing.assert_allclose(median, [0.0, 0.0], atol=1e-6)

    def test_dominant_weight_snaps_to_point(self):
        points = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]]
        weights = [100.0, 1.0, 1.0]
        median = geometric_median(points, weights)
        np.testing.assert_allclose(median, [0.0, 0.0], atol=1e-3)

    def test_collinear_weighted_median(self):
        # In 1-D the geometric median is the weighted median.
        points = [[0.0], [1.0], [2.0], [3.0], [4.0]]
        median = geometric_median(points)
        assert median[0] == pytest.approx(2.0, abs=1e-6)

    def test_identical_points(self):
        median = geometric_median([[1.0, 2.0]] * 6)
        np.testing.assert_allclose(median, [1.0, 2.0], atol=1e-9)

    def test_invalid_weights(self):
        with pytest.raises(ValidationError):
            geometric_median([[0.0], [1.0]], weights=[1.0])
        with pytest.raises(ValidationError):
            geometric_median([[0.0], [1.0]], weights=[-1.0, 2.0])
        with pytest.raises(ValidationError):
            geometric_median([[0.0], [1.0]], weights=[0.0, 0.0])

    @given(arrays(np.float64, (7, 2), elements=coords))
    @settings(max_examples=40, deadline=None)
    def test_property_beats_every_input_point(self, points):
        median = geometric_median(points)
        best_input = min(median_objective(points, point) for point in points)
        assert median_objective(points, median) <= best_input + 1e-6

    @given(
        arrays(np.float64, (6, 2), elements=coords),
        arrays(np.float64, (3, 2), elements=coords),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_beats_random_candidates(self, points, candidates):
        median = geometric_median(points)
        value = median_objective(points, median)
        for candidate in candidates:
            assert value <= median_objective(points, candidate) + 1e-6


class TestHelpers:
    def test_bounding_box(self):
        lower, upper = bounding_box([[0.0, 1.0], [2.0, -1.0]])
        np.testing.assert_allclose(lower, [0.0, -1.0])
        np.testing.assert_allclose(upper, [2.0, 1.0])

    def test_bounding_box_diagonal(self):
        assert bounding_box_diagonal([[0.0, 0.0], [3.0, 4.0]]) == pytest.approx(5.0)

    def test_exact_diameter(self):
        points = [[0.0, 0.0], [1.0, 1.0], [3.0, 4.0]]
        assert exact_diameter(points) == pytest.approx(5.0)

    def test_exact_diameter_single_point(self):
        assert exact_diameter([[1.0, 1.0]]) == 0.0

    def test_centroid(self):
        np.testing.assert_allclose(centroid([[0.0, 0.0], [2.0, 2.0]]), [1.0, 1.0])

    def test_weighted_centroid(self):
        value = centroid(np.array([[0.0], [10.0]]), weights=np.array([3.0, 1.0]))
        assert value[0] == pytest.approx(2.5)

    def test_farthest_point_index(self):
        points = np.array([[0.0, 0.0], [5.0, 0.0], [1.0, 1.0]])
        assert farthest_point_index(points, np.array([0.0, 0.0])) == 1

    def test_unique_points(self):
        points = [[1.0, 1.0], [1.0, 1.0], [2.0, 2.0]]
        assert unique_points(points).shape == (2, 2)

    def test_diameter_upper_bounded_by_box_diagonal(self, rng):
        points = rng.normal(size=(20, 3))
        assert exact_diameter(points) <= bounding_box_diagonal(points) + 1e-9
