"""Tests for the sensitivity experiments and smoke tests for the examples."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    SensitivitySettings,
    run_outlier_sensitivity,
    run_support_size_sensitivity,
)

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def _load_example(name: str):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(f"examples_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


TINY = SensitivitySettings(n=12, k=2, trials=1, outlier_probabilities=(0.0, 0.2), support_sizes=(2, 4))


class TestSensitivityExperiments:
    def test_outlier_sweep_structure(self):
        record = run_outlier_sensitivity(TINY)
        assert record.experiment_id == "E13a"
        assert len(record.rows) == 2
        assert record.summary["ratio_bounded"]

    def test_outlier_sweep_cost_grows_with_noise(self):
        record = run_outlier_sensitivity(
            SensitivitySettings(n=20, k=2, trials=1, outlier_probabilities=(0.0, 0.3), support_sizes=(2,))
        )
        costs = [row.measured["mean_cost"] for row in record.rows]
        assert costs[-1] >= costs[0]

    def test_support_size_sweep_structure(self):
        record = run_support_size_sensitivity(TINY)
        assert record.experiment_id == "E13b"
        assert len(record.rows) == 2
        assert record.summary["cost_spread"] >= 1.0

    def test_quick_preset_is_smaller(self):
        assert SensitivitySettings.quick().n <= SensitivitySettings().n


class TestExampleScripts:
    """The examples are part of the public deliverable; keep them importable
    and make sure the fast ones run end to end."""

    def test_quickstart_runs(self, capsys):
        module = _load_example("quickstart.py")
        module.main()
        out = capsys.readouterr().out
        assert "unrestricted assigned solution" in out
        assert "empirical ratio" in out

    def test_quickstart_dataset_builder(self):
        module = _load_example("quickstart.py")
        dataset = module.build_dataset()
        assert dataset.size == 6
        assert dataset.dimension == 2

    def test_warehouse_example_runs(self, capsys):
        module = _load_example("warehouse_placement_1d.py")
        module.main()
        out = capsys.readouterr().out
        assert "Wang-Zhang" in out

    def test_other_examples_importable(self):
        for name in ("sensor_network_graph.py", "fleet_tracking_extensions.py"):
            module = _load_example(name)
            assert hasattr(module, "main")
