"""Tests for the synthetic workload generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import GraphMetric
from repro.workloads import (
    EUCLIDEAN_WORKLOADS,
    anisotropic_clusters,
    gaussian_clusters,
    graph_uncertain_workload,
    heavy_tailed,
    line_workload,
    random_graph_metric,
    uniform_cloud,
)


class TestEuclideanWorkloads:
    @pytest.mark.parametrize("name,maker", sorted(EUCLIDEAN_WORKLOADS.items()))
    def test_basic_shapes(self, name, maker):
        if name == "line":
            dataset, spec = maker(n=10, z=3, seed=0)
            expected_dim = 1
        else:
            dataset, spec = maker(n=10, z=3, dimension=2, seed=0)
            expected_dim = 2
        assert dataset.size == 10
        assert dataset.max_support_size == 3
        assert dataset.dimension == expected_dim
        assert spec.n == 10 and spec.z == 3
        assert spec.describe()

    @pytest.mark.parametrize("name,maker", sorted(EUCLIDEAN_WORKLOADS.items()))
    def test_determinism(self, name, maker):
        kwargs = {"n": 6, "z": 2, "seed": 42}
        if name != "line":
            kwargs["dimension"] = 2
        a, _ = maker(**kwargs)
        b, _ = maker(**kwargs)
        np.testing.assert_allclose(a.all_locations(), b.all_locations())
        np.testing.assert_allclose(a.all_probabilities(), b.all_probabilities())

    def test_different_seeds_differ(self):
        a, _ = gaussian_clusters(n=6, z=2, dimension=2, seed=0)
        b, _ = gaussian_clusters(n=6, z=2, dimension=2, seed=1)
        assert not np.allclose(a.all_locations(), b.all_locations())

    def test_gaussian_clusters_are_clustered(self):
        dataset, _ = gaussian_clusters(n=60, z=2, dimension=2, k_true=3, cluster_spread=50.0, seed=1)
        # The spread between cluster centers dominates the within-cluster
        # jitter, so the per-point location jitter is small relative to the
        # dataset diameter.
        locations = dataset.all_locations()
        diameter = np.linalg.norm(locations.max(axis=0) - locations.min(axis=0))
        per_point_spread = max(
            np.linalg.norm(point.locations.max(axis=0) - point.locations.min(axis=0)) for point in dataset
        )
        assert per_point_spread < diameter / 5

    def test_heavy_tailed_has_outliers(self):
        dataset, _ = heavy_tailed(n=20, z=4, dimension=2, outlier_scale=100.0, seed=0)
        has_far_location = False
        for point in dataset:
            expected = point.expected_point()
            distances = np.linalg.norm(point.locations - expected, axis=1)
            if distances.max() > 20.0:
                has_far_location = True
        assert has_far_location

    def test_line_workload_is_one_dimensional(self):
        dataset, spec = line_workload(n=10, z=2, seed=0)
        assert dataset.dimension == 1
        assert spec.dimension == 1

    def test_uniform_cloud_within_extent(self):
        dataset, _ = uniform_cloud(n=10, z=2, dimension=2, extent=5.0, location_jitter=0.5, seed=0)
        assert np.abs(dataset.all_locations()).max() <= 5.5 + 1e-9

    def test_anisotropic_dimension_parameter(self):
        dataset, _ = anisotropic_clusters(n=8, z=2, dimension=3, seed=0)
        assert dataset.dimension == 3

    def test_probabilities_are_valid(self):
        for maker in (gaussian_clusters, uniform_cloud, heavy_tailed, anisotropic_clusters):
            dataset, _ = maker(n=5, z=4, dimension=2, seed=3)
            for point in dataset:
                assert point.probabilities.min() >= 0
                assert point.probabilities.sum() == pytest.approx(1.0)


class TestGraphWorkloads:
    @pytest.mark.parametrize("model", ["watts-strogatz", "grid", "geometric"])
    def test_random_graph_metric_models(self, model):
        metric = random_graph_metric(20, model=model, seed=0)
        assert isinstance(metric, GraphMetric)
        assert metric.size >= 16

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            random_graph_metric(10, model="unknown")

    def test_graph_workload_locations_are_nodes(self):
        dataset, spec = graph_uncertain_workload(n=8, z=3, node_count=25, seed=1)
        assert isinstance(dataset.metric, GraphMetric)
        size = dataset.metric.size
        for point in dataset:
            for location in point.locations:
                assert 0 <= int(location[0]) < size
        assert spec.name.startswith("graph-")

    def test_graph_workload_determinism(self):
        a, _ = graph_uncertain_workload(n=6, z=2, node_count=20, seed=5)
        b, _ = graph_uncertain_workload(n=6, z=2, node_count=20, seed=5)
        np.testing.assert_allclose(a.all_locations(), b.all_locations())

    def test_locations_are_local_neighbourhoods(self):
        dataset, _ = graph_uncertain_workload(n=10, z=3, node_count=30, locality=2, seed=2)
        matrix = dataset.metric.matrix
        diameter = matrix.max()
        for point in dataset:
            indices = point.locations[:, 0].astype(int)
            spread = matrix[np.ix_(indices, indices)].max()
            assert spread <= diameter  # sanity: within the graph
