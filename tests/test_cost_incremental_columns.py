"""Differential tests for incremental candidate-column replacement.

``AssignedCostEvaluator.replace_candidate_columns`` and
``CostContext.replace_candidate_columns`` / ``with_candidates`` must be
indistinguishable from a from-scratch build over the modified candidate set —
including after chains of replacements, on zero-probability supports and with
repeated values — and ``wang_zhang_1d`` must exploit them (one context per
restart instead of one per coordinate sweep).
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.cost.context as context_module
from repro.cost.context import CostContext
from repro.cost.expected import AssignedCostEvaluator
from repro.baselines.wang_zhang_1d import _ed_cost, wang_zhang_1d
from repro.runtime import ContextStore
from repro.workloads import gaussian_clusters, line_workload


def _random_instance(rng, n=5, z=3, m=6, zero_probability=False):
    supports = [rng.uniform(0.0, 4.0, size=(z, m)) for _ in range(n)]
    probabilities = []
    for _ in range(n):
        weight = rng.uniform(0.1, 1.0, size=z)
        if zero_probability:
            weight[rng.integers(0, z)] = 0.0
        probabilities.append(weight / weight.sum())
    return supports, probabilities


class TestEvaluatorReplaceColumns:
    @pytest.mark.parametrize("zero_probability", [False, True])
    def test_matches_scratch_build(self, zero_probability):
        rng = np.random.default_rng(3)
        supports, probabilities = _random_instance(rng, zero_probability=zero_probability)
        evaluator = AssignedCostEvaluator(supports, probabilities)
        columns = np.asarray([1, 4])
        blocks = [rng.uniform(0.0, 4.0, size=(s.shape[0], 2)) for s in supports]
        evaluator.replace_candidate_columns(columns, blocks)

        replaced = [s.copy() for s in supports]
        for new, block in zip(replaced, blocks):
            new[:, columns] = block
        scratch = AssignedCostEvaluator(replaced, probabilities)

        rows = rng.integers(0, 6, size=(32, len(supports)))
        np.testing.assert_array_equal(evaluator.costs(rows), scratch.costs(rows))

    def test_repeated_values_and_chained_replacements(self):
        rng = np.random.default_rng(11)
        supports, probabilities = _random_instance(rng)
        # Inject repeated values within and across variables.
        for support in supports:
            support[0, :] = support[1, :]
        evaluator = AssignedCostEvaluator(supports, probabilities)
        replaced = [s.copy() for s in supports]
        for step in range(4):
            column = int(rng.integers(0, 6))
            blocks = [rng.uniform(0.0, 4.0, size=s.shape[0]) for s in supports]
            evaluator.replace_candidate_column(column, blocks)
            for new, block in zip(replaced, blocks):
                new[:, column] = block
        scratch = AssignedCostEvaluator(replaced, probabilities)
        rows = rng.integers(0, 6, size=(16, len(supports)))
        np.testing.assert_array_equal(evaluator.costs(rows), scratch.costs(rows))

    def test_single_column_rejects_bad_shapes(self):
        rng = np.random.default_rng(0)
        supports, probabilities = _random_instance(rng)
        evaluator = AssignedCostEvaluator(supports, probabilities)
        from repro.exceptions import ValidationError

        with pytest.raises(ValidationError):
            evaluator.replace_candidate_columns(np.asarray([99]), [
                rng.uniform(size=(s.shape[0], 1)) for s in supports
            ])
        with pytest.raises(ValidationError):
            evaluator.replace_candidate_columns(np.asarray([0, 0]), [
                rng.uniform(size=(s.shape[0], 2)) for s in supports
            ])

    def test_clone_isolates_mutation(self):
        rng = np.random.default_rng(5)
        supports, probabilities = _random_instance(rng)
        evaluator = AssignedCostEvaluator(supports, probabilities)
        twin = evaluator.clone()
        rows = rng.integers(0, 6, size=(8, len(supports)))
        before = evaluator.costs(rows)
        twin.replace_candidate_column(2, [rng.uniform(size=s.shape[0]) for s in supports])
        np.testing.assert_array_equal(evaluator.costs(rows), before)
        assert not np.array_equal(twin.costs(rows), before)


class TestContextReplaceColumns:
    def test_matches_scratch_context_everywhere(self):
        dataset, _ = gaussian_clusters(n=6, z=3, dimension=2, k_true=2, seed=13)
        candidates = dataset.all_locations()[:8]
        context = CostContext(dataset, candidates)
        context.evaluator  # materialize everything before splicing
        context.expected
        rng = np.random.default_rng(1)
        columns = np.asarray([0, 5])
        replacement = rng.uniform(-2.0, 2.0, size=(2, 2))
        context.replace_candidate_columns(columns, replacement)

        new_candidates = candidates.copy()
        new_candidates[columns] = replacement
        scratch = CostContext(dataset, new_candidates)

        np.testing.assert_allclose(context.expected, scratch.expected, rtol=1e-13)
        rows = rng.integers(0, 8, size=(16, dataset.size))
        np.testing.assert_allclose(
            context.assigned_costs(rows), scratch.assigned_costs(rows), rtol=1e-13
        )
        subsets = np.asarray([[0, 3], [5, 6], [1, 2]])
        np.testing.assert_allclose(
            context.unassigned_costs(subsets), scratch.unassigned_costs(subsets), rtol=1e-13
        )
        np.testing.assert_array_equal(context.ed_assignments(subsets), scratch.ed_assignments(subsets))

    def test_lazy_context_defers_to_fresh_build(self):
        dataset, _ = gaussian_clusters(n=5, z=2, dimension=2, k_true=2, seed=14)
        candidates = dataset.all_locations()[:6]
        context = CostContext(dataset, candidates)
        replacement = np.asarray([[0.25, -0.75]])
        context.replace_candidate_columns(np.asarray([2]), replacement)  # nothing built yet
        new_candidates = candidates.copy()
        new_candidates[2] = replacement
        scratch = CostContext(dataset, new_candidates)
        np.testing.assert_array_equal(context.expected, scratch.expected)

    def test_with_candidates_reuses_and_isolates(self):
        dataset, _ = gaussian_clusters(n=5, z=3, dimension=2, k_true=2, seed=15)
        candidates = dataset.all_locations()[:6]
        context = CostContext(dataset, candidates)
        context.evaluator
        assert context.with_candidates(candidates.copy()) is context

        new_candidates = candidates.copy()
        new_candidates[3] += 0.5
        twin = context.with_candidates(new_candidates)
        assert twin is not context
        np.testing.assert_array_equal(context.candidates, candidates)  # original untouched
        scratch = CostContext(dataset, new_candidates)
        rows = np.random.default_rng(2).integers(0, 6, size=(8, dataset.size))
        np.testing.assert_allclose(twin.assigned_costs(rows), scratch.assigned_costs(rows), rtol=1e-13)

        wider = context.with_candidates(dataset.all_locations()[:9])
        assert wider.candidate_count == 9  # shape change -> fresh build


class TestWangZhangIncremental:
    def test_descent_builds_one_context_per_start(self):
        dataset, _ = line_workload(n=6, z=3, segment_count=3, seed=2)
        original_init = context_module.CostContext.__init__
        counter = {"constructions": 0}

        def counting_init(self, *args, **kwargs):
            counter["constructions"] += 1
            return original_init(self, *args, **kwargs)

        context_module.CostContext.__init__ = counting_init
        try:
            result = wang_zhang_1d(dataset, 3, restarts=2, refine_rounds=10)
        finally:
            context_module.CostContext.__init__ = original_init
        # One context per restart (3 starts), none per coordinate sweep: the
        # historical implementation constructed rounds * k contexts per start.
        assert counter["constructions"] == result.metadata["restarts"] == 3

    def test_ed_cost_routes_through_context_and_store(self):
        dataset, _ = line_workload(n=6, z=3, segment_count=2, seed=7)
        centers = dataset.expected_points()[:2]
        baseline_cost, baseline_labels = _ed_cost(dataset, centers)

        superset = np.vstack([centers, dataset.all_locations()[:4]])
        context = CostContext(dataset, superset)
        routed_cost, routed_labels = _ed_cost(dataset, centers, context=context)
        assert routed_cost == pytest.approx(baseline_cost, rel=1e-12)
        np.testing.assert_array_equal(routed_labels, baseline_labels)

        store = ContextStore()
        store_cost, store_labels = _ed_cost(dataset, centers, store=store)
        again_cost, _ = _ed_cost(dataset, centers, store=store)
        assert store_cost == baseline_cost == again_cost
        np.testing.assert_array_equal(store_labels, baseline_labels)
        assert store.hits == 1  # the second call reused the memoized context

    def test_foreign_context_falls_back(self):
        dataset, _ = line_workload(n=5, z=2, segment_count=2, seed=3)
        centers = dataset.expected_points()[:2]
        # A context over unrelated candidates cannot serve these centers.
        context = CostContext(dataset, dataset.all_locations()[:3] + 17.0)
        cost, labels = _ed_cost(dataset, centers, context=context)
        baseline_cost, baseline_labels = _ed_cost(dataset, centers)
        assert cost == baseline_cost
        np.testing.assert_array_equal(labels, baseline_labels)
