"""Tests for the general-metric algorithms (Theorems 2.6 and 2.7)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import solve_metric_unrestricted
from repro.baselines import brute_force_unrestricted_assigned
from repro.cost import expected_cost_assigned
from repro.exceptions import ValidationError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestMetricUnrestricted:
    def test_result_structure_on_graph(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 2)
        assert result.objective == "unrestricted-assigned"
        assert result.assignment_policy == "one-center"
        assert result.metadata["theorem"] == "2.7"
        assert result.centers.shape == (2, 1)
        assert result.representatives.shape == (graph_dataset.size, 1)

    def test_centers_are_graph_elements(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 3)
        size = graph_dataset.metric.size
        for center in result.centers:
            assert 0 <= int(center[0]) < size
            assert center[0] == pytest.approx(round(center[0]))

    def test_expected_distance_variant_is_theorem_26(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 2, assignment="expected-distance")
        assert result.metadata["theorem"] == "2.6"
        assert result.guaranteed_factor == pytest.approx(9.0)  # 5 + 2*2 with Gonzalez

    def test_one_center_variant_factor(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 2, assignment="one-center")
        assert result.guaranteed_factor == pytest.approx(7.0)  # 3 + 2*2 with Gonzalez

    def test_cost_consistent_with_engine(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 2)
        recomputed = expected_cost_assigned(graph_dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(recomputed)

    def test_unknown_assignment_rejected(self, graph_dataset):
        with pytest.raises(ValidationError):
            solve_metric_unrestricted(graph_dataset, 2, assignment="expected-point")

    def test_also_works_in_euclidean_space(self, euclidean_dataset):
        # The general-metric pipeline is valid (if weaker) in Euclidean space.
        result = solve_metric_unrestricted(euclidean_dataset, 2)
        assert result.centers.shape == (2, 2)
        assert result.expected_cost > 0

    def test_custom_candidates(self, graph_dataset):
        candidates = graph_dataset.metric.all_elements()[:10]
        result = solve_metric_unrestricted(graph_dataset, 2, candidates=candidates)
        assert result.centers.shape == (2, 1)

    @pytest.mark.parametrize("seed", range(3))
    def test_guarantee_vs_reference_on_graph(self, seed):
        dataset = make_graph_dataset(n=6, z=3, nodes=15, seed=seed)
        reference = brute_force_unrestricted_assigned(dataset, 2)
        for assignment in ("one-center", "expected-distance"):
            result = solve_metric_unrestricted(dataset, 2, assignment=assignment)
            assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-9

    def test_hochbaum_shmoys_solver_option(self, graph_dataset):
        result = solve_metric_unrestricted(graph_dataset, 2, solver="hochbaum-shmoys")
        assert result.guaranteed_factor == pytest.approx(7.0)
