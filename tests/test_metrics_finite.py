"""Unit tests for the finite metrics (distance matrix and graph)."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import MetricError, ValidationError
from repro.metrics import GraphMetric, MatrixMetric


def simple_matrix() -> np.ndarray:
    # A path metric on 4 points: 0 - 1 - 2 - 3 with unit edges.
    return np.array(
        [
            [0.0, 1.0, 2.0, 3.0],
            [1.0, 0.0, 1.0, 2.0],
            [2.0, 1.0, 0.0, 1.0],
            [3.0, 2.0, 1.0, 0.0],
        ]
    )


class TestMatrixMetric:
    def test_basic_distances(self):
        metric = MatrixMetric(simple_matrix())
        assert metric.size == 4
        assert metric.distance(metric.element(0), metric.element(3)) == pytest.approx(3.0)
        assert metric.distance([1.0], [2.0]) == pytest.approx(1.0)

    def test_pairwise(self):
        metric = MatrixMetric(simple_matrix())
        points = np.array([[0.0], [2.0]])
        matrix = metric.pairwise(points, metric.all_elements())
        assert matrix.shape == (2, 4)
        np.testing.assert_allclose(matrix[0], [0.0, 1.0, 2.0, 3.0])

    def test_candidate_centers_are_all_elements(self):
        metric = MatrixMetric(simple_matrix())
        candidates = metric.candidate_centers(np.array([[1.0]]))
        assert candidates.shape == (4, 1)

    def test_rejects_asymmetric(self):
        bad = simple_matrix()
        bad[0, 1] = 5.0
        with pytest.raises(MetricError):
            MatrixMetric(bad)

    def test_rejects_negative(self):
        bad = simple_matrix()
        bad[0, 1] = bad[1, 0] = -1.0
        with pytest.raises(MetricError):
            MatrixMetric(bad)

    def test_rejects_nonzero_diagonal(self):
        bad = simple_matrix()
        bad[1, 1] = 0.5
        with pytest.raises(MetricError):
            MatrixMetric(bad)

    def test_rejects_triangle_violation(self):
        bad = simple_matrix()
        bad[0, 3] = bad[3, 0] = 100.0
        with pytest.raises(MetricError):
            MatrixMetric(bad)

    def test_rejects_non_square(self):
        with pytest.raises(ValidationError):
            MatrixMetric(np.zeros((2, 3)))

    def test_rejects_fractional_point(self):
        metric = MatrixMetric(simple_matrix())
        with pytest.raises(MetricError):
            metric.distance([0.5], [1.0])

    def test_rejects_out_of_range_index(self):
        metric = MatrixMetric(simple_matrix())
        with pytest.raises(MetricError):
            metric.distance([0.0], [9.0])
        with pytest.raises(MetricError):
            metric.element(7)

    def test_matrix_view_is_readonly(self):
        metric = MatrixMetric(simple_matrix())
        with pytest.raises(ValueError):
            metric.matrix[0, 0] = 1.0

    def test_does_not_support_expected_point(self):
        assert MatrixMetric(simple_matrix()).supports_expected_point is False


class TestGraphMetric:
    def make_graph(self) -> nx.Graph:
        graph = nx.Graph()
        graph.add_weighted_edges_from([("a", "b", 1.0), ("b", "c", 2.0), ("c", "d", 1.0), ("a", "d", 5.0)])
        return graph

    def test_shortest_path_distances(self):
        metric = GraphMetric(self.make_graph())
        a, d = metric.point_for("a"), metric.point_for("d")
        # a-b-c-d = 4, direct a-d = 5, so the metric distance is 4.
        assert metric.distance(a, d) == pytest.approx(4.0)

    def test_node_round_trip(self):
        metric = GraphMetric(self.make_graph())
        for node in metric.nodes:
            assert metric.node_of(metric.point_for(node)) == node

    def test_points_for_batch(self):
        metric = GraphMetric(self.make_graph())
        points = metric.points_for(["a", "c"])
        assert points.shape == (2, 1)

    def test_unknown_node_raises(self):
        metric = GraphMetric(self.make_graph())
        with pytest.raises(MetricError):
            metric.index_of("missing")

    def test_disconnected_graph_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=1.0)
        graph.add_node("lonely")
        with pytest.raises(MetricError):
            GraphMetric(graph)

    def test_directed_graph_rejected(self):
        with pytest.raises(MetricError):
            GraphMetric(nx.DiGraph([("a", "b")]))

    def test_negative_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge("a", "b", weight=-1.0)
        with pytest.raises(MetricError):
            GraphMetric(graph)

    def test_empty_graph_rejected(self):
        with pytest.raises(ValidationError):
            GraphMetric(nx.Graph())

    def test_unweighted_edges_default_to_one(self):
        graph = nx.path_graph(4)
        metric = GraphMetric(graph)
        assert metric.distance(metric.element(0), metric.element(3)) == pytest.approx(3.0)

    def test_axioms_hold(self):
        graph = nx.connected_watts_strogatz_graph(15, 4, 0.2, seed=3)
        metric = GraphMetric(graph)
        assert metric.check_axioms(metric.all_elements())
