"""Tests for the command-line interface."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from tests.conftest import make_uncertain_dataset


@pytest.fixture
def dataset_file(tmp_path):
    dataset = make_uncertain_dataset(n=6, z=2, dimension=2, seed=3)
    path = tmp_path / "instance.json"
    dataset.save_json(path)
    return path


class TestSolveCommand:
    def test_unrestricted_text_output(self, dataset_file, capsys):
        exit_code = main(["solve", str(dataset_file), "-k", "2"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "unrestricted-assigned" in captured
        assert "center[0]" in captured

    def test_restricted_json_output(self, dataset_file, capsys):
        exit_code = main(
            ["solve", str(dataset_file), "-k", "2", "--objective", "restricted", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["objective"] == "restricted-assigned"
        assert len(payload["centers"]) == 2
        assert payload["guaranteed_factor"] is not None

    def test_metric_objective(self, dataset_file, capsys):
        exit_code = main(["solve", str(dataset_file), "-k", "2", "--objective", "metric", "--json"])
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["assignment_policy"] == "one-center"

    def test_epsilon_solver_option(self, dataset_file, capsys):
        exit_code = main(
            ["solve", str(dataset_file), "-k", "2", "--solver", "epsilon", "--epsilon", "0.2", "--json"]
        )
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["expected_cost"] > 0


class TestOtherCommands:
    def test_demo(self, capsys):
        exit_code = main(["demo", "-n", "12", "-z", "2", "-k", "2"])
        assert exit_code == 0
        out = capsys.readouterr().out
        assert "workload:" in out and "Ecost" in out

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["bogus"])

    def test_table1_quick_writes_report(self, tmp_path, capsys, monkeypatch):
        # Patch the quick settings to the tiniest possible run so the CLI test
        # stays fast while still exercising the full path.
        from repro.experiments.table1 import Table1Settings

        tiny = Table1Settings(trials=1, n_small=4, n_medium=10, z=2, k=2)
        monkeypatch.setattr(Table1Settings, "quick", classmethod(lambda cls: tiny))
        output = tmp_path / "report.txt"
        exit_code = main(["table1", "--quick", "--output", str(output)])
        assert exit_code == 0
        assert output.exists()
        text = output.read_text()
        assert "E1" in text and "E10" in text
