"""Property-based end-to-end checks of the paper's approximation guarantees.

These are the reproduction's core correctness tests: on randomly generated
micro instances (where a brute-force reference is affordable) every theorem's
guarantee must hold between the algorithm's exact expected cost and the
reference.  The references upper-bound the true optima, which makes each
assertion conservative — a failure would be a genuine violation.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import UncertainDataset, UncertainPoint
from repro.algorithms import (
    expected_point_one_center,
    refined_uncertain_one_center,
    solve_metric_unrestricted,
    solve_restricted_assigned,
    solve_unrestricted_assigned,
)
from repro.assignments import ExpectedDistanceAssignment, ExpectedPointAssignment
from repro.baselines import (
    brute_force_restricted_assigned,
    brute_force_unrestricted_assigned,
)
from repro.metrics import MatrixMetric

coordinate = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)


@st.composite
def euclidean_instance(draw, max_points: int = 5, max_support: int = 3, dimension: int = 2):
    """A random small Euclidean uncertain dataset."""
    n = draw(st.integers(min_value=2, max_value=max_points))
    points = []
    for _ in range(n):
        z = draw(st.integers(min_value=1, max_value=max_support))
        locations = np.array(
            [[draw(coordinate) for _ in range(dimension)] for _ in range(z)]
        )
        raw = np.array([draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(z)])
        points.append(UncertainPoint(locations=locations, probabilities=raw / raw.sum()))
    return UncertainDataset(points=tuple(points))


@st.composite
def finite_metric_instance(draw, elements: int = 8, max_points: int = 4, max_support: int = 3):
    """A random small uncertain dataset over a random finite metric.

    The metric is the shortest-path closure of a random symmetric weight
    matrix, which always satisfies the triangle inequality.
    """
    raw = np.array(
        [[draw(st.floats(min_value=0.5, max_value=10.0)) for _ in range(elements)] for _ in range(elements)]
    )
    symmetric = (raw + raw.T) / 2.0
    np.fill_diagonal(symmetric, 0.0)
    # Floyd–Warshall closure to enforce the triangle inequality.
    closure = symmetric.copy()
    for middle in range(elements):
        closure = np.minimum(closure, closure[:, middle][:, None] + closure[middle, :][None, :])
    metric = MatrixMetric(closure)

    n = draw(st.integers(min_value=2, max_value=max_points))
    points = []
    for _ in range(n):
        z = draw(st.integers(min_value=1, max_value=max_support))
        chosen = draw(
            st.lists(st.integers(min_value=0, max_value=elements - 1), min_size=z, max_size=z)
        )
        locations = np.array(chosen, dtype=float).reshape(-1, 1)
        raw_probabilities = np.array([draw(st.floats(min_value=0.05, max_value=1.0)) for _ in range(z)])
        points.append(
            UncertainPoint(locations=locations, probabilities=raw_probabilities / raw_probabilities.sum())
        )
    return UncertainDataset(points=tuple(points), metric=metric)


COMMON_SETTINGS = dict(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


class TestTheorem21Property:
    @given(euclidean_instance())
    @settings(**COMMON_SETTINGS)
    def test_expected_point_is_2_approximation(self, dataset):
        theorem = expected_point_one_center(dataset)
        reference = refined_uncertain_one_center(dataset)
        assert theorem.expected_cost <= 2.0 * reference.expected_cost + 1e-7


class TestTheorem22Property:
    @given(euclidean_instance(), st.integers(min_value=1, max_value=3), st.sampled_from(["gonzalez", "epsilon"]))
    @settings(**COMMON_SETTINGS)
    def test_expected_distance_guarantee(self, dataset, k, solver):
        result = solve_restricted_assigned(dataset, k, assignment="expected-distance", solver=solver)
        reference = brute_force_restricted_assigned(dataset, k, assignment=ExpectedDistanceAssignment())
        assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-7

    @given(euclidean_instance(), st.integers(min_value=1, max_value=3), st.sampled_from(["gonzalez", "epsilon"]))
    @settings(**COMMON_SETTINGS)
    def test_expected_point_guarantee(self, dataset, k, solver):
        result = solve_restricted_assigned(dataset, k, assignment="expected-point", solver=solver)
        reference = brute_force_restricted_assigned(dataset, k, assignment=ExpectedPointAssignment())
        assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-7


class TestTheorems2425Property:
    @given(euclidean_instance(), st.integers(min_value=1, max_value=3))
    @settings(**COMMON_SETTINGS)
    def test_unrestricted_guarantees(self, dataset, k):
        reference = brute_force_unrestricted_assigned(dataset, k)
        for assignment in ("expected-point", "expected-distance"):
            result = solve_unrestricted_assigned(dataset, k, assignment=assignment, solver="gonzalez")
            assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-7


class TestTheorems2627Property:
    @given(finite_metric_instance(), st.integers(min_value=1, max_value=3))
    @settings(**COMMON_SETTINGS)
    def test_metric_guarantees(self, dataset, k):
        reference = brute_force_unrestricted_assigned(dataset, k)
        for assignment in ("one-center", "expected-distance"):
            result = solve_metric_unrestricted(dataset, k, assignment=assignment, solver="gonzalez")
            assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-7


class TestStructuralProperties:
    @given(euclidean_instance(), st.integers(min_value=1, max_value=3))
    @settings(**COMMON_SETTINGS)
    def test_assignment_hierarchy(self, dataset, k):
        # Unassigned optimum <= unrestricted assigned optimum <= ED-restricted
        # optimum, all over the same candidate set.
        from repro.baselines import brute_force_unassigned

        unassigned = brute_force_unassigned(dataset, k)
        unrestricted = brute_force_unrestricted_assigned(dataset, k)
        restricted = brute_force_restricted_assigned(dataset, k)
        assert unassigned.expected_cost <= unrestricted.expected_cost + 1e-9
        assert unrestricted.expected_cost <= restricted.expected_cost + 1e-9

    @given(euclidean_instance())
    @settings(**COMMON_SETTINGS)
    def test_lower_bound_below_reference(self, dataset):
        from repro.bounds import assigned_cost_lower_bound

        k = 2
        reference = brute_force_unrestricted_assigned(dataset, k)
        assert assigned_cost_lower_bound(dataset, k) <= reference.expected_cost + 1e-9
