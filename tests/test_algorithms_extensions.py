"""Tests for the k-median / k-means extensions (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import solve_uncertain_kmeans, solve_uncertain_kmedian
from repro.cost import expected_distance_matrix
from repro.exceptions import NotSupportedError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestUncertainKMedian:
    def test_result_structure(self, euclidean_dataset):
        result = solve_uncertain_kmedian(euclidean_dataset, 2)
        assert result.objective == "assigned-k-median"
        assert result.centers.shape[0] == 2
        assert result.assignment.shape == (euclidean_dataset.size,)

    def test_cost_matches_expected_distance_sum(self, euclidean_dataset):
        result = solve_uncertain_kmedian(euclidean_dataset, 2)
        matrix = expected_distance_matrix(euclidean_dataset, result.centers)
        manual = float(matrix[np.arange(euclidean_dataset.size), result.assignment].sum())
        assert result.expected_cost == pytest.approx(manual, rel=1e-9)

    def test_assignment_is_best_response(self, euclidean_dataset):
        # For the separable k-median objective the expected-distance assignment
        # is optimal given the centers.
        result = solve_uncertain_kmedian(euclidean_dataset, 3)
        matrix = expected_distance_matrix(euclidean_dataset, result.centers)
        np.testing.assert_array_equal(result.assignment, matrix.argmin(axis=1))

    def test_more_centers_never_hurt(self, euclidean_dataset):
        small = solve_uncertain_kmedian(euclidean_dataset, 1, seed=0)
        large = solve_uncertain_kmedian(euclidean_dataset, 3, seed=0)
        assert large.expected_cost <= small.expected_cost + 1e-9

    def test_works_on_graph_metric(self, graph_dataset):
        result = solve_uncertain_kmedian(graph_dataset, 2)
        assert result.centers.shape == (2, 1)
        assert result.expected_cost >= 0

    def test_k_equals_number_of_points(self):
        dataset = make_uncertain_dataset(n=4, z=2, dimension=2, seed=3, spread=10.0, jitter=0.01)
        result = solve_uncertain_kmedian(dataset, 4)
        # With one center per well separated point the cost is just the
        # per-point spread, which is tiny.
        assert result.expected_cost < 0.5


class TestUncertainKMeans:
    def test_result_structure(self, euclidean_dataset):
        result = solve_uncertain_kmeans(euclidean_dataset, 2)
        assert result.objective == "assigned-k-means"
        assert result.centers.shape == (2, 2)

    def test_cost_includes_variance_floor(self):
        # Even with a center on every expected point the objective keeps the
        # per-point variance term, so it must stay strictly positive for
        # genuinely uncertain points.
        dataset = make_uncertain_dataset(n=4, z=3, dimension=2, seed=5, jitter=1.0)
        result = solve_uncertain_kmeans(dataset, 4)
        assert result.expected_cost > 0

    def test_certain_points_reach_zero(self, certain_dataset):
        result = solve_uncertain_kmeans(certain_dataset, certain_dataset.size)
        assert result.expected_cost == pytest.approx(0.0, abs=1e-9)

    def test_rejected_on_graph_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            solve_uncertain_kmeans(graph_dataset, 2)

    def test_deterministic_given_seed(self, euclidean_dataset):
        a = solve_uncertain_kmeans(euclidean_dataset, 2, seed=3)
        b = solve_uncertain_kmeans(euclidean_dataset, 2, seed=3)
        assert a.expected_cost == pytest.approx(b.expected_cost)
