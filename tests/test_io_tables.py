"""Tests for the CSV location-table import/export."""

from __future__ import annotations

import numpy as np
import pytest

from repro import dump_location_table, load_location_table
from repro.exceptions import ProbabilityError, ValidationError
from repro.io import dataset_from_records
from tests.conftest import make_uncertain_dataset


class TestDatasetFromRecords:
    def test_basic_grouping(self):
        records = [
            ("a", 0.7, 0.0, 0.0),
            ("a", 0.3, 1.0, 0.0),
            ("b", 1.0, 5.0, 5.0),
        ]
        dataset = dataset_from_records(records)
        assert dataset.size == 2
        assert dataset[0].label == "a"
        assert dataset[0].support_size == 2
        assert dataset[1].is_certain

    def test_order_of_first_appearance_preserved(self):
        records = [
            ("z-last", 1.0, 0.0),
            ("a-first", 0.5, 1.0),
            ("a-first", 0.5, 2.0),
        ]
        dataset = dataset_from_records(records)
        assert [point.label for point in dataset] == ["z-last", "a-first"]

    def test_unnormalised_weights_need_flag(self):
        records = [("a", 2.0, 0.0), ("a", 2.0, 1.0)]
        with pytest.raises(ProbabilityError):
            dataset_from_records(records)
        dataset = dataset_from_records(records, normalize=True)
        np.testing.assert_allclose(dataset[0].probabilities, [0.5, 0.5])

    def test_bad_rows_rejected(self):
        with pytest.raises(ValidationError):
            dataset_from_records([("a", 1.0)])
        with pytest.raises(ValidationError):
            dataset_from_records([("a", "not-a-number", 0.0)])
        with pytest.raises(ValidationError):
            dataset_from_records([])

    def test_inconsistent_dimension_rejected(self):
        records = [("a", 1.0, 0.0), ("b", 1.0, 0.0, 1.0)]
        with pytest.raises(ValidationError):
            dataset_from_records(records)


class TestCsvRoundTrip:
    def test_round_trip_preserves_dataset(self, tmp_path):
        dataset = make_uncertain_dataset(n=5, z=3, dimension=2, seed=13)
        path = tmp_path / "table.csv"
        dump_location_table(dataset, path)
        restored = load_location_table(path)
        assert restored.size == dataset.size
        np.testing.assert_allclose(restored.all_locations(), dataset.all_locations())
        np.testing.assert_allclose(restored.all_probabilities(), dataset.all_probabilities())
        assert [point.label for point in restored] == [point.label for point in dataset]

    def test_header_written(self, tmp_path):
        dataset = make_uncertain_dataset(n=2, z=2, dimension=3, seed=1)
        path = tmp_path / "table.csv"
        dump_location_table(dataset, path)
        header = path.read_text().splitlines()[0]
        assert header == "entity,probability,x0,x1,x2"

    def test_load_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValidationError):
            load_location_table(path)

    def test_load_rejects_short_header(self, tmp_path):
        path = tmp_path / "short.csv"
        path.write_text("entity,probability\n")
        with pytest.raises(ValidationError):
            load_location_table(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "table.csv"
        path.write_text("entity,probability,x0\na,0.5,0.0\n\na,0.5,1.0\n")
        dataset = load_location_table(path)
        assert dataset.size == 1
        assert dataset[0].support_size == 2

    def test_custom_delimiter(self, tmp_path):
        path = tmp_path / "table.tsv"
        path.write_text("entity\tprobability\tx0\na\t1.0\t3.5\n")
        dataset = load_location_table(path, delimiter="\t")
        assert dataset[0].locations[0, 0] == pytest.approx(3.5)

    def test_loaded_dataset_is_solvable(self, tmp_path):
        from repro import solve_unrestricted_assigned

        dataset = make_uncertain_dataset(n=6, z=2, dimension=2, seed=2)
        path = tmp_path / "table.csv"
        dump_location_table(dataset, path)
        restored = load_location_table(path)
        result = solve_unrestricted_assigned(restored, 2)
        assert result.expected_cost > 0
