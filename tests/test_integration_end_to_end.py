"""Integration tests exercising the full pipeline across modules.

Each test mirrors a realistic usage path: generate a workload, run the
paper's algorithm, verify the guarantee against references/lower bounds, and
cross-check the cost with an independent engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExpectedDistanceAssignment,
    UncertainDataset,
    assigned_cost_lower_bound,
    brute_force_unrestricted_assigned,
    cormode_mcgregor_baseline,
    expected_cost_assigned,
    expected_cost_unassigned,
    gaussian_clusters,
    graph_uncertain_workload,
    guha_munagala_baseline,
    heavy_tailed,
    line_workload,
    monte_carlo_cost_assigned,
    solve_metric_unrestricted,
    solve_restricted_assigned,
    solve_uncertain_kmedian,
    solve_unrestricted_assigned,
    wang_zhang_1d,
)


class TestEuclideanPipeline:
    def test_gaussian_workload_end_to_end(self):
        dataset, spec = gaussian_clusters(n=50, z=4, dimension=2, k_true=4, seed=1)
        result = solve_unrestricted_assigned(dataset, 4, solver="epsilon", epsilon=0.1)

        # Exact cost agrees with an independent Monte-Carlo estimate.
        estimate = monte_carlo_cost_assigned(
            dataset, result.centers, result.assignment, samples=20_000, rng=0
        )
        assert estimate.within(result.expected_cost, sigmas=5.0)

        # Guarantee holds against the provable lower bound.
        lower_bound = assigned_cost_lower_bound(dataset, 4)
        assert lower_bound > 0
        assert result.expected_cost / lower_bound <= result.guaranteed_factor + 1e-9

        # The well-clustered workload should be solved nearly optimally.
        assert result.expected_cost / lower_bound < 2.5

    def test_restricted_vs_unrestricted_consistency(self):
        dataset, _ = gaussian_clusters(n=30, z=3, dimension=3, k_true=3, seed=2)
        restricted = solve_restricted_assigned(dataset, 3, assignment="expected-point", solver="epsilon")
        unrestricted = solve_unrestricted_assigned(dataset, 3, assignment="expected-point", solver="epsilon")
        # Identical reduction => identical centers and costs; only the claimed
        # benchmark differs.
        np.testing.assert_allclose(restricted.centers, unrestricted.centers)
        assert restricted.expected_cost == pytest.approx(unrestricted.expected_cost)

    def test_heavy_tailed_beats_naive_baselines(self):
        dataset, _ = heavy_tailed(n=40, z=5, dimension=2, seed=3)
        ours = solve_unrestricted_assigned(dataset, 3, solver="epsilon")
        gm = guha_munagala_baseline(dataset, 3)
        cm = cormode_mcgregor_baseline(dataset, 3)
        assert ours.expected_cost <= gm.expected_cost + 1e-9
        assert ours.expected_cost <= cm.expected_cost + 1e-9

    def test_unassigned_cost_of_solution_is_cheaper(self):
        dataset, _ = gaussian_clusters(n=25, z=3, dimension=2, seed=4)
        result = solve_unrestricted_assigned(dataset, 3)
        unassigned = expected_cost_unassigned(dataset, result.centers)
        assert unassigned <= result.expected_cost + 1e-12


class TestOneDimensionalPipeline:
    def test_line_workload_theorem_2_3_chain(self):
        dataset, _ = line_workload(n=8, z=2, segment_count=2, seed=5)
        wz = wang_zhang_1d(dataset, 2)
        reference = brute_force_unrestricted_assigned(dataset, 2)
        assert wz.expected_cost <= 3.0 * reference.expected_cost + 1e-9


class TestGraphPipeline:
    def test_sensor_network_end_to_end(self):
        dataset, _ = graph_uncertain_workload(n=12, z=3, node_count=30, seed=6)
        result = solve_metric_unrestricted(dataset, 3, assignment="one-center")
        # Centers must be nodes and the reported cost must be reproducible.
        for center in result.centers:
            assert float(center[0]).is_integer()
        recomputed = expected_cost_assigned(dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(recomputed)
        lower_bound = assigned_cost_lower_bound(dataset, 3)
        if lower_bound > 0:
            assert result.expected_cost / lower_bound <= result.guaranteed_factor + 1e-9


class TestSerializationPipeline:
    def test_json_round_trip_preserves_solution(self, tmp_path):
        dataset, _ = gaussian_clusters(n=10, z=3, dimension=2, seed=7)
        path = tmp_path / "workload.json"
        dataset.save_json(path)
        restored = UncertainDataset.load_json(path)
        original = solve_restricted_assigned(dataset, 2, solver="gonzalez")
        reloaded = solve_restricted_assigned(restored, 2, solver="gonzalez")
        assert original.expected_cost == pytest.approx(reloaded.expected_cost)


class TestExtensionPipeline:
    def test_kcenter_and_kmedian_agree_on_clusters(self):
        # On well separated clusters both objectives should recover the same
        # cluster structure (same partition of points).
        dataset, _ = gaussian_clusters(n=30, z=3, dimension=2, k_true=3, cluster_spread=30.0, seed=8)
        kcenter = solve_unrestricted_assigned(dataset, 3, solver="epsilon")
        kmedian = solve_uncertain_kmedian(dataset, 3)

        def partition_signature(assignment):
            groups = {}
            for index, label in enumerate(assignment):
                groups.setdefault(int(label), set()).add(index)
            return frozenset(frozenset(group) for group in groups.values())

        assert partition_signature(kcenter.assignment) == partition_signature(kmedian.assignment)

    def test_expected_distance_assignment_stability(self):
        dataset, _ = gaussian_clusters(n=20, z=3, dimension=2, seed=9)
        result = solve_restricted_assigned(dataset, 3, assignment="expected-distance")
        policy = ExpectedDistanceAssignment()
        np.testing.assert_array_equal(result.assignment, policy(dataset, result.centers))
