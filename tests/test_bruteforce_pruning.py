"""Branch-and-bound pruning: exactness, determinism, and the counters.

The contract under test (see :mod:`repro.baselines.brute_force`): pruning
changes *which* rows pay the exact kernels, never the returned subset,
assignment, or cost — ``prune=True`` must be bit-identical to the
``prune=False`` exhaustive reference on every instance shape (ties,
zero-probability masses, ragged supports, ``k >= m`` clamping), at every
worker count, with shared memory on or off.  The admissibility of the bound
kernels (bound <= exact cost for every subset / assignment row) is what the
exactness proof rests on, so it gets its own differential suite; the
``evaluated_rows`` / ``pruned_rows`` counters are asserted to actually drop
on a seeded adversarial instance — pruning that never prunes would pass
every equality test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignments.policies import (
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OptimalAssignment,
)
from repro.baselines.brute_force import (
    _assignment_prefix_bound,
    _assignment_rows_slice,
    _greedy_seed_columns,
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
)
from repro.bounds.lower_bounds import prune_margin
from repro.cost.context import CostContext
from repro.metrics import EuclideanMetric
from repro.runtime import incumbent as incumbent_module
from repro.runtime import set_oversubscribe, shutdown_runtime
from repro.runtime.parallel import iter_chunk_bounds
from repro.uncertain import UncertainDataset, UncertainPoint
from repro.workloads import gaussian_clusters


def make_tricky_dataset(seed: int, n: int = 6, z: int = 4) -> UncertainDataset:
    """Clustered instance with repeated locations and explicit zero masses."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        base = rng.normal(scale=4.0, size=2)
        locations = base + rng.normal(scale=0.8, size=(z, 2))
        if z > 1 and rng.random() < 0.5:
            locations[rng.integers(1, z)] = locations[0]  # exact ties
        probabilities = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.6:
            probabilities[rng.integers(0, z)] = 0.0  # zero-probability mass
            probabilities = probabilities / probabilities.sum()
        points.append(UncertainPoint(locations=locations, probabilities=probabilities))
    return UncertainDataset(points=tuple(points), metric=EuclideanMetric())


def make_ragged_dataset(seed: int, n: int = 6) -> UncertainDataset:
    """Points with different support sizes (exercises the grouped kernels)."""
    rng = np.random.default_rng(seed)
    points = []
    for _ in range(n):
        z = int(rng.integers(1, 5))
        locations = rng.normal(scale=3.0, size=(z, 2))
        if z > 1 and rng.random() < 0.5:
            locations[z - 1] = locations[0]
        probabilities = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.5:
            probabilities[0] = 0.0
            probabilities = probabilities / probabilities.sum()
        points.append(UncertainPoint(locations=locations, probabilities=probabilities))
    return UncertainDataset(points=tuple(points), metric=EuclideanMetric())


def assert_same_result(pruned, reference):
    assert pruned.expected_cost == reference.expected_cost
    assert np.array_equal(pruned.centers, reference.centers)
    if reference.assignment is not None:
        assert np.array_equal(pruned.assignment, reference.assignment)
    assert pruned.metadata["requested_k"] == reference.metadata["requested_k"]
    assert pruned.metadata["effective_k"] == reference.metadata["effective_k"]


def assert_counter_invariants(result):
    metadata = result.metadata
    assert metadata["evaluated_rows"] + metadata["pruned_rows"] == metadata["total_rows"]
    assert metadata["evaluated_rows"] >= 1  # a winner was evaluated


class TestBoundAdmissibility:
    """bound <= exact cost, row by row — the root of the exactness proof."""

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("make", [make_tricky_dataset, make_ragged_dataset])
    def test_subset_assigned_bound_below_every_rule(self, seed, make):
        dataset = make(seed)
        candidates = dataset.all_locations()[:10]
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 50)
        rows = np.stack(
            [rng.choice(candidates.shape[0], size=3, replace=False) for _ in range(12)]
        )
        bounds = context.subset_assigned_lower_bounds(rows)
        # The bound must sit below the cost of ANY assignment into the
        # subset, not just the cost-minimizing one.
        for scores_name in ("ed", "random"):
            if scores_name == "ed":
                assignments = context.ed_assignments(rows)
            else:
                local = rng.integers(0, rows.shape[1], size=(rows.shape[0], dataset.size))
                assignments = np.take_along_axis(rows, local, axis=1)
            costs = context.assigned_costs(assignments)
            slack = 1e-12 * np.maximum(1.0, np.abs(costs))
            assert np.all(bounds <= costs + slack), scores_name

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("make", [make_tricky_dataset, make_ragged_dataset])
    def test_subset_unassigned_bound_below_cost(self, seed, make):
        dataset = make(seed)
        candidates = dataset.all_locations()[:10]
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 60)
        rows = np.stack(
            [rng.choice(candidates.shape[0], size=3, replace=False) for _ in range(12)]
        )
        bounds = context.subset_unassigned_lower_bounds(rows)
        costs = context.unassigned_costs(rows)
        slack = 1e-12 * np.maximum(1.0, np.abs(costs))
        assert np.all(bounds <= costs + slack)

    @pytest.mark.parametrize("seed", range(4))
    def test_assignment_row_bound_below_cost(self, seed):
        dataset = make_tricky_dataset(seed)
        candidates = dataset.all_locations()[:8]
        context = CostContext(dataset, candidates)
        rng = np.random.default_rng(seed + 70)
        rows = rng.integers(0, candidates.shape[0], size=(16, dataset.size))
        bounds = context.assignment_lower_bounds(rows)
        costs = context.assigned_costs(rows)
        slack = 1e-12 * np.maximum(1.0, np.abs(costs))
        assert np.all(bounds <= costs + slack)

    @pytest.mark.parametrize("seed", range(4))
    def test_prefix_bound_below_every_row_in_shard(self, seed):
        dataset = make_tricky_dataset(seed, n=4, z=3)
        candidates = dataset.all_locations()[:6]
        context = CostContext(dataset, candidates)
        columns = np.asarray([0, 2, 5])
        n = dataset.size
        total = columns.shape[0] ** n
        for start, stop in iter_chunk_bounds(total, 17):
            prefix = _assignment_prefix_bound(context, columns, start, stop)
            rows = _assignment_rows_slice(columns, n, start, stop)
            costs = context.assigned_costs(rows)
            slack = 1e-12 * max(1.0, float(np.abs(costs).max()))
            assert prefix <= costs.min() + slack
            # ... and it must never beat the per-row bounds it coarsens.
            row_bounds = context.assignment_lower_bounds(rows)
            assert prefix <= row_bounds.min() + slack


class TestDifferentialPrunedVsReference:
    """prune=True must be bit-identical to the prune=False reference."""

    @pytest.mark.parametrize("seed", range(8))
    def test_restricted_ed_randomized(self, seed):
        dataset = make_tricky_dataset(seed)
        reference = brute_force_restricted_assigned(dataset, 3, prune=False)
        pruned = brute_force_restricted_assigned(dataset, 3, prune=True)
        assert_same_result(pruned, reference)
        assert_counter_invariants(pruned)

    @pytest.mark.parametrize("seed", range(6))
    def test_restricted_ed_ragged(self, seed):
        dataset = make_ragged_dataset(seed)
        reference = brute_force_restricted_assigned(dataset, 2, prune=False)
        pruned = brute_force_restricted_assigned(dataset, 2, prune=True)
        assert_same_result(pruned, reference)

    @pytest.mark.parametrize(
        "policy_cls", [ExpectedPointAssignment, NearestLocationAssignment]
    )
    def test_restricted_score_policies(self, policy_cls):
        dataset = make_tricky_dataset(3)
        reference = brute_force_restricted_assigned(
            dataset, 2, assignment=policy_cls(), prune=False
        )
        pruned = brute_force_restricted_assigned(dataset, 2, assignment=policy_cls())
        assert_same_result(pruned, reference)

    def test_restricted_blackbox_policy(self):
        dataset = make_tricky_dataset(5)
        candidates = dataset.expected_points()
        reference = brute_force_restricted_assigned(
            dataset, 2, assignment=OptimalAssignment(), candidates=candidates, prune=False
        )
        pruned = brute_force_restricted_assigned(
            dataset, 2, assignment=OptimalAssignment(), candidates=candidates
        )
        assert_same_result(pruned, reference)
        assert_counter_invariants(pruned)

    @pytest.mark.parametrize("seed", range(6))
    def test_unassigned_randomized_and_ragged(self, seed):
        for make in (make_tricky_dataset, make_ragged_dataset):
            dataset = make(seed)
            reference = brute_force_unassigned(dataset, 2, prune=False)
            pruned = brute_force_unassigned(dataset, 2, prune=True)
            assert_same_result(pruned, reference)
            assert_counter_invariants(pruned)

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("polish_top", [1, 3])
    def test_unrestricted_including_exhaustive_stage(self, seed, polish_top):
        dataset = make_tricky_dataset(seed, n=5, z=3)
        reference = brute_force_unrestricted_assigned(
            dataset, 2, polish_top=polish_top, prune=False
        )
        pruned = brute_force_unrestricted_assigned(dataset, 2, polish_top=polish_top)
        assert_same_result(pruned, reference)
        assert (
            pruned.metadata["exhaustive_assignment"]
            == reference.metadata["exhaustive_assignment"]
        )
        assert pruned.metadata["polished_subsets"] == reference.metadata["polished_subsets"]

    def test_unrestricted_local_search_branch(self):
        dataset = make_tricky_dataset(2, n=8, z=3)  # k^n too big -> polish branch
        reference = brute_force_unrestricted_assigned(
            dataset, 3, exhaustive_assignment=False, prune=False
        )
        pruned = brute_force_unrestricted_assigned(dataset, 3, exhaustive_assignment=False)
        assert_same_result(pruned, reference)

    def test_k_at_least_m_clamps_identically(self):
        dataset = make_tricky_dataset(1, n=3, z=2)
        candidates = dataset.expected_points()  # m = 3 < k
        for solver in (brute_force_restricted_assigned, brute_force_unassigned):
            reference = solver(dataset, 7, candidates=candidates, prune=False)
            pruned = solver(dataset, 7, candidates=candidates)
            assert_same_result(pruned, reference)
            assert pruned.metadata["effective_k"] == 3
            assert pruned.metadata["requested_k"] == 7

    @pytest.mark.parametrize("chunk_rows", [1, 7, 64])
    def test_chunk_rows_never_change_pruned_results(self, chunk_rows):
        dataset = make_tricky_dataset(4)
        reference = brute_force_restricted_assigned(dataset, 3, prune=False)
        pruned = brute_force_restricted_assigned(dataset, 3, chunk_rows=chunk_rows)
        assert_same_result(pruned, reference)


class TestPruningCounters:
    """The counters must prove rows were actually skipped."""

    def test_evaluated_rows_strictly_drop_on_adversarial_instance(self):
        # Clustered instance: most subsets miss a cluster entirely, so their
        # bounds sit far above the greedy seed's achieved cost.
        dataset, _ = gaussian_clusters(n=12, z=4, dimension=2, k_true=4, seed=9)
        candidates = dataset.all_locations()[:16]
        result = brute_force_restricted_assigned(dataset, 4, candidates=candidates)
        metadata = result.metadata
        assert metadata["prune"] is True
        assert metadata["pruned_rows"] > 0
        assert metadata["evaluated_rows"] < metadata["total_rows"]
        assert metadata["pruned_rows"] > metadata["total_rows"] // 2  # the bench contract
        assert_counter_invariants(result)

    def test_unpruned_reference_counts_full_enumeration(self):
        dataset = make_tricky_dataset(0)
        result = brute_force_restricted_assigned(dataset, 3, prune=False)
        assert result.metadata["prune"] is False
        assert result.metadata["pruned_rows"] == 0
        assert result.metadata["evaluated_rows"] == result.metadata["total_rows"]

    def test_serial_counts_are_deterministic(self):
        dataset = make_tricky_dataset(7)
        first = brute_force_restricted_assigned(dataset, 3)
        second = brute_force_restricted_assigned(dataset, 3)
        assert first.metadata["evaluated_rows"] == second.metadata["evaluated_rows"]
        assert first.metadata["pruned_rows"] == second.metadata["pruned_rows"]

    def test_unassigned_prunes_on_adversarial_instance(self):
        dataset, _ = gaussian_clusters(n=10, z=4, dimension=2, k_true=3, seed=9)
        candidates = dataset.all_locations()[:14]
        result = brute_force_unassigned(dataset, 3, candidates=candidates)
        assert result.metadata["pruned_rows"] > 0
        assert_counter_invariants(result)

    def test_unrestricted_records_per_stage_counts(self):
        dataset = make_tricky_dataset(3, n=5, z=3)
        result = brute_force_unrestricted_assigned(dataset, 2, polish_top=2)
        metadata = result.metadata
        assert metadata["subset_pruned_rows"] >= 0
        assert metadata["assignment_pruned_rows"] >= 0
        assert (
            metadata["subset_pruned_rows"] + metadata["assignment_pruned_rows"]
            == metadata["pruned_rows"]
        )
        assert_counter_invariants(result)


class TestWorkersAndShm:
    """Determinism pinned at workers in {1, 2, 4} x shm on/off."""

    @pytest.fixture(autouse=True)
    def _pool_on_one_cpu(self):
        previous = set_oversubscribe(True)
        yield
        set_oversubscribe(previous)
        shutdown_runtime()

    @pytest.fixture(scope="class")
    def micro(self):
        dataset, _ = gaussian_clusters(n=7, z=3, dimension=2, k_true=3, seed=4)
        return dataset

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm", [True, False])
    def test_restricted_pruned_matrix(self, micro, workers, shm):
        reference = brute_force_restricted_assigned(micro, 3, prune=False)
        pruned = brute_force_restricted_assigned(
            micro, 3, workers=workers, shm=shm, chunk_rows=16
        )
        assert_same_result(pruned, reference)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm", [True, False])
    def test_unassigned_pruned_matrix(self, micro, workers, shm):
        reference = brute_force_unassigned(micro, 2, prune=False)
        pruned = brute_force_unassigned(micro, 2, workers=workers, shm=shm, chunk_rows=16)
        assert_same_result(pruned, reference)

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("shm", [True, False])
    def test_unrestricted_pruned_matrix(self, micro, workers, shm):
        reference = brute_force_unrestricted_assigned(micro, 2, polish_top=3, prune=False)
        pruned = brute_force_unrestricted_assigned(
            micro, 2, polish_top=3, workers=workers, shm=shm, chunk_rows=16
        )
        assert_same_result(pruned, reference)

    def test_blackbox_pruned_under_workers(self, micro):
        candidates = micro.expected_points()
        reference = brute_force_restricted_assigned(
            micro, 2, assignment=OptimalAssignment(), candidates=candidates, prune=False
        )
        pruned = brute_force_restricted_assigned(
            micro,
            2,
            assignment=OptimalAssignment(),
            candidates=candidates,
            workers=2,
            chunk_rows=8,
        )
        assert_same_result(pruned, reference)


class TestIncumbentMachinery:
    def test_serial_incumbent_keeps_minimum(self):
        handle = incumbent_module.SerialIncumbent(10.0)
        assert handle.value() == 10.0
        handle.propose(12.0)
        assert handle.value() == 10.0
        handle.propose(4.0)
        assert handle.value() == 4.0

    def test_activate_and_bind_shared_slot(self):
        token = incumbent_module.activate(42.0)
        incumbent_module.bind_token(token)
        try:
            handle = incumbent_module.active()
            assert isinstance(handle, incumbent_module.SharedIncumbent)
            assert handle.value() == 42.0
            handle.propose(41.0)
            assert handle.value() == 41.0
            # A second handle on the same token sees the published value.
            other = incumbent_module.SharedIncumbent(
                incumbent_module.ensure_slot(), token
            )
            assert other.value() == 41.0
            # Worse proposals never move the slot.
            other.propose(43.0)
            assert handle.value() == 41.0
        finally:
            incumbent_module.bind_token(None)
        assert incumbent_module.active() is None

    def test_stale_generation_falls_back_to_seed(self):
        stale = incumbent_module.activate(7.0)
        incumbent_module.activate(99.0)  # newer generation takes the slot
        handle = incumbent_module.SharedIncumbent(incumbent_module.ensure_slot(), stale)
        assert handle.value() == 7.0  # never reads across generations
        handle.propose(3.0)  # must not clobber the active generation
        active = incumbent_module.SharedIncumbent(
            incumbent_module.ensure_slot(),
            incumbent_module.IncumbentToken(generation=stale.generation + 1, seed=99.0),
        )
        assert active.value() == 99.0

    def test_serial_incumbent_context_restores_previous(self):
        with incumbent_module.serial_incumbent(5.0) as outer:
            assert incumbent_module.active() is outer
            with incumbent_module.serial_incumbent(2.0) as inner:
                assert incumbent_module.active() is inner
            assert incumbent_module.active() is outer
        assert incumbent_module.active() is None

    def test_greedy_seed_columns_distinct_and_sorted(self):
        dataset = make_tricky_dataset(0)
        context = CostContext(dataset, dataset.all_locations()[:9])
        columns = _greedy_seed_columns(context, 4)
        assert columns.shape == (4,)
        assert np.unique(columns).shape == (4,)
        assert np.all(np.diff(columns) > 0)

    def test_prune_margin_scales_with_threshold(self):
        assert prune_margin(0.0) == pytest.approx(1e-9)
        assert prune_margin(1e6) == pytest.approx(1e-3)
