"""Tier-1 tests for the runtime sanitizers (``REPRO_SANITIZE=shm,lock,det``).

Each sanitizer gets a *planted bug* it must catch — a leaked/double-unlinked
segment for SHM-SAN, an acquisition-order inversion for LOCK-SAN, a
chunk-level divergence for DET-SAN — plus the zero-cost-when-disabled
contract, the ``REPRO_SANITIZE`` name validation, and the pool-initargs
handoff that enables sanitizers inside worker processes.  Sanitizers report
via :func:`repro.sanitize.violations` (never by raising into the
instrumented path), which is what these tests assert on.
"""

from __future__ import annotations

import os
import pickle
import threading

import numpy as np
import pytest

from repro import sanitize
from repro.runtime import shm as shm_module
from repro.runtime.parallel import parallel_map, set_oversubscribe
from repro.sanitize import det_san, lock_san, shm_san
from repro.workloads import gaussian_clusters


@pytest.fixture(autouse=True)
def sanitizers_reset():
    """Every test starts and ends with sanitizers off and state cleared."""
    sanitize.set_enabled(())
    yield
    sanitize.set_enabled(())


def messages() -> list[str]:
    return [violation.render() for violation in sanitize.violations()]


class TestController:
    def test_parse_names_accepts_known_and_strips(self):
        assert sanitize.parse_names("shm,lock,det") == ("shm", "lock", "det")
        assert sanitize.parse_names(" shm , det ") == ("shm", "det")
        assert sanitize.parse_names("") == ()
        assert sanitize.parse_names(None) == ()

    def test_parse_names_rejects_typos(self):
        # REPRO_SANITIZE=shmm silently running *nothing* would defeat the
        # point of a sanitizer, so unknown names are a hard error.
        with pytest.raises(ValueError, match="shmm"):
            sanitize.parse_names("shmm")
        with pytest.raises(ValueError, match="valid names"):
            sanitize.parse_names("shm,nope")

    def test_enabled_names_canonical_order(self):
        sanitize.set_enabled(("det", "shm"))
        assert sanitize.enabled_names() == ("shm", "det")
        assert sanitize.enabled("det") and not sanitize.enabled("lock")

    def test_set_enabled_clears_previous_state(self):
        sanitize.set_enabled(("shm",))
        shm_san.record_create("psm_ghost", "test")
        sanitize.report_violation("shm", "stale")
        sanitize.set_enabled(("shm",))
        assert sanitize.violations() == ()
        assert sanitize.check_exit() == ()  # the ghost create was cleared

    def test_violation_renders_with_sanitizer_tag(self):
        violation = sanitize.Violation(sanitizer="lock", message="boom")
        assert violation.render() == "LOCK-SAN: boom"


class TestShmSan:
    def test_catches_planted_leak(self):
        sanitize.set_enabled(("shm",))
        shm_san.record_create("psm_leaky", "pack_arrays")
        found = sanitize.check_exit()
        assert len(found) == 1
        assert "psm_leaky" in found[0].message
        assert "created by pack_arrays" in found[0].message
        assert "never unlinked" in found[0].message

    def test_balanced_lifecycle_is_clean(self):
        sanitize.set_enabled(("shm",))
        shm_san.record_create("psm_ok", "publish_blob")
        shm_san.record_unlink("psm_ok")
        assert sanitize.check_exit() == ()

    def test_catches_double_unlink(self):
        sanitize.set_enabled(("shm",))
        shm_san.record_create("psm_twice", "pack_arrays")
        shm_san.record_unlink("psm_twice")
        shm_san.record_unlink("psm_twice")
        assert any("unlinked twice" in message for message in messages())

    def test_disabled_hooks_are_no_ops(self):
        shm_san.record_create("psm_off", "pack_arrays")
        shm_san.record_unlink("psm_off")
        shm_san.record_unlink("psm_off")
        shm_san.check_exit()
        assert sanitize.violations() == ()

    def test_real_segment_lifecycle_end_to_end(self):
        if not shm_module.shm_available():
            pytest.skip("shared memory unavailable")
        sanitize.set_enabled(("shm",))
        arrays = {"x": np.arange(8.0)}
        _descriptor, lease = shm_module.pack_arrays(arrays)
        lease.close()
        assert sanitize.check_exit() == ()  # close() unlinks: clean
        _descriptor, leaked = shm_module.pack_arrays(arrays)
        try:
            found = sanitize.check_exit()
            assert len(found) == 1
            assert "pack_arrays" in found[0].message
            assert "never unlinked" in found[0].message
        finally:
            leaked.close()  # do not actually leak /dev/shm from the suite


class TestLockSan:
    def test_catches_planted_order_inversion(self):
        sanitize.set_enabled(("lock",))
        lock_san.note_acquire("store.lock")
        lock_san.note_acquire("incumbent.slot")
        lock_san.note_release("incumbent.slot")
        lock_san.note_release("store.lock")
        assert sanitize.violations() == ()  # first ordering just records
        lock_san.note_acquire("incumbent.slot")
        lock_san.note_acquire("store.lock")
        found = messages()
        assert len(found) == 1
        assert "lock-order inversion" in found[0]
        assert "store.lock" in found[0] and "incumbent.slot" in found[0]

    def test_consistent_order_is_clean(self):
        sanitize.set_enabled(("lock",))
        for _ in range(2):
            lock_san.note_acquire("store.lock")
            lock_san.note_acquire("incumbent.slot")
            lock_san.note_release("incumbent.slot")
            lock_san.note_release("store.lock")
        assert sanitize.violations() == ()

    def test_catches_reacquisition_of_held_lock(self):
        sanitize.set_enabled(("lock",))
        lock_san.note_acquire("incumbent.slot")
        lock_san.note_acquire("incumbent.slot")
        assert any("not reentrant" in message for message in messages())

    def test_traced_lock_context_manager_records_edges(self):
        sanitize.set_enabled(("lock",))
        first = lock_san.wrap_lock(threading.Lock(), "first")
        second = lock_san.wrap_lock(threading.Lock(), "second")
        assert isinstance(first, lock_san.TracedLock)
        with first:
            with second:
                pass
        assert list(lock_san.observed_edges()) == [("first", "second")]
        with second:
            with first:
                pass
        assert any("lock-order inversion" in message for message in messages())

    def test_wrap_is_identity_when_disabled_and_idempotent_when_on(self):
        raw = threading.Lock()
        assert lock_san.wrap_lock(raw, "noop") is raw
        sanitize.set_enabled(("lock",))
        traced = lock_san.wrap_lock(raw, "slot")
        assert lock_san.wrap_lock(traced, "slot") is traced
        assert lock_san.unwrap_lock(traced) is raw
        assert lock_san.unwrap_lock(raw) is raw

    def test_traced_lock_refuses_to_cross_process_boundaries(self):
        sanitize.set_enabled(("lock",))
        traced = lock_san.wrap_lock(threading.Lock(), "slot")
        # Shipping the proxy through a dispatch tuple would re-introduce
        # exactly the bug class SYNC-IN-DISPATCH exists for; ship .raw and
        # re-wrap on the far side instead.
        with pytest.raises(TypeError, match="must not cross process boundaries"):
            pickle.dumps(traced)


def _entropy_chunk(payload, item):
    return os.urandom(8)  # deliberately nondeterministic: the planted bug


def _square_chunk(payload, item):
    return payload * item * item


def _probe_enabled(payload, item):
    return sanitize.enabled_names()


class TestDetSan:
    def test_catches_planted_chunk_divergence(self):
        sanitize.set_enabled(("det",))
        det_san.record_map(
            _square_chunk, [0, 1, 2], None, [10, 11, 12], workers=1, pruned=False
        )
        det_san.record_map(
            _square_chunk, [0, 1, 2], None, [10, 99, 12], workers=4, pruned=False
        )
        found = messages()
        assert len(found) == 1
        assert "diverged at chunk 1" in found[0]
        assert "workers=1" in found[0] and "workers=4" in found[0]

    def test_identical_repeats_are_clean(self):
        sanitize.set_enabled(("det",))
        for workers in (1, 4):
            det_san.record_map(
                _square_chunk, [0, 1], None, [5, 6], workers=workers, pruned=False
            )
        assert sanitize.violations() == ()

    def test_pruned_maps_are_skipped_by_design(self):
        # Branch-and-bound chunks legitimately differ per worker count
        # (incumbent races change skip sets) while reductions stay exact.
        sanitize.set_enabled(("det",))
        det_san.record_map(_square_chunk, [0], None, [1], workers=1, pruned=True)
        det_san.record_map(_square_chunk, [0], None, [2], workers=4, pruned=True)
        assert sanitize.violations() == ()

    def test_unpicklable_payload_is_skipped_not_reported(self):
        sanitize.set_enabled(("det",))
        unpicklable = lambda: None  # noqa: E731
        det_san.record_map(
            _square_chunk, [0], unpicklable, [1], workers=1, pruned=False
        )
        det_san.record_map(
            _square_chunk, [0], unpicklable, [2], workers=4, pruned=False
        )
        assert sanitize.violations() == ()

    def test_parallel_map_divergence_caught_at_first_chunk(self):
        sanitize.set_enabled(("det",))
        parallel_map(_entropy_chunk, range(3), workers=1)
        assert sanitize.violations() == ()  # first run just records
        parallel_map(_entropy_chunk, range(3), workers=1)
        found = messages()
        assert len(found) == 1
        assert "diverged at chunk 0" in found[0]
        assert "_entropy_chunk" in found[0]

    def test_parallel_map_deterministic_task_is_clean(self):
        sanitize.set_enabled(("det",))
        serial = parallel_map(_square_chunk, range(6), payload=3, workers=1)
        repeat = parallel_map(_square_chunk, range(6), payload=3, workers=1)
        assert serial == repeat
        assert sanitize.violations() == ()

    def test_spill_fingerprint_crosscheck_flags_swapped_context(self):
        from repro.cost.context import CostContext
        from repro.runtime.store import candidate_fingerprint, dataset_fingerprint

        dataset, _ = gaussian_clusters(n=6, z=3, dimension=2, k_true=2, seed=9)
        candidates = dataset.expected_points()[:4]
        context = CostContext(dataset, candidates)
        expected_dataset = dataset_fingerprint(dataset)
        expected_candidates = candidate_fingerprint(candidates)
        sanitize.set_enabled(("det",))
        det_san.verify_context_fingerprints(
            context, expected_dataset, expected_candidates, origin="fake.ctx"
        )
        assert sanitize.violations() == ()  # honest spill file
        det_san.verify_context_fingerprints(
            context, "0" * 40, expected_candidates, origin="crosswired.ctx"
        )
        found = messages()
        assert len(found) == 1
        assert "does not match its key" in found[0]
        assert "crosswired.ctx" in found[0]


class TestWorkerHandoff:
    def test_initargs_carry_enabled_sanitizers_into_workers(self):
        # The fresh-pool path (large payload, shm off) ships
        # ``sanitize.enabled_names()`` through the pool initializer — the
        # same channel the incumbent handles use — so programmatically
        # enabled sanitizers are live inside every worker.
        previous = set_oversubscribe(True)
        try:
            sanitize.set_enabled(("shm", "lock"))
            payload = os.urandom(100_000)  # > INLINE_PAYLOAD_BYTES
            results = parallel_map(
                _probe_enabled, range(4), payload=payload, workers=2, shm=False
            )
        finally:
            set_oversubscribe(previous)
        assert results == [("shm", "lock")] * 4
