"""Unit tests for :class:`repro.UncertainPoint`."""

from __future__ import annotations

import numpy as np
import pytest

from repro import EuclideanMetric, ManhattanMetric, UncertainPoint
from repro.exceptions import NotSupportedError, ProbabilityError, ValidationError


class TestConstruction:
    def test_basic(self):
        point = UncertainPoint(locations=[[0.0, 0.0], [1.0, 1.0]], probabilities=[0.4, 0.6])
        assert point.support_size == 2
        assert point.dimension == 2
        assert not point.is_certain

    def test_certain_constructor(self):
        point = UncertainPoint.certain([2.0, 3.0], label="x")
        assert point.is_certain
        assert point.support_size == 1
        np.testing.assert_allclose(point.expected_point(), [2.0, 3.0])

    def test_uniform_constructor(self):
        point = UncertainPoint.uniform([[0.0], [1.0], [2.0]])
        np.testing.assert_allclose(point.probabilities, [1 / 3] * 3)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ProbabilityError):
            UncertainPoint(locations=[[0.0], [1.0]], probabilities=[0.3, 0.3])

    def test_probability_location_count_mismatch(self):
        with pytest.raises(ProbabilityError):
            UncertainPoint(locations=[[0.0], [1.0]], probabilities=[1.0])

    def test_negative_probability_rejected(self):
        with pytest.raises(ProbabilityError):
            UncertainPoint(locations=[[0.0], [1.0]], probabilities=[1.5, -0.5])

    def test_empty_locations_rejected(self):
        with pytest.raises(ValidationError):
            UncertainPoint(locations=np.empty((0, 2)), probabilities=np.array([]))

    def test_arrays_are_immutable(self):
        point = UncertainPoint.uniform([[0.0], [1.0]])
        with pytest.raises(ValueError):
            point.locations[0, 0] = 9.0
        with pytest.raises(ValueError):
            point.probabilities[0] = 0.0

    def test_iteration_and_len(self):
        point = UncertainPoint(locations=[[0.0], [1.0]], probabilities=[0.25, 0.75])
        assert len(point) == 2
        pairs = list(point)
        assert pairs[0][1] == pytest.approx(0.25)


class TestExpectations:
    def test_expected_point(self):
        point = UncertainPoint(locations=[[0.0, 0.0], [2.0, 4.0]], probabilities=[0.5, 0.5])
        np.testing.assert_allclose(point.expected_point(), [1.0, 2.0])

    def test_expected_distance(self):
        point = UncertainPoint(locations=[[0.0], [2.0]], probabilities=[0.5, 0.5])
        value = point.expected_distance_to([0.0], EuclideanMetric())
        assert value == pytest.approx(1.0)

    def test_expected_distance_jensen_inequality(self, rng):
        # Lemma 3.1: d(P̄, Q) <= E[d(P, Q)] in a normed space.
        locations = rng.normal(size=(5, 3))
        probabilities = rng.dirichlet(np.ones(5))
        point = UncertainPoint(locations=locations, probabilities=probabilities)
        target = rng.normal(size=3)
        for metric in (EuclideanMetric(), ManhattanMetric()):
            lhs = metric.distance(point.expected_point(), target)
            rhs = point.expected_distance_to(target, metric)
            assert lhs <= rhs + 1e-9

    def test_expected_distances_to_many(self, rng):
        point = UncertainPoint.uniform(rng.normal(size=(4, 2)))
        targets = rng.normal(size=(3, 2))
        values = point.expected_distances_to_many(targets, EuclideanMetric())
        assert values.shape == (3,)
        for index in range(3):
            assert values[index] == pytest.approx(point.expected_distance_to(targets[index], EuclideanMetric()))

    def test_distance_distribution(self):
        point = UncertainPoint(locations=[[0.0], [3.0]], probabilities=[0.2, 0.8])
        values, probabilities = point.distance_distribution([1.0], EuclideanMetric())
        np.testing.assert_allclose(sorted(values), [1.0, 2.0])
        assert probabilities.sum() == pytest.approx(1.0)


class TestSamplingSerialization:
    def test_sample_single_and_batch(self):
        point = UncertainPoint(locations=[[0.0], [1.0]], probabilities=[0.5, 0.5])
        single = point.sample(rng=0)
        assert single.shape == (1,)
        batch = point.sample(rng=0, size=100)
        assert batch.shape == (100, 1)

    def test_sample_respects_probabilities(self):
        point = UncertainPoint(locations=[[0.0], [1.0]], probabilities=[0.9, 0.1])
        batch = point.sample(rng=3, size=5000)
        fraction_zero = float((batch[:, 0] == 0.0).mean())
        assert 0.85 <= fraction_zero <= 0.95

    def test_dict_round_trip(self):
        point = UncertainPoint(locations=[[0.0, 1.0], [2.0, 3.0]], probabilities=[0.3, 0.7], label="p")
        clone = UncertainPoint.from_dict(point.to_dict())
        np.testing.assert_allclose(clone.locations, point.locations)
        np.testing.assert_allclose(clone.probabilities, point.probabilities)
        assert clone.label == "p"

    def test_from_dict_missing_keys(self):
        with pytest.raises(ValidationError):
            UncertainPoint.from_dict({"locations": [[0.0]]})

    def test_restricted_to_support(self):
        point = UncertainPoint(locations=[[0.0], [1.0], [2.0]], probabilities=[0.2, 0.3, 0.5])
        restricted = point.restricted_to_support([1, 2])
        assert restricted.support_size == 2
        np.testing.assert_allclose(restricted.probabilities, [0.375, 0.625])

    def test_restricted_to_empty_support_rejected(self):
        point = UncertainPoint.uniform([[0.0], [1.0]])
        with pytest.raises(ValidationError):
            point.restricted_to_support([])

    def test_restricted_to_zero_probability_rejected(self):
        point = UncertainPoint(locations=[[0.0], [1.0]], probabilities=[1.0, 0.0])
        with pytest.raises(NotSupportedError):
            point.restricted_to_support([1])
