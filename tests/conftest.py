"""Shared fixtures and helpers for the test suite.

Per-test default timeouts (so baseline hangs fail fast instead of stalling
the suite) are enforced by the repo-root ``conftest.py``, which prefers the
``pytest-timeout`` plugin from the ``test`` extra in ``setup.py`` and falls
back to SIGALRM; override per test with ``@pytest.mark.timeout(seconds)``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.metrics import EuclideanMetric, GraphMetric
from repro.uncertain import UncertainDataset, UncertainPoint


def make_uncertain_dataset(
    n: int = 6,
    z: int = 3,
    dimension: int = 2,
    *,
    seed: int = 0,
    spread: float = 5.0,
    jitter: float = 0.5,
    metric=None,
) -> UncertainDataset:
    """Small clustered uncertain dataset used across many tests."""
    rng = np.random.default_rng(seed)
    points = []
    for index in range(n):
        base = rng.normal(scale=spread, size=dimension)
        locations = base + rng.normal(scale=jitter, size=(z, dimension))
        probabilities = rng.dirichlet(np.ones(z))
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    return UncertainDataset(points=tuple(points), metric=metric or EuclideanMetric())


def make_graph_dataset(n: int = 6, z: int = 3, nodes: int = 20, *, seed: int = 0) -> UncertainDataset:
    """Small uncertain dataset over a random connected graph metric."""
    import networkx as nx

    graph = nx.connected_watts_strogatz_graph(nodes, 4, 0.3, seed=seed)
    for _, _, data in graph.edges(data=True):
        data["weight"] = 1.0
    metric = GraphMetric(graph)
    rng = np.random.default_rng(seed)
    points = []
    for index in range(n):
        chosen = rng.choice(nodes, size=z, replace=False).astype(float).reshape(-1, 1)
        probabilities = rng.dirichlet(np.ones(z))
        points.append(UncertainPoint(locations=chosen, probabilities=probabilities, label=f"P{index}"))
    return UncertainDataset(points=tuple(points), metric=metric)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def euclidean_dataset() -> UncertainDataset:
    return make_uncertain_dataset()


@pytest.fixture
def line_dataset() -> UncertainDataset:
    return make_uncertain_dataset(n=7, z=3, dimension=1, seed=4)


@pytest.fixture
def graph_dataset() -> UncertainDataset:
    return make_graph_dataset()


@pytest.fixture
def certain_dataset() -> UncertainDataset:
    """A dataset whose points are all deterministic (single location)."""
    rng = np.random.default_rng(9)
    points = rng.normal(scale=3.0, size=(8, 2))
    return UncertainDataset.from_certain_points(points)
