"""Shared-memory payload lifecycle: round trips, leaks, crash cleanup.

The zero-copy runtime's contracts (see :mod:`repro.runtime.shm`):

* a published :class:`~repro.cost.context.CostContext` payload materializes
  in another process (or this one) with **every** array byte-identical;
* segments are unlinked deterministically — publication-cache eviction,
  garbage collection of the published context, explicit shutdown — and a
  crashing worker never strands one;
* brute-force results are bit-identical at every worker count with shared
  memory on or off;
* the worker pool is persistent: repeated calls reuse the same processes and
  the same publication instead of re-shipping the payload.
"""

from __future__ import annotations

import gc
import os
import pickle

import numpy as np
import pytest

from repro.cost.context import CostContext
from repro.runtime import parallel_map, set_oversubscribe, shutdown_runtime
from repro.runtime import pool as pool_module
from repro.runtime import shm as shm_module
from repro.runtime.shm import (
    live_segments,
    materialize_payload,
    publish_payload,
    shm_available,
)
from repro.baselines.brute_force import (
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
)
from repro.workloads import gaussian_clusters

pytestmark = pytest.mark.skipif(not shm_available(), reason="shared memory unavailable")


def _own_segments() -> list[str]:
    """Segments created by THIS process (names embed the creator pid).

    Scoping the leak scans to our pid keeps them meaningful when another
    repro process (a concurrent bench run, another test session) owns
    segments on the same machine.
    """
    prefix = f"{shm_module.SEGMENT_PREFIX}_{os.getpid()}_"
    return [name for name in live_segments() if name.startswith(prefix)]


@pytest.fixture(autouse=True)
def _pool_on_one_cpu():
    """Exercise real pools even on 1-CPU machines; leave nothing behind."""
    previous = set_oversubscribe(True)
    yield
    set_oversubscribe(previous)
    shutdown_runtime()


@pytest.fixture()
def instance():
    dataset, _ = gaussian_clusters(n=8, z=3, dimension=2, k_true=3, seed=4)
    return dataset, dataset.all_locations()[:16]


def _full_context(dataset, candidates) -> CostContext:
    context = CostContext(dataset, candidates)
    context.supports
    context.expected
    context.evaluator
    context._rank_merge_tables()
    return context


class TestDescriptorRoundTrip:
    def test_every_array_restores_bit_identical(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        descriptor, call_lease = publish_payload((context, 128))
        assert call_lease is None  # no extra arrays outside the context
        payload, closer = materialize_payload(descriptor)
        try:
            twin, chunk_rows = payload
            assert chunk_rows == 128
            assert np.array_equal(twin.candidates, context.candidates)
            assert all(
                np.array_equal(a, b) for a, b in zip(twin.probabilities, context.probabilities)
            )
            assert all(np.array_equal(a, b) for a, b in zip(twin.supports, context.supports))
            assert np.array_equal(twin.expected, context.expected)
            for attribute in ("_values", "_cdfs", "_log_deltas", "_zero_deltas"):
                ours = getattr(context.evaluator, attribute)
                theirs = getattr(twin.evaluator, attribute)
                assert all(np.array_equal(a, b) for a, b in zip(ours, theirs))
            ours_rm = context._rank_merge_tables()
            theirs_rm = twin._rank_merge_tables()
            assert np.array_equal(ours_rm.values_by_rank, theirs_rm.values_by_rank)
            for (pa, ra, wa), (pb, rb, wb) in zip(ours_rm.groups, theirs_rm.groups):
                assert np.array_equal(pa, pb)
                assert np.array_equal(ra, rb)
                assert np.array_equal(wa, wb)
        finally:
            closer()

    def test_materialized_context_scores_identically(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        descriptor, _ = publish_payload((context, 64))
        payload, closer = materialize_payload(descriptor)
        try:
            twin = payload[0]
            labels = np.arange(dataset.size) % candidates.shape[0]
            assert twin.assigned_cost(labels) == context.assigned_cost(labels)
            subsets = np.asarray([[0, 1, 2], [3, 4, 5], [1, 7, 9]])
            assert np.array_equal(twin.unassigned_costs(subsets), context.unassigned_costs(subsets))
            assert np.array_equal(
                twin.assigned_costs(np.tile(labels, (4, 1))),
                context.assigned_costs(np.tile(labels, (4, 1))),
            )
        finally:
            closer()

    def test_materialized_views_are_read_only(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        descriptor, _ = publish_payload((context, 64))
        payload, closer = materialize_payload(descriptor)
        try:
            twin = payload[0]
            with pytest.raises((ValueError, RuntimeError)):
                twin.expected[0, 0] = 1.0
        finally:
            closer()

    def test_extra_arrays_travel_in_per_call_segment(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        scores = np.random.default_rng(0).random((dataset.size, candidates.shape[0]))
        descriptor, call_lease = publish_payload((context, scores, 32))
        assert call_lease is not None
        payload, closer = materialize_payload(descriptor)
        try:
            assert np.array_equal(payload[1], scores)
        finally:
            closer()
            call_lease.close()

    def test_descriptor_is_small_and_picklable(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        payload = (context, 256)
        descriptor, _ = publish_payload(payload)
        payload_bytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        assert descriptor.dispatch_bytes() * 10 <= payload_bytes


class TestSegmentLifecycle:
    def test_no_segments_after_shutdown(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        publish_payload((context, 1))
        assert _own_segments()
        shutdown_runtime()
        assert _own_segments() == []

    def test_collected_context_unlinks_eagerly(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        publish_payload((context, 1))
        assert _own_segments()
        del context
        gc.collect()
        assert _own_segments() == []

    def test_publication_is_memoized_per_context(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        first, _ = publish_payload((context, 1))
        second, _ = publish_payload((context, 2))
        assert first.segments[0].name == second.segments[0].name
        assert len(_own_segments()) == 1

    def test_mutated_context_is_republished(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        first, _ = publish_payload((context, 1))
        context.replace_candidate_columns(np.asarray([0]), candidates[:1] + 0.25)
        context._rank_merge_tables()
        second, _ = publish_payload((context, 1))
        assert first.segments[0].name != second.segments[0].name
        payload, closer = materialize_payload(second)
        try:
            assert np.array_equal(payload[0].candidates, context.candidates)
        finally:
            closer()


def _crash_task(payload, item):
    if item == 2:
        raise RuntimeError("worker crash")
    return item


def _pid_task(payload, item):
    return os.getpid()


class TestPoolLifecycle:
    def test_crash_in_worker_leaves_no_segments(self, instance):
        dataset, candidates = instance
        context = _full_context(dataset, candidates)
        with pytest.raises(RuntimeError, match="worker crash"):
            parallel_map(_crash_task, range(4), payload=(context, 1), workers=2)
        shutdown_runtime()
        assert _own_segments() == []

    def test_pool_persists_across_calls(self):
        first = parallel_map(_pid_task, range(4), workers=2)
        assert pool_module.executor().started
        executor_before = pool_module.executor()._executor
        second = parallel_map(_pid_task, range(4), workers=2)
        assert pool_module.executor()._executor is executor_before  # not respawned
        # Every task ran in one of the pool's (at most 2) worker processes.
        assert len(set(first) | set(second)) <= 2
        assert os.getpid() not in set(first) | set(second)

    def test_pool_restarts_after_shutdown(self):
        parallel_map(_pid_task, range(4), workers=2)
        shutdown_runtime()
        assert not pool_module.executor().started
        result = parallel_map(_pid_task, range(4), workers=2)
        assert len(result) == 4


class TestBitIdentityAcrossTransports:
    """workers=1 vs 2+, shm on vs off: every float must match exactly."""

    @pytest.fixture(scope="class")
    def micro(self):
        dataset, _ = gaussian_clusters(n=7, z=3, dimension=2, k_true=3, seed=11)
        return dataset, dataset.all_locations()[:14]

    def test_restricted(self, micro):
        dataset, candidates = micro
        serial = brute_force_restricted_assigned(dataset, 3, candidates=candidates)
        for shm in (True, False):
            sharded = brute_force_restricted_assigned(
                dataset, 3, candidates=candidates, workers=2, chunk_rows=32, shm=shm
            )
            assert sharded.expected_cost == serial.expected_cost
            assert np.array_equal(sharded.centers, serial.centers)
            assert np.array_equal(sharded.assignment, serial.assignment)

    def test_unrestricted_with_exhaustive_stage(self, micro):
        dataset, candidates = micro
        serial = brute_force_unrestricted_assigned(
            dataset, 2, candidates=candidates, polish_top=3
        )
        for shm in (True, False):
            sharded = brute_force_unrestricted_assigned(
                dataset, 2, candidates=candidates, polish_top=3, workers=2, chunk_rows=16, shm=shm
            )
            assert sharded.expected_cost == serial.expected_cost
            assert np.array_equal(sharded.centers, serial.centers)
            assert np.array_equal(sharded.assignment, serial.assignment)

    def test_unassigned_rank_merge_through_workers(self, micro):
        dataset, candidates = micro
        serial = brute_force_unassigned(dataset, 2, candidates=candidates)
        for shm in (True, False):
            sharded = brute_force_unassigned(
                dataset, 2, candidates=candidates, workers=2, chunk_rows=32, shm=shm
            )
            assert sharded.expected_cost == serial.expected_cost
            assert np.array_equal(sharded.centers, serial.centers)
