"""Unit and property tests for the normed vector-space metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import MetricError
from repro.metrics import ChebyshevMetric, EuclideanMetric, ManhattanMetric, MinkowskiMetric

finite_floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False)


class TestEuclideanMetric:
    def test_distance_matches_numpy(self, rng):
        metric = EuclideanMetric()
        a, b = rng.normal(size=2), rng.normal(size=2)
        assert metric.distance(a, b) == pytest.approx(np.linalg.norm(a - b))

    def test_pairwise_shape_and_values(self, rng):
        metric = EuclideanMetric()
        a = rng.normal(size=(4, 3))
        b = rng.normal(size=(6, 3))
        matrix = metric.pairwise(a, b)
        assert matrix.shape == (4, 6)
        for i in range(4):
            for j in range(6):
                assert matrix[i, j] == pytest.approx(np.linalg.norm(a[i] - b[j]), abs=1e-9)

    def test_dimension_mismatch_raises(self):
        metric = EuclideanMetric()
        with pytest.raises(MetricError):
            metric.distance([0.0, 0.0], [0.0, 0.0, 0.0])
        with pytest.raises(MetricError):
            metric.pairwise(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_supports_expected_point(self):
        assert EuclideanMetric().supports_expected_point is True

    def test_distance_to_set_and_nearest(self, rng):
        metric = EuclideanMetric()
        centers = np.array([[0.0, 0.0], [10.0, 0.0]])
        point = np.array([1.0, 0.0])
        assert metric.distance_to_set(point, centers) == pytest.approx(1.0)
        index, distance = metric.nearest_center(point, centers)
        assert index == 0 and distance == pytest.approx(1.0)

    def test_diameter(self):
        metric = EuclideanMetric()
        points = np.array([[0.0, 0.0], [3.0, 4.0], [1.0, 1.0]])
        assert metric.diameter(points) == pytest.approx(5.0)

    def test_axioms_on_sample(self, rng):
        metric = EuclideanMetric()
        assert metric.check_axioms(rng.normal(size=(12, 3)))

    def test_pairwise_self_distance_exactly_zero_far_from_origin(self):
        # The ||x||^2 + ||y||^2 - 2 x.y expansion cancels catastrophically for
        # x ~= y far from the origin (historically d(x, x) came out ~1e-7,
        # which broke exact-zero cost assertions on duplicate points); the
        # cancellation-zone entries are recomputed with the difference formula.
        metric = EuclideanMetric()
        points = np.array([[1.19209290e-07, 12.2947633], [1e6, 1e6], [0.0, 0.0]])
        distances = metric.pairwise(points, points.copy())
        assert np.all(np.diag(distances) == 0.0)
        # Nearby-but-distinct pairs keep full relative precision (compare to
        # the representable per-row shift, which differs from 1e-9 at 1e6).
        shifted = points + np.array([[1e-9, 0.0]])
        off = metric.pairwise(points, shifted)
        true_shift = shifted[:, 0] - points[:, 0]
        np.testing.assert_allclose(np.diag(off), true_shift, rtol=1e-9)


class TestOtherNorms:
    def test_manhattan(self):
        metric = ManhattanMetric()
        assert metric.distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(3.0)

    def test_chebyshev(self):
        metric = ChebyshevMetric()
        assert metric.distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(2.0)

    def test_minkowski_p3(self):
        metric = MinkowskiMetric(order=3)
        expected = (1.0**3 + 2.0**3) ** (1.0 / 3.0)
        assert metric.distance([0.0, 0.0], [1.0, 2.0]) == pytest.approx(expected)

    def test_minkowski_invalid_order(self):
        with pytest.raises(MetricError):
            MinkowskiMetric(order=0.5)

    def test_ordering_between_norms(self, rng):
        a, b = rng.normal(size=3), rng.normal(size=3)
        chebyshev = ChebyshevMetric().distance(a, b)
        euclidean = EuclideanMetric().distance(a, b)
        manhattan = ManhattanMetric().distance(a, b)
        assert chebyshev <= euclidean + 1e-12 <= manhattan + 1e-9

    def test_pairwise_generic_order(self, rng):
        metric = MinkowskiMetric(order=3)
        a = rng.normal(size=(3, 2))
        b = rng.normal(size=(4, 2))
        matrix = metric.pairwise(a, b)
        assert matrix.shape == (3, 4)
        assert matrix[1, 2] == pytest.approx(metric.distance(a[1], b[2]))


class TestMetricProperties:
    @given(
        arrays(np.float64, (5, 2), elements=finite_floats),
        arrays(np.float64, (5, 2), elements=finite_floats),
    )
    @settings(max_examples=50, deadline=None)
    def test_symmetry_and_nonnegativity(self, a, b):
        metric = EuclideanMetric()
        forward = metric.pairwise(a, b)
        backward = metric.pairwise(b, a)
        assert np.all(forward >= 0)
        np.testing.assert_allclose(forward, backward.T, atol=1e-8)

    @given(
        arrays(np.float64, (3,), elements=finite_floats),
        arrays(np.float64, (3,), elements=finite_floats),
        arrays(np.float64, (3,), elements=finite_floats),
    )
    @settings(max_examples=100, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        for metric in (EuclideanMetric(), ManhattanMetric(), ChebyshevMetric()):
            ab = metric.distance(a, b)
            bc = metric.distance(b, c)
            ac = metric.distance(a, c)
            assert ac <= ab + bc + 1e-8

    @given(arrays(np.float64, (4,), elements=finite_floats))
    @settings(max_examples=50, deadline=None)
    def test_identity(self, a):
        assert EuclideanMetric().distance(a, a) == pytest.approx(0.0, abs=1e-12)
