"""Tests for the provable lower bounds used as experiment denominators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import brute_force_unrestricted_assigned
from repro.bounds import (
    assigned_cost_lower_bound,
    expected_point_lower_bound,
    one_center_representative_lower_bound,
    per_point_lower_bound,
)
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestPerPointBound:
    def test_positive_for_uncertain_points(self, euclidean_dataset):
        assert per_point_lower_bound(euclidean_dataset) > 0

    def test_zero_for_certain_points(self, certain_dataset):
        assert per_point_lower_bound(certain_dataset) == pytest.approx(0.0, abs=1e-9)

    def test_finite_metric_variant(self, graph_dataset):
        value = per_point_lower_bound(graph_dataset)
        assert value >= 0

    def test_scales_with_spread(self):
        tight = make_uncertain_dataset(n=5, z=3, dimension=2, seed=1, jitter=0.1)
        wide = make_uncertain_dataset(n=5, z=3, dimension=2, seed=1, jitter=2.0)
        assert per_point_lower_bound(wide) > per_point_lower_bound(tight)


class TestCompositeBound:
    @pytest.mark.parametrize("seed", range(4))
    def test_is_a_valid_lower_bound_euclidean(self, seed):
        dataset = make_uncertain_dataset(n=5, z=2, dimension=2, seed=seed)
        reference = brute_force_unrestricted_assigned(dataset, 2, exhaustive_assignment=True)
        bound = assigned_cost_lower_bound(dataset, 2)
        assert bound <= reference.expected_cost + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_is_a_valid_lower_bound_graph(self, seed):
        dataset = make_graph_dataset(n=5, z=2, nodes=12, seed=seed)
        reference = brute_force_unrestricted_assigned(dataset, 2)
        bound = assigned_cost_lower_bound(dataset, 2)
        assert bound <= reference.expected_cost + 1e-9

    def test_composite_at_least_components(self, euclidean_dataset):
        k = 2
        composite = assigned_cost_lower_bound(euclidean_dataset, k)
        assert composite >= per_point_lower_bound(euclidean_dataset) - 1e-12
        assert composite >= expected_point_lower_bound(euclidean_dataset, k) - 1e-12
        assert composite >= one_center_representative_lower_bound(euclidean_dataset, k) - 1e-12

    def test_expected_point_bound_zero_on_finite_metric(self, graph_dataset):
        assert expected_point_lower_bound(graph_dataset, 2) == 0.0

    def test_bound_decreases_with_more_centers(self, euclidean_dataset):
        few = assigned_cost_lower_bound(euclidean_dataset, 1)
        many = assigned_cost_lower_bound(euclidean_dataset, euclidean_dataset.size)
        assert many <= few + 1e-9

    def test_positive_on_clustered_instance(self):
        dataset = make_uncertain_dataset(n=12, z=3, dimension=2, seed=7, spread=10.0)
        assert assigned_cost_lower_bound(dataset, 2) > 0
