"""Tier-1 tests for the repo-aware static checker (``python -m repro lint``).

Every shipped rule gets one *failing* fixture (a minimal module that must
trigger it — the demonstrated true positive) and one *passing* fixture (the
sanctioned idiom that must stay silent).  Fixture trees mirror the repo
layout (``cost/``, ``runtime/shm.py``, ...) because rules scope themselves
by path parts, so the tmp trees exercise exactly the logic the real tree
does.  On top of the rules: the suppression contract (justification is
mandatory; comment-line-above form; per-rule matching), the JSON reporter
schema, the CLI exit codes, and the self-check that the shipped tree lints
clean.
"""

from __future__ import annotations

import ast
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis import (
    LintReport,
    Rule,
    Severity,
    all_rules,
    lint_paths,
    render_json,
    render_rule_table,
    render_text,
)
from repro.analysis.rules import RULE_CLASSES
from repro.analysis.rules.anytime import GapCertificateRule
from repro.analysis.rules.concurrency import (
    LockDisciplineRule,
    ShmLifecycleRule,
    SyncInDispatchRule,
)
from repro.analysis.rules.determinism import FloatSortHotpathRule, NondetRule
from repro.analysis.rules.faultpoints import FAULT_KINDS as LINT_FAULT_KINDS, FaultPointRule
from repro.analysis.rules.hygiene import (
    BoundAdmissibleDocRule,
    EnvRegistryRule,
    SpillPathRule,
)
from repro.cli import main

REPO_ROOT = Path(__file__).resolve().parents[1]


def lint_fixture(tmp_path: Path, rel_path: str, source: str, rule: Rule | None = None) -> LintReport:
    """Write ``source`` at ``tmp_path/rel_path`` and lint the tree."""
    file = tmp_path / rel_path
    file.parent.mkdir(parents=True, exist_ok=True)
    file.write_text(textwrap.dedent(source))
    rules = None if rule is None else [rule]
    return lint_paths([tmp_path], rules=rules)


def rule_ids(report: LintReport) -> list[str]:
    return [finding.rule for finding in report.findings]


class TestShmLifecycleRule:
    def test_flags_bare_create_outside_owner(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "experiments/grab.py",
            """
            from multiprocessing import shared_memory

            def grab(nbytes):
                return shared_memory.SharedMemory(name="x", create=True, size=nbytes)
            """,
            ShmLifecycleRule(),
        )
        assert rule_ids(report) == ["SHM-LIFECYCLE"]
        assert "outside runtime/shm.py" in report.findings[0].message

    def test_flags_deferred_lease_inside_owner(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/shm.py",
            """
            from multiprocessing import shared_memory

            def publish(nbytes, blob):
                segment = shared_memory.SharedMemory(name="x", create=True, size=nbytes)
                segment.buf[: len(blob)] = blob  # raises here -> orphaned segment
                lease = SegmentLease(segment)
                return lease
            """,
            ShmLifecycleRule(),
        )
        assert rule_ids(report) == ["SHM-LIFECYCLE"]
        assert "immediately" in report.findings[0].message

    def test_immediate_lease_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/shm.py",
            """
            from multiprocessing import shared_memory

            def publish(nbytes, blob):
                segment = shared_memory.SharedMemory(name="x", create=True, size=nbytes)
                lease = SegmentLease(segment)
                segment.buf[: len(blob)] = blob
                return lease

            def attach(name):
                # attach (no create=True) is not a lifecycle event
                return shared_memory.SharedMemory(name=name)
            """,
            ShmLifecycleRule(),
        )
        assert report.findings == []


class TestSyncInDispatchRule:
    def test_flags_sync_ctor_and_dispatch_arg(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/helpers.py",
            """
            import multiprocessing

            def go(parallel_map, task, items):
                lock = multiprocessing.Lock()
                return parallel_map(task, items, lock)
            """,
            SyncInDispatchRule(),
        )
        ids = rule_ids(report)
        assert ids.count("SYNC-IN-DISPATCH") == 2  # ctor outside owner + dispatch arg

    def test_flags_pool_outside_owner(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "experiments/adhoc.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def fanout(work):
                with ProcessPoolExecutor(4) as pool:
                    return list(pool.map(len, work))
            """,
            SyncInDispatchRule(),
        )
        assert rule_ids(report) == ["SYNC-IN-DISPATCH"]
        assert "outside runtime/pool.py" in report.findings[0].message

    def test_owners_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/incumbent.py",
            """
            import multiprocessing

            def make_slot(ctx):
                return multiprocessing.Value("d", 0.0)
            """,
            SyncInDispatchRule(),
        )
        assert report.findings == []
        report = lint_fixture(
            tmp_path,
            "runtime/pool.py",
            """
            from concurrent.futures import ProcessPoolExecutor

            def build(workers, initializer, initargs):
                return ProcessPoolExecutor(workers, initializer=initializer, initargs=initargs)
            """,
            SyncInDispatchRule(),
        )
        assert report.findings == []


class TestLockDisciplineRule:
    def test_flags_unlocked_get_obj(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/peek.py",
            """
            def read(slot):
                return slot.value.get_obj().value
            """,
            LockDisciplineRule(),
        )
        assert rule_ids(report) == ["LOCK-DISCIPLINE"]
        assert "torn" in report.findings[0].message

    def test_flags_blocking_call_under_lock(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/hold.py",
            """
            import time

            def hold(lock):
                with lock:
                    time.sleep(0.1)
            """,
            LockDisciplineRule(),
        )
        assert rule_ids(report) == ["LOCK-DISCIPLINE"]
        assert "blocking" in report.findings[0].message

    def test_locked_read_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/peek.py",
            """
            def read(slot):
                with slot.lock:
                    return slot.value.get_obj().value
            """,
            LockDisciplineRule(),
        )
        assert report.findings == []


class TestFloatSortHotpathRule:
    def test_flags_sort_in_hot_directory(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/kernel.py",
            """
            def sweep(values):
                values.sort()
                return sorted(values)
            """,
            FloatSortHotpathRule(),
        )
        assert rule_ids(report) == ["FLOAT-SORT-HOTPATH", "FLOAT-SORT-HOTPATH"]

    def test_reference_twin_and_cold_path_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/kernel.py",
            """
            def _sweep_float_sort_reference(values):
                return sorted(values)
            """,
            FloatSortHotpathRule(),
        )
        assert report.findings == []
        report = lint_fixture(
            tmp_path,
            "io/tables.py",
            """
            def render(rows):
                return sorted(rows)
            """,
            FloatSortHotpathRule(),
        )
        assert report.findings == []


class TestNondetRule:
    def test_flags_wall_clock_unseeded_rng_and_set_iteration(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "algorithms/solver.py",
            """
            import time
            import numpy as np

            def solve(options):
                start = time.time()
                rng = np.random.default_rng()
                return start, rng, [item for item in {1, 2, 3}]
            """,
            NondetRule(),
        )
        assert rule_ids(report) == ["NONDET"] * 3
        messages = " ".join(finding.message for finding in report.findings)
        assert "wall clock" in messages and "UNSEEDED" in messages and "hash order" in messages

    def test_seeded_rng_and_monotonic_timing_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "algorithms/solver.py",
            """
            import time
            import numpy as np

            def solve(seed, options):
                start = time.perf_counter()
                rng = np.random.default_rng(seed)
                return start, rng, sorted({1, 2, 3})
            """,
            NondetRule(),
        )
        assert report.findings == []

    def test_outside_solver_directories_is_ignored(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "workloads/noise.py",
            """
            import numpy as np

            def noise():
                return np.random.default_rng()
            """,
            NondetRule(),
        )
        assert report.findings == []


class TestEnvRegistryRule:
    def test_flags_direct_reads_outside_owner(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/knobs.py",
            """
            import os
            from os import environ

            def knobs():
                return os.environ.get("REPRO_SHM"), os.getenv("REPRO_SHM"), environ["REPRO_SHM"]
            """,
            EnvRegistryRule(),
        )
        assert rule_ids(report) == ["ENV-REGISTRY"] * 3

    def test_owner_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "repro/_env.py",
            """
            import os

            def env_raw(name):
                return os.environ.get(name)
            """,
            EnvRegistryRule(),
        )
        assert report.findings == []


class TestBoundAdmissibleDocRule:
    def test_flags_missing_and_citation_free_docstrings(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "bounds/lower_bounds.py",
            """
            def naked_bound(context):
                return context.best()

            def vague_bound(context):
                '''Returns a pretty good value.'''
                return context.best()
            """,
            BoundAdmissibleDocRule(),
        )
        assert rule_ids(report) == ["BOUND-ADMISSIBLE-DOC"] * 2

    def test_cited_and_private_functions_pass(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "bounds/lower_bounds.py",
            """
            def cited_bound(context):
                '''Admissible by the Lemma 3.2 subset-wise argument.'''
                return context.best()

            def _helper(context):
                return context.best()
            """,
            BoundAdmissibleDocRule(),
        )
        assert report.findings == []

    def test_flags_undocumented_bound_method_in_context(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/context.py",
            """
            class CostContext:
                def subset_fancy_lower_bounds(self, rows):
                    '''Returns a pretty good value.'''
                    return rows

                def subset_cited_lower_bounds(self, rows):
                    '''Admissible by Jensen applied to the max.'''
                    return rows

                def _private_lower_bounds(self, rows):
                    return rows

                def unrelated(self, rows):
                    return rows
            """,
            BoundAdmissibleDocRule(),
        )
        assert rule_ids(report) == ["BOUND-ADMISSIBLE-DOC"]
        assert "subset_fancy_lower_bounds" in report.findings[0].message


class TestGapCertificateRule:
    def test_flags_gap_target_solver_without_certificate(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "baselines/solver.py",
            """
            def solve(dataset, k, *, gap_target=None):
                best = enumerate_everything(dataset, k, gap_target)
                return UncertainKCenterResult(cost=best, metadata={})
            """,
            GapCertificateRule(),
        )
        assert rule_ids(report) == ["GAP-CERTIFICATE"]

    def test_certificate_fold_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "baselines/solver.py",
            """
            def solve(dataset, k, *, gap_target=None):
                best, skipped = enumerate_everything(dataset, k, gap_target)
                metadata = {"certificate": _deadline_certificate(best, skipped)}
                return UncertainKCenterResult(cost=best, metadata=metadata)
            """,
            GapCertificateRule(),
        )
        assert report.findings == []

    def test_functions_without_gap_target_or_result_stay_silent(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "baselines/solver.py",
            """
            def no_gap(dataset, k):
                return UncertainKCenterResult(cost=1.0, metadata={})

            def no_result(dataset, k, *, gap_target=None):
                return enumerate_everything(dataset, k, gap_target)
            """,
            GapCertificateRule(),
        )
        assert report.findings == []


class TestSpillPathRule:
    def test_flags_ctx_literal_and_pickle_outside_owners(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "experiments/cache.py",
            """
            import pickle

            def load(root, blob):
                name = root / "payload.ctx"
                return name, pickle.loads(blob)
            """,
            SpillPathRule(),
        )
        assert sorted(rule_ids(report)) == ["SPILL-PATH", "SPILL-PATH"]

    def test_owner_passes(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/store.py",
            """
            import pickle

            def read(path):
                for file in path.glob("*.ctx"):
                    return pickle.loads(file.read_bytes())
            """,
            SpillPathRule(),
        )
        assert report.findings == []


class TestSuppressions:
    FIXTURE = """
    def sweep(values):
        values.sort(){noqa}
        return values
    """

    def _lint(self, tmp_path, noqa: str) -> LintReport:
        return lint_fixture(
            tmp_path,
            "cost/kernel.py",
            self.FIXTURE.format(noqa=noqa),
            FloatSortHotpathRule(),
        )

    def test_justified_suppression_waives_the_finding(self, tmp_path):
        report = self._lint(
            tmp_path, "  # repro: noqa[FLOAT-SORT-HOTPATH] -- integer keys by construction"
        )
        assert report.findings == []
        assert len(report.suppressed) == 1
        assert report.suppressed[0].justification == "integer keys by construction"
        assert report.exit_code() == 0

    def test_bare_noqa_does_not_suppress(self, tmp_path):
        report = self._lint(tmp_path, "  # repro: noqa[FLOAT-SORT-HOTPATH]")
        assert rule_ids(report) == ["FLOAT-SORT-HOTPATH"]
        assert "missing the required" in report.findings[0].message
        assert report.exit_code() == 1

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        report = self._lint(tmp_path, "  # repro: noqa[NONDET] -- wrong rule entirely")
        assert rule_ids(report) == ["FLOAT-SORT-HOTPATH"]

    def test_comment_line_above_applies_to_next_line(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/kernel.py",
            """
            def sweep(values):
                # repro: noqa[FLOAT-SORT-HOTPATH] -- waiver rides above the long call
                values.sort()
                return values
            """,
            FloatSortHotpathRule(),
        )
        assert report.findings == []
        assert len(report.suppressed) == 1


class TestFaultPointRule:
    def test_registered_reachable_runtime_site_is_clean(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/pool.py",
            """
            from .. import faults

            def _dispatch(args):
                faults.inject("crash", "pool.dispatch", token=args)
                return args

            def run(executor, items):
                return executor.submit(_dispatch, items)
            """,
            FaultPointRule(),
        )
        assert report.findings == []

    def test_unregistered_kind_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/pool.py",
            """
            from .. import faults

            def run(args):
                faults.inject("meteor", "pool.dispatch")
                return args
            """,
            FaultPointRule(),
        )
        assert rule_ids(report) == ["FAULT-POINT"]
        assert "unregistered" in report.findings[0].message

    def test_non_literal_kind_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/pool.py",
            """
            from .. import faults

            def run(kind, args):
                faults.inject(kind, "pool.dispatch")
                return args
            """,
            FaultPointRule(),
        )
        assert rule_ids(report) == ["FAULT-POINT"]
        assert "string literal" in report.findings[0].message

    def test_site_outside_runtime_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/kernel.py",
            """
            from .. import faults

            def sweep(values):
                faults.inject("slow", "cost.sweep")
                return values
            """,
            FaultPointRule(),
        )
        assert rule_ids(report) == ["FAULT-POINT"]
        assert "outside repro/runtime" in report.findings[0].message

    def test_unreachable_site_is_flagged(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/pool.py",
            """
            from .. import faults

            def _orphan(args):
                faults.inject("crash", "pool.orphan")
                return args

            def run(items):
                return list(items)
            """,
            FaultPointRule(),
        )
        assert rule_ids(report) == ["FAULT-POINT"]
        assert "not reachable" in report.findings[0].message

    def test_bare_inject_import_is_recognized(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "runtime/shm.py",
            """
            from ..faults import inject

            def attach(name):
                inject("meteor", "shm.attach")
                return name
            """,
            FaultPointRule(),
        )
        assert rule_ids(report) == ["FAULT-POINT"]

    def test_kinds_mirror_pins_the_faults_registry(self):
        """The linter's stdlib-only mirror must track repro.faults.FAULT_KINDS."""
        from repro.faults import FAULT_KINDS

        assert LINT_FAULT_KINDS == FAULT_KINDS

    def test_shipped_injection_sites_are_reachable_and_registered(self):
        report = lint_paths([REPO_ROOT / "src" / "repro" / "runtime"], rules=[FaultPointRule()])
        assert report.findings == []


class TestEngineAndReporters:
    def test_every_rule_ships_with_id_summary_and_motivation(self):
        assert len(RULE_CLASSES) == 10
        seen = set()
        for rule in all_rules():
            assert rule.id and rule.id not in seen
            seen.add(rule.id)
            assert rule.summary
            assert rule.__class__.__doc__ and "Motivation" in rule.__class__.__doc__
            assert rule.id in render_rule_table()

    def test_json_reporter_schema(self, tmp_path):
        report = lint_fixture(
            tmp_path,
            "cost/kernel.py",
            """
            def sweep(values):
                values.sort()
                return sorted(values)  # repro: noqa[FLOAT-SORT-HOTPATH] -- test waiver
            """,
            FloatSortHotpathRule(),
        )
        document = json.loads(render_json(report))
        assert document["schema"] == "repro-lint/1"
        assert document["files"] == 1
        assert document["exit_code"] == 1
        assert document["counts"] == {
            "error": 1,
            "warning": 0,
            "suppressed": 1,
            "baselined": 0,
        }
        (finding,) = document["findings"]
        assert set(finding) == {"rule", "severity", "path", "line", "col", "message"}
        assert finding["rule"] == "FLOAT-SORT-HOTPATH"
        (suppressed,) = document["suppressed"]
        assert suppressed["justification"] == "test waiver"

    def test_exit_codes(self, tmp_path):
        class WarnRule(Rule):
            id = "TEST-WARN"
            severity = Severity.WARNING
            summary = "test-only warning rule"

            def check(self, module):
                for node in module.walk(ast.FunctionDef):
                    yield self.finding(module, node, "warning finding")

        report = lint_fixture(tmp_path, "pkg/mod.py", "def f():\n    return 1\n", WarnRule())
        assert report.exit_code(strict=False) == 0  # warnings do not gate by default
        assert report.exit_code(strict=True) == 1  # --strict promotes them
        missing = lint_paths([tmp_path / "no-such-dir"])
        assert missing.exit_code() == 2

    def test_unparseable_file_is_a_usage_error(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        report = lint_paths([tmp_path])
        assert report.errors and report.exit_code() == 2

    def test_text_reporter_mentions_tally_and_clean(self, tmp_path):
        (tmp_path / "ok.py").write_text("x = 1\n")
        report = lint_paths([tmp_path])
        text = render_text(report)
        assert "checked 1 file(s)" in text and "clean." in text


class TestCli:
    def test_list_rules_and_env_table(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "FLOAT-SORT-HOTPATH" in out and "Motivation" in out
        assert main(["lint", "--env-table"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_SHM" in out and out.startswith("| Variable")

    def test_lint_json_format_on_fixture(self, tmp_path, capsys):
        file = tmp_path / "cost" / "kernel.py"
        file.parent.mkdir(parents=True)
        file.write_text("def f(values):\n    values.sort()\n")
        assert main(["lint", str(tmp_path), "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema"] == "repro-lint/1"
        assert document["findings"]

    def test_shipped_tree_lints_clean(self):
        """The acceptance self-check: ``python -m repro lint src/`` exits 0."""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src"],
            cwd=REPO_ROOT,
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean." in result.stdout

    def test_shipped_tree_has_justified_suppressions_only(self):
        """Every waiver in the shipped tree carries its justification."""
        report = lint_paths([REPO_ROOT / "src"])
        assert report.findings == []
        assert report.errors == []
        assert len(report.suppressed) >= 8
        for suppressed in report.suppressed:
            assert suppressed.justification
