"""Parallel-determinism tests: ``workers=1`` and ``workers=2+`` must agree.

The runtime's contract (see :mod:`repro.runtime.parallel`) is that worker
counts change wall clock only — every returned value is bit-identical to the
serial path.  These tests pin that for the executor itself, the three
sharded brute-force enumerations (including the batched ``candidate_scores``
policies and the exhaustive-assignment shards), and the experiment records.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.assignments.policies import (
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OptimalAssignment,
)
from repro.baselines.brute_force import (
    _assignment_rows_slice,
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
)
from repro.experiments import (
    AblationSettings,
    SensitivitySettings,
    Table1Settings,
    run_assignment_ablation,
    run_e1_one_center,
    run_e8_one_dimensional,
    run_outlier_sensitivity,
    run_representative_ablation,
)
from repro.runtime import (
    effective_workers,
    iter_chunk_bounds,
    parallel_map,
    resolve_workers,
    set_oversubscribe,
    shutdown_runtime,
)
from repro.runtime import parallel as parallel_module
from repro.runtime import pool as pool_module
from repro.workloads import gaussian_clusters


@pytest.fixture(autouse=True)
def _pool_on_one_cpu():
    """Exercise real pools even on 1-CPU machines; leave nothing behind."""
    previous = set_oversubscribe(True)
    yield
    set_oversubscribe(previous)
    shutdown_runtime()


def _square(payload, item):
    return payload * item * item


def _fail_on_three(payload, item):
    if item == 3:
        raise ValueError("boom")
    return item


class TestExecutor:
    def test_serial_matches_plain_loop(self):
        assert parallel_map(_square, range(7), payload=2, workers=1) == [2 * i * i for i in range(7)]

    def test_parallel_matches_serial_in_order(self):
        serial = parallel_map(_square, range(11), payload=3, workers=1)
        parallel = parallel_map(_square, range(11), payload=3, workers=2)
        assert parallel == serial

    def test_exceptions_propagate_serially_and_in_parallel(self):
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_fail_on_three, range(5), workers=1)
        with pytest.raises(ValueError, match="boom"):
            parallel_map(_fail_on_three, range(5), workers=2)

    def test_resolve_workers_normalizes(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(0) == 1
        assert resolve_workers(-4) == 1
        assert resolve_workers(3) == 3

    def test_iter_chunk_bounds_cover_range_without_overlap(self):
        bounds = list(iter_chunk_bounds(10, 3))
        assert bounds == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert list(iter_chunk_bounds(0, 3)) == []


class TestSerialFallback:
    """``workers=N`` must never be slower than serial on a small box."""

    def test_clamps_to_available_cpus(self, monkeypatch):
        set_oversubscribe(False)
        monkeypatch.setattr(parallel_module, "available_workers", lambda: 1)
        assert effective_workers(8, item_count=100) == 1

    def test_clamps_to_item_count(self):
        assert effective_workers(8, item_count=3) == 3

    def test_too_few_items_run_serially(self):
        assert effective_workers(4, item_count=1) == 1
        assert effective_workers(4, item_count=3, min_items=4) == 1

    def test_single_cpu_request_never_starts_a_pool(self, monkeypatch):
        set_oversubscribe(False)
        monkeypatch.setattr(parallel_module, "available_workers", lambda: 1)

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("pool must not start on a 1-CPU box")

        monkeypatch.setattr(pool_module.PersistentPool, "ensure", forbidden)
        result = parallel_map(_square, range(10), payload=2, workers=8)
        assert result == [2 * i * i for i in range(10)]

    def test_oversubscribe_reenables_pools(self, monkeypatch):
        monkeypatch.setattr(parallel_module, "available_workers", lambda: 1)
        set_oversubscribe(True)
        assert effective_workers(4, item_count=16) == 4


class TestShmOptOut:
    """``shm=False`` must mean no shared-memory segments of any kind."""

    def test_no_segment_allocation_with_shm_disabled(self, monkeypatch):
        from repro.runtime import shm as shm_module

        def forbidden(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("shm=False must not touch shared memory")

        monkeypatch.setattr(shm_module, "publish_payload", forbidden)
        monkeypatch.setattr(shm_module, "publish_blob", forbidden)
        result = parallel_map(_square, range(8), payload=3, workers=2, shm=False)
        assert result == [3 * i * i for i in range(8)]


@pytest.fixture(scope="module")
def micro_instance():
    dataset, _ = gaussian_clusters(n=7, z=3, dimension=2, k_true=3, seed=4)
    return dataset


class TestBruteForceSharding:
    """workers=2 with small chunks must reproduce the serial result exactly."""

    def test_restricted_ed_identical(self, micro_instance):
        serial = brute_force_restricted_assigned(micro_instance, 3)
        sharded = brute_force_restricted_assigned(micro_instance, 3, workers=2, chunk_rows=32)
        assert sharded.expected_cost == serial.expected_cost
        assert np.array_equal(sharded.centers, serial.centers)
        assert np.array_equal(sharded.assignment, serial.assignment)

    def test_restricted_batched_score_policy_identical(self, micro_instance):
        serial = brute_force_restricted_assigned(
            micro_instance, 2, assignment=ExpectedPointAssignment()
        )
        sharded = brute_force_restricted_assigned(
            micro_instance, 2, assignment=ExpectedPointAssignment(), workers=2, chunk_rows=16
        )
        assert sharded.expected_cost == serial.expected_cost
        assert np.array_equal(sharded.centers, serial.centers)
        serial_nm = brute_force_restricted_assigned(
            micro_instance, 2, assignment=NearestLocationAssignment()
        )
        sharded_nm = brute_force_restricted_assigned(
            micro_instance, 2, assignment=NearestLocationAssignment(), workers=3, chunk_rows=8
        )
        assert sharded_nm.expected_cost == serial_nm.expected_cost

    def test_restricted_blackbox_policy_identical(self, micro_instance):
        candidates = micro_instance.expected_points()
        serial = brute_force_restricted_assigned(
            micro_instance, 2, assignment=OptimalAssignment(), candidates=candidates
        )
        sharded = brute_force_restricted_assigned(
            micro_instance,
            2,
            assignment=OptimalAssignment(),
            candidates=candidates,
            workers=2,
            chunk_rows=8,
        )
        assert sharded.expected_cost == serial.expected_cost
        assert np.array_equal(sharded.centers, serial.centers)

    def test_unrestricted_identical_including_exhaustive_stage(self, micro_instance):
        serial = brute_force_unrestricted_assigned(micro_instance, 2, polish_top=3)
        sharded = brute_force_unrestricted_assigned(
            micro_instance, 2, polish_top=3, workers=2, chunk_rows=16
        )
        assert sharded.expected_cost == serial.expected_cost
        assert np.array_equal(sharded.centers, serial.centers)
        assert np.array_equal(sharded.assignment, serial.assignment)
        assert sharded.metadata["exhaustive_assignment"] == serial.metadata["exhaustive_assignment"]

    def test_unassigned_identical(self, micro_instance):
        serial = brute_force_unassigned(micro_instance, 2)
        sharded = brute_force_unassigned(micro_instance, 2, workers=2, chunk_rows=32)
        assert sharded.expected_cost == serial.expected_cost
        assert np.array_equal(sharded.centers, serial.centers)

    def test_chunk_rows_bounds_do_not_change_results(self, micro_instance):
        baseline = brute_force_restricted_assigned(micro_instance, 2)
        for chunk_rows in (1, 7, 64):
            result = brute_force_restricted_assigned(micro_instance, 2, chunk_rows=chunk_rows)
            assert result.expected_cost == baseline.expected_cost

    def test_assignment_slice_matches_itertools_product(self):
        from itertools import product

        columns = np.asarray([4, 7, 9])
        n = 4
        full = np.asarray([
            [columns[c] for c in choice] for choice in product(range(3), repeat=n)
        ])
        total = 3**n
        for start, stop in iter_chunk_bounds(total, 17):
            np.testing.assert_array_equal(
                _assignment_rows_slice(columns, n, start, stop), full[start:stop]
            )


class TestExperimentDeterminism:
    """Whole experiment records must be equal at workers=1 vs workers=2."""

    def test_table1_records_identical(self):
        settings = Table1Settings(trials=1, n_small=4, n_medium=10, z=2, k=2)
        assert run_e1_one_center(settings) == run_e1_one_center(replace(settings, workers=2))
        assert run_e8_one_dimensional(settings) == run_e8_one_dimensional(
            replace(settings, workers=2)
        )

    def test_ablation_records_identical(self):
        settings = AblationSettings(trials=1, n=10, z=2, k=2)
        parallel = replace(settings, workers=2)
        assert run_representative_ablation(settings) == run_representative_ablation(parallel)
        assert run_assignment_ablation(settings) == run_assignment_ablation(parallel)

    def test_sensitivity_non_timing_fields_identical(self):
        settings = SensitivitySettings(n=10, trials=1, outlier_probabilities=(0.0, 0.1))
        # E13a measures no wall clock, so the whole record must match.
        assert run_outlier_sensitivity(settings) == run_outlier_sensitivity(
            replace(settings, workers=2)
        )
