"""Unit and property tests for the Gonzalez and Hochbaum–Shmoys solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.deterministic import (
    assign_to_nearest,
    coverage_radius_per_center,
    exact_euclidean_kcenter,
    gonzalez_kcenter,
    hochbaum_shmoys_kcenter,
    kcenter_cost,
)
from repro.metrics import EuclideanMetric, ManhattanMetric, MatrixMetric

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestGonzalez:
    def test_k_one_picks_seed(self, rng):
        points = rng.normal(size=(10, 2))
        result = gonzalez_kcenter(points, 1)
        assert result.k == 1
        np.testing.assert_allclose(result.centers[0], points[0])

    def test_k_equals_n_zero_radius(self, rng):
        points = rng.normal(size=(6, 2))
        result = gonzalez_kcenter(points, 6)
        assert result.radius == pytest.approx(0.0, abs=1e-12)

    def test_k_larger_than_n_clamped(self, rng):
        points = rng.normal(size=(4, 2))
        result = gonzalez_kcenter(points, 10)
        assert result.k <= 4

    def test_centers_are_input_points(self, rng):
        points = rng.normal(size=(20, 3))
        result = gonzalez_kcenter(points, 4)
        for center in result.centers:
            assert any(np.allclose(center, point) for point in points)

    def test_labels_consistent_with_centers(self, rng):
        points = rng.normal(size=(30, 2))
        result = gonzalez_kcenter(points, 3)
        labels, distances = assign_to_nearest(points, result.centers, EuclideanMetric())
        np.testing.assert_array_equal(labels, result.labels)
        assert result.radius == pytest.approx(distances.max())

    def test_well_separated_clusters_recovered(self):
        rng = np.random.default_rng(0)
        clusters = [np.array([0.0, 0.0]), np.array([100.0, 0.0]), np.array([0.0, 100.0])]
        points = np.vstack([c + rng.normal(scale=0.5, size=(10, 2)) for c in clusters])
        result = gonzalez_kcenter(points, 3)
        # Each true cluster must contain exactly one chosen center.
        assignment = [np.argmin([np.linalg.norm(center - c) for c in clusters]) for center in result.centers]
        assert sorted(assignment) == [0, 1, 2]
        assert result.radius < 5.0

    def test_duplicate_points_early_stop(self):
        points = np.array([[1.0, 1.0]] * 5)
        result = gonzalez_kcenter(points, 3)
        assert result.radius == 0.0
        assert result.k >= 1

    def test_invalid_first_index(self, rng):
        with pytest.raises(IndexError):
            gonzalez_kcenter(rng.normal(size=(5, 2)), 2, first_index=9)

    def test_random_seed_start(self, rng):
        points = rng.normal(size=(15, 2))
        result = gonzalez_kcenter(points, 3, first_index=None, seed=5)
        assert result.k == 3

    def test_works_with_other_metric(self, rng):
        points = rng.normal(size=(20, 2))
        result = gonzalez_kcenter(points, 3, ManhattanMetric())
        assert result.radius == pytest.approx(kcenter_cost(points, result.centers, ManhattanMetric()))

    def test_works_on_finite_metric(self):
        matrix = np.array(
            [
                [0.0, 1.0, 2.0, 3.0],
                [1.0, 0.0, 1.0, 2.0],
                [2.0, 1.0, 0.0, 1.0],
                [3.0, 2.0, 1.0, 0.0],
            ]
        )
        metric = MatrixMetric(matrix)
        result = gonzalez_kcenter(metric.all_elements(), 2, metric)
        assert result.radius <= 1.0 + 1e-12

    @given(arrays(np.float64, (12, 2), elements=coords), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_property_two_approximation(self, points, k):
        greedy = gonzalez_kcenter(points, k)
        if points.shape[0] <= 10:
            optimum = exact_euclidean_kcenter(points[:10], k)
            # (only compare when the instance was small enough to solve exactly)
            if points.shape[0] <= 10:
                assert greedy.radius <= 2.0 * optimum.radius + 1e-7

    @given(arrays(np.float64, (10, 2), elements=coords))
    @settings(max_examples=30, deadline=None)
    def test_property_radius_decreases_with_k(self, points):
        radii = [gonzalez_kcenter(points, k).radius for k in (1, 2, 4, 8)]
        for previous, current in zip(radii, radii[1:]):
            assert current <= previous + 1e-9


class TestHochbaumShmoys:
    def test_two_approximation_vs_exact(self, rng):
        points = rng.normal(size=(10, 2))
        result = hochbaum_shmoys_kcenter(points, 3)
        optimum = exact_euclidean_kcenter(points, 3)
        assert result.radius <= 2.0 * optimum.radius + 1e-7

    def test_centers_are_input_points(self, rng):
        points = rng.normal(size=(15, 2))
        result = hochbaum_shmoys_kcenter(points, 4)
        for center in result.centers:
            assert any(np.allclose(center, point) for point in points)

    def test_radius_matches_assignment(self, rng):
        points = rng.normal(size=(20, 2))
        result = hochbaum_shmoys_kcenter(points, 3)
        assert result.radius == pytest.approx(kcenter_cost(points, result.centers, EuclideanMetric()))

    def test_k_equals_n(self, rng):
        points = rng.normal(size=(5, 2))
        result = hochbaum_shmoys_kcenter(points, 5)
        assert result.radius == pytest.approx(0.0, abs=1e-12)

    def test_on_finite_metric_uses_threshold(self):
        matrix = np.array(
            [
                [0.0, 1.0, 4.0, 5.0],
                [1.0, 0.0, 3.0, 4.0],
                [4.0, 3.0, 0.0, 1.0],
                [5.0, 4.0, 1.0, 0.0],
            ]
        )
        metric = MatrixMetric(matrix)
        result = hochbaum_shmoys_kcenter(metric.all_elements(), 2, metric)
        assert result.radius <= 2.0  # two natural clusters {0,1} and {2,3}

    def test_comparable_to_gonzalez(self, rng):
        points = rng.normal(size=(40, 2))
        hs = hochbaum_shmoys_kcenter(points, 4).radius
        gz = gonzalez_kcenter(points, 4).radius
        # Both are 2-approximations; neither should be more than 2x the other.
        assert hs <= 2.0 * gz + 1e-9
        assert gz <= 2.0 * hs + 1e-9


class TestAssignHelpers:
    def test_coverage_radius_per_center(self, rng):
        points = rng.normal(size=(20, 2))
        result = gonzalez_kcenter(points, 3)
        radii = coverage_radius_per_center(points, result.centers, EuclideanMetric())
        assert radii.shape == (3,)
        assert radii.max() == pytest.approx(result.radius)

    def test_kcenter_cost_matches_manual(self, rng):
        points = rng.normal(size=(10, 2))
        centers = points[:2]
        metric = EuclideanMetric()
        expected = max(min(np.linalg.norm(p - c) for c in centers) for p in points)
        assert kcenter_cost(points, centers, metric) == pytest.approx(expected)
