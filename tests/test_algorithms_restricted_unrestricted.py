"""Tests for the Euclidean k-center reductions (Theorems 2.2, 2.4, 2.5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    solve_restricted_assigned,
    solve_unrestricted_assigned,
)
from repro.assignments import ExpectedDistanceAssignment, ExpectedPointAssignment
from repro.baselines import (
    brute_force_restricted_assigned,
    brute_force_unrestricted_assigned,
)
from repro.bounds import assigned_cost_lower_bound
from repro.cost import expected_cost_assigned
from repro.deterministic import gonzalez_kcenter
from repro.exceptions import NotSupportedError, ValidationError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestRestrictedAssigned:
    def test_result_structure(self, euclidean_dataset):
        result = solve_restricted_assigned(euclidean_dataset, 2)
        assert result.objective == "restricted-assigned"
        assert result.centers.shape == (2, 2)
        assert result.assignment.shape == (euclidean_dataset.size,)
        assert result.assignment_policy == "expected-distance"
        assert result.representatives.shape == (euclidean_dataset.size, 2)
        assert result.metadata["theorem"] == "2.2"

    def test_cost_consistent_with_engine(self, euclidean_dataset):
        result = solve_restricted_assigned(euclidean_dataset, 2)
        recomputed = expected_cost_assigned(euclidean_dataset, result.centers, result.assignment)
        assert result.expected_cost == pytest.approx(recomputed)

    def test_factor_bookkeeping_gonzalez(self, euclidean_dataset):
        ed = solve_restricted_assigned(euclidean_dataset, 2, assignment="expected-distance", solver="gonzalez")
        ep = solve_restricted_assigned(euclidean_dataset, 2, assignment="expected-point", solver="gonzalez")
        assert ed.guaranteed_factor == pytest.approx(6.0)  # 4 + 2
        assert ep.guaranteed_factor == pytest.approx(4.0)  # 2 + 2

    def test_factor_bookkeeping_epsilon(self, euclidean_dataset):
        result = solve_restricted_assigned(
            euclidean_dataset, 2, assignment="expected-point", solver="epsilon", epsilon=0.25
        )
        # The certified deterministic factor is at most 2, so the end-to-end
        # factor is at most 4 and at least 3 (2 + f with f >= 1).
        assert 3.0 - 1e-9 <= result.guaranteed_factor <= 4.0 + 1e-9

    def test_policy_instance_accepted(self, euclidean_dataset):
        result = solve_restricted_assigned(euclidean_dataset, 2, assignment=ExpectedPointAssignment())
        assert result.assignment_policy == "expected-point"

    def test_unknown_policy_rejected(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            solve_restricted_assigned(euclidean_dataset, 2, assignment="one-center")
        with pytest.raises(ValidationError):
            solve_restricted_assigned(euclidean_dataset, 2, assignment="nonsense")

    def test_unknown_solver_rejected(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            solve_restricted_assigned(euclidean_dataset, 2, solver="does-not-exist")

    def test_rejected_on_graph_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            solve_restricted_assigned(graph_dataset, 2)

    def test_custom_solver_callable(self, euclidean_dataset):
        calls = {}

        def solver(points, k, metric):
            calls["points"] = points
            return gonzalez_kcenter(points, k, metric)

        result = solve_restricted_assigned(euclidean_dataset, 2, solver=solver)
        assert "points" in calls
        np.testing.assert_allclose(calls["points"], euclidean_dataset.expected_points())
        assert result.guaranteed_factor == pytest.approx(6.0)

    @pytest.mark.parametrize("assignment", ["expected-distance", "expected-point"])
    @pytest.mark.parametrize("seed", range(4))
    def test_guarantee_vs_restricted_reference(self, assignment, seed):
        # Theorem 2.2: cost <= (4 + f) / (2 + f) times the optimal cost under
        # the *same* restricted assignment rule.  The brute-force reference
        # over a rich candidate set upper-bounds that optimum, so the check
        # below is conservative in the right direction.
        dataset = make_uncertain_dataset(n=5, z=3, dimension=2, seed=seed, spread=6.0)
        policy = ExpectedDistanceAssignment() if assignment == "expected-distance" else ExpectedPointAssignment()
        reference = brute_force_restricted_assigned(dataset, 2, assignment=policy)
        for solver in ("gonzalez", "epsilon"):
            result = solve_restricted_assigned(dataset, 2, assignment=assignment, solver=solver)
            assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-9

    def test_k_one_reduces_to_one_center_problem(self, euclidean_dataset):
        result = solve_restricted_assigned(euclidean_dataset, 1)
        assert result.centers.shape == (1, 2)
        assert np.all(result.assignment == 0)


class TestUnrestrictedAssigned:
    def test_result_structure(self, euclidean_dataset):
        result = solve_unrestricted_assigned(euclidean_dataset, 2)
        assert result.objective == "unrestricted-assigned"
        assert result.assignment_policy == "expected-point"
        assert result.metadata["theorem"] == "2.5"

    def test_ed_variant_is_theorem_24(self, euclidean_dataset):
        result = solve_unrestricted_assigned(euclidean_dataset, 2, assignment="expected-distance")
        assert result.metadata["theorem"] == "2.4"
        assert result.guaranteed_factor == pytest.approx(6.0)  # 4 + 2 with Gonzalez

    def test_factor_bookkeeping(self, euclidean_dataset):
        gonzalez = solve_unrestricted_assigned(euclidean_dataset, 2, solver="gonzalez")
        assert gonzalez.guaranteed_factor == pytest.approx(4.0)  # 2 + 2
        epsilon = solve_unrestricted_assigned(euclidean_dataset, 2, solver="epsilon")
        assert epsilon.guaranteed_factor <= 4.0 + 1e-9

    def test_polish_assignment_never_hurts(self, euclidean_dataset):
        plain = solve_unrestricted_assigned(euclidean_dataset, 2, solver="gonzalez")
        polished = solve_unrestricted_assigned(
            euclidean_dataset, 2, solver="gonzalez", polish_assignment=True
        )
        assert polished.expected_cost <= plain.expected_cost + 1e-12

    def test_unknown_assignment_rejected(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            solve_unrestricted_assigned(euclidean_dataset, 2, assignment="one-center")

    def test_rejected_on_graph_metric(self, graph_dataset):
        with pytest.raises(NotSupportedError):
            solve_unrestricted_assigned(graph_dataset, 2)

    @pytest.mark.parametrize("seed", range(4))
    def test_guarantee_vs_unrestricted_reference(self, seed):
        # Theorems 2.4/2.5: cost <= (4 + f) / (2 + f) times the unrestricted
        # optimum.  The reference is an upper bound of the optimum, making the
        # assertion conservative.
        dataset = make_uncertain_dataset(n=5, z=3, dimension=2, seed=seed + 40, spread=6.0)
        reference = brute_force_unrestricted_assigned(dataset, 2)
        lower_bound = assigned_cost_lower_bound(dataset, 2)
        assert lower_bound <= reference.expected_cost + 1e-9
        for assignment in ("expected-point", "expected-distance"):
            for solver in ("gonzalez", "epsilon"):
                result = solve_unrestricted_assigned(dataset, 2, assignment=assignment, solver=solver)
                assert result.expected_cost <= result.guaranteed_factor * reference.expected_cost + 1e-9

    def test_larger_instance_guarantee_vs_lower_bound(self):
        # On instances too big for brute force the provable lower bound is the
        # denominator; the measured ratio must stay within the guarantee.
        dataset = make_uncertain_dataset(n=40, z=4, dimension=3, seed=77, spread=8.0)
        result = solve_unrestricted_assigned(dataset, 4, solver="epsilon")
        lower_bound = assigned_cost_lower_bound(dataset, 4)
        assert lower_bound > 0
        assert result.expected_cost <= result.guaranteed_factor * max(lower_bound, 1e-12) * 1.0 + 1e-9 or (
            result.expected_cost / lower_bound <= result.guaranteed_factor + 1e-9
        )
