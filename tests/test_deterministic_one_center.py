"""Unit tests for the deterministic 1-center solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deterministic import (
    discrete_one_center,
    discrete_weighted_one_center,
    euclidean_one_center,
    one_center_cost,
)
from repro.metrics import EuclideanMetric, MatrixMetric


class TestEuclideanOneCenter:
    def test_matches_seb(self, rng):
        points = rng.normal(size=(20, 2))
        ball = euclidean_one_center(points)
        assert ball.contains_all(points)
        assert ball.radius == pytest.approx(one_center_cost(points, ball.center), rel=1e-9)


class TestDiscreteOneCenter:
    def test_picks_best_candidate(self):
        metric = EuclideanMetric()
        points = np.array([[0.0, 0.0], [2.0, 0.0], [4.0, 0.0]])
        center, radius = discrete_one_center(points, metric)
        np.testing.assert_allclose(center, [2.0, 0.0])
        assert radius == pytest.approx(2.0)

    def test_custom_candidates(self):
        metric = EuclideanMetric()
        points = np.array([[0.0, 0.0], [4.0, 0.0]])
        candidates = np.array([[2.0, 0.0], [0.0, 0.0]])
        center, radius = discrete_one_center(points, metric, candidates)
        np.testing.assert_allclose(center, [2.0, 0.0])
        assert radius == pytest.approx(2.0)

    def test_on_finite_metric_uses_all_elements(self):
        matrix = np.array(
            [
                [0.0, 1.0, 2.0],
                [1.0, 0.0, 1.0],
                [2.0, 1.0, 0.0],
            ]
        )
        metric = MatrixMetric(matrix)
        # Points are elements 0 and 2; the best center is element 1 (radius 1)
        # even though it is not one of the points.
        points = np.array([[0.0], [2.0]])
        center, radius = discrete_one_center(points, metric)
        assert center[0] == pytest.approx(1.0)
        assert radius == pytest.approx(1.0)


class TestDiscreteWeightedOneCenter:
    def test_minimises_expected_distance(self):
        metric = EuclideanMetric()
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        weights = np.array([0.9, 0.1])
        candidates = np.array([[0.0, 0.0], [5.0, 0.0], [10.0, 0.0]])
        center, value = discrete_weighted_one_center(points, weights, metric, candidates)
        # Expected distances: at 0 -> 1.0, at 5 -> 5.0, at 10 -> 9.0.
        np.testing.assert_allclose(center, [0.0, 0.0])
        assert value == pytest.approx(1.0)

    def test_uniform_weights_reduce_to_expected_distance_median(self):
        metric = EuclideanMetric()
        points = np.array([[0.0], [1.0], [10.0]])
        weights = np.full(3, 1.0 / 3.0)
        center, value = discrete_weighted_one_center(points, weights, metric)
        # Candidate 1.0 minimises (1 + 0 + 9)/3.
        assert center[0] == pytest.approx(1.0)
        assert value == pytest.approx(10.0 / 3.0)

    def test_value_consistent_with_manual_computation(self, rng):
        metric = EuclideanMetric()
        points = rng.normal(size=(6, 2))
        weights = rng.dirichlet(np.ones(6))
        center, value = discrete_weighted_one_center(points, weights, metric)
        manual = float((weights * np.linalg.norm(points - center, axis=1)).sum())
        assert value == pytest.approx(manual, rel=1e-9)
