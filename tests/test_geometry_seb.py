"""Unit and property tests for the smallest-enclosing-ball solvers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ValidationError
from repro.geometry import (
    Ball,
    ritter_ball,
    smallest_enclosing_ball,
    weighted_one_center,
    welzl_ball,
)

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestBall:
    def test_contains(self):
        ball = Ball(center=np.array([0.0, 0.0]), radius=1.0)
        assert ball.contains(np.array([0.5, 0.5]))
        assert not ball.contains(np.array([2.0, 0.0]))

    def test_contains_all(self):
        ball = Ball(center=np.array([0.0, 0.0]), radius=2.0)
        points = np.array([[1.0, 0.0], [0.0, -1.5]])
        assert ball.contains_all(points)


class TestSmallestEnclosingBall:
    def test_single_point(self):
        ball = smallest_enclosing_ball([[3.0, 4.0]])
        np.testing.assert_allclose(ball.center, [3.0, 4.0])
        assert ball.radius == 0.0

    def test_two_points(self):
        ball = smallest_enclosing_ball([[0.0, 0.0], [2.0, 0.0]])
        np.testing.assert_allclose(ball.center, [1.0, 0.0], atol=1e-9)
        assert ball.radius == pytest.approx(1.0, abs=1e-9)

    def test_equilateral_triangle(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [0.5, np.sqrt(3) / 2]])
        ball = smallest_enclosing_ball(points)
        assert ball.radius == pytest.approx(1.0 / np.sqrt(3), abs=1e-8)

    def test_obtuse_triangle_uses_two_points(self):
        # For an obtuse triangle the SEB is the diameter of the longest side.
        points = np.array([[0.0, 0.0], [10.0, 0.0], [5.0, 0.1]])
        ball = smallest_enclosing_ball(points)
        assert ball.radius == pytest.approx(5.0, abs=1e-6)

    def test_collinear_points(self):
        points = np.array([[float(i), 0.0] for i in range(7)])
        ball = smallest_enclosing_ball(points)
        assert ball.radius == pytest.approx(3.0, abs=1e-8)
        np.testing.assert_allclose(ball.center, [3.0, 0.0], atol=1e-7)

    def test_duplicate_points(self):
        points = np.array([[1.0, 1.0]] * 5 + [[3.0, 1.0]])
        ball = smallest_enclosing_ball(points)
        assert ball.radius == pytest.approx(1.0, abs=1e-8)

    def test_square_in_3d(self):
        points = np.array(
            [[1.0, 1.0, 0.0], [1.0, -1.0, 0.0], [-1.0, 1.0, 0.0], [-1.0, -1.0, 0.0]]
        )
        ball = smallest_enclosing_ball(points)
        assert ball.radius == pytest.approx(np.sqrt(2.0), abs=1e-8)

    def test_high_dimension_fallback(self, rng):
        points = rng.normal(size=(30, 20))
        ball = smallest_enclosing_ball(points)
        assert ball.contains_all(points, atol=1e-6)
        # The numerical solver should be within a few percent of the best
        # single-point bound.
        assert ball.radius <= 1.05 * ritter_ball(points).radius

    def test_matches_ritter_upper_bound(self, rng):
        points = rng.normal(size=(40, 3))
        exact = smallest_enclosing_ball(points)
        approx = ritter_ball(points)
        assert exact.radius <= approx.radius + 1e-9

    @given(arrays(np.float64, (8, 2), elements=coords))
    @settings(max_examples=60, deadline=None)
    def test_property_covers_and_not_larger_than_ritter(self, points):
        ball = smallest_enclosing_ball(points)
        assert ball.contains_all(points, atol=1e-6)
        assert ball.radius <= ritter_ball(points).radius + 1e-6

    @given(arrays(np.float64, (6, 3), elements=coords))
    @settings(max_examples=40, deadline=None)
    def test_property_radius_at_least_half_diameter(self, points):
        ball = smallest_enclosing_ball(points)
        diameter = max(
            np.linalg.norm(points[i] - points[j]) for i in range(len(points)) for j in range(len(points))
        )
        assert ball.radius >= diameter / 2.0 - 1e-7


class TestWelzlDirect:
    def test_matches_public_entry(self, rng):
        points = rng.normal(size=(25, 2))
        a = welzl_ball(points, seed=0)
        b = smallest_enclosing_ball(points)
        assert a.radius == pytest.approx(b.radius, rel=1e-9)

    def test_seed_invariance(self, rng):
        points = rng.normal(size=(25, 3))
        radii = {round(welzl_ball(points, seed=s).radius, 9) for s in range(4)}
        assert len(radii) == 1


class TestWeightedOneCenter:
    def test_uniform_weights_match_seb(self, rng):
        points = rng.normal(size=(15, 2))
        seb = smallest_enclosing_ball(points)
        weighted = weighted_one_center(points, np.ones(15))
        objective_seb = np.linalg.norm(points - seb.center, axis=1).max()
        objective_weighted = np.linalg.norm(points - weighted.center, axis=1).max()
        assert objective_weighted <= objective_seb * 1.02 + 1e-9

    def test_heavier_point_pulls_center(self):
        points = np.array([[0.0, 0.0], [10.0, 0.0]])
        weights = np.array([10.0, 1.0])
        ball = weighted_one_center(points, weights)
        # The optimal weighted center sits where 10*d0 = 1*d1 along the segment.
        assert ball.center[0] < 2.0

    def test_rejects_bad_weights(self):
        points = np.array([[0.0], [1.0]])
        with pytest.raises(ValidationError):
            weighted_one_center(points, [1.0])
        with pytest.raises(ValidationError):
            weighted_one_center(points, [-1.0, 1.0])
        with pytest.raises(ValidationError):
            weighted_one_center(points, [0.0, 0.0])
