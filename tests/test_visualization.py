"""Tests for the ASCII visualisation helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.visualization import render_dataset, render_solution_summary
from repro import solve_unrestricted_assigned
from tests.conftest import make_graph_dataset, make_uncertain_dataset


class TestRenderDataset:
    def test_grid_dimensions(self, euclidean_dataset):
        text = render_dataset(euclidean_dataset, width=40, height=10)
        lines = text.splitlines()
        # legend + top frame + 10 rows + bottom frame
        assert len(lines) == 13
        for row in lines[2:-1]:
            assert len(row) == 42  # 40 columns plus two frame characters

    def test_contains_markers(self, euclidean_dataset):
        result = solve_unrestricted_assigned(euclidean_dataset, 2)
        text = render_dataset(euclidean_dataset, result.centers)
        assert "C" in text
        assert "o" in text

    def test_without_expected_points(self, euclidean_dataset):
        text = render_dataset(euclidean_dataset, show_expected_points=False)
        body = "\n".join(text.splitlines()[2:-1])
        assert "o" not in body

    def test_one_dimensional_dataset(self, line_dataset):
        text = render_dataset(line_dataset, width=30, height=6)
        assert len(text.splitlines()) == 9

    def test_high_dimension_projects_to_two(self):
        dataset = make_uncertain_dataset(n=5, z=2, dimension=5, seed=1)
        text = render_dataset(dataset)
        assert "legend" in text

    def test_rejects_graph_dataset(self, graph_dataset):
        with pytest.raises(ValidationError):
            render_dataset(graph_dataset)

    def test_rejects_tiny_grid(self, euclidean_dataset):
        with pytest.raises(ValidationError):
            render_dataset(euclidean_dataset, width=4, height=2)


class TestRenderSolutionSummary:
    def test_summary_lists_every_center(self, euclidean_dataset):
        result = solve_unrestricted_assigned(euclidean_dataset, 2)
        text = render_solution_summary(euclidean_dataset, result.centers, result.assignment)
        assert text.count("center[") == 2
        # Every point label appears exactly once across the two clusters.
        for point in euclidean_dataset:
            assert text.count(point.label) == 1

    def test_summary_without_assignment(self, euclidean_dataset):
        result = solve_unrestricted_assigned(euclidean_dataset, 2)
        text = render_solution_summary(euclidean_dataset, result.centers, None)
        # With no assignment every point is listed under every center.
        assert text.count(euclidean_dataset[0].label) == 2
