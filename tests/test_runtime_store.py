"""ContextStore keying, invalidation, LRU and disk-spill behavior."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost.context import CostContext
from repro.runtime import ContextStore, candidate_fingerprint, dataset_fingerprint
from repro.runtime.store import SPILL_ENV, SPILL_MAX_AGE_ENV, SPILL_MAX_ENV
from repro.uncertain import UncertainDataset, UncertainPoint
from repro.workloads import gaussian_clusters


@pytest.fixture()
def instance():
    dataset, _ = gaussian_clusters(n=6, z=3, dimension=2, k_true=2, seed=9)
    return dataset, dataset.expected_points()[:4]


class TestFingerprints:
    def test_dataset_fingerprint_is_content_based(self, instance):
        dataset, _ = instance
        twin = UncertainDataset(points=dataset.points, metric=dataset.metric)
        assert dataset_fingerprint(dataset) == dataset_fingerprint(twin)

    def test_dataset_fingerprint_changes_with_content(self, instance):
        dataset, _ = instance
        points = list(dataset.points)
        moved = points[0].locations.copy()
        moved[0, 0] += 1e-9
        points[0] = UncertainPoint(
            locations=moved, probabilities=points[0].probabilities, label=points[0].label
        )
        perturbed = UncertainDataset(points=tuple(points), metric=dataset.metric)
        assert dataset_fingerprint(dataset) != dataset_fingerprint(perturbed)

    def test_candidate_fingerprint_sensitive_to_values_and_shape(self):
        candidates = np.asarray([[0.0, 1.0], [2.0, 3.0]])
        assert candidate_fingerprint(candidates) == candidate_fingerprint(candidates.copy())
        assert candidate_fingerprint(candidates) != candidate_fingerprint(candidates + 1e-12)
        assert candidate_fingerprint(candidates) != candidate_fingerprint(candidates.reshape(4, 1))


class TestContextStore:
    def test_hit_returns_same_object(self, instance):
        dataset, candidates = instance
        store = ContextStore()
        first = store.get(dataset, candidates)
        second = store.get(dataset, candidates.copy())  # equal content, new array
        assert second is first
        assert (store.hits, store.misses) == (1, 1)

    def test_changed_candidates_rebuild(self, instance):
        dataset, candidates = instance
        store = ContextStore()
        first = store.get(dataset, candidates)
        second = store.get(dataset, candidates + 0.5)
        assert second is not first
        assert store.misses == 2

    def test_changed_dataset_rebuilds(self, instance):
        dataset, candidates = instance
        store = ContextStore()
        store.get(dataset, candidates)
        other, _ = gaussian_clusters(n=6, z=3, dimension=2, k_true=2, seed=10)
        assert store.get(other, candidates) is not store.get(dataset, candidates)
        assert store.misses == 2

    def test_memoized_context_scores_identically(self, instance):
        dataset, candidates = instance
        store = ContextStore()
        labels = np.zeros(dataset.size, dtype=int)
        memoized = store.get(dataset, candidates).assigned_cost(labels)
        fresh = CostContext(dataset, candidates).assigned_cost(labels)
        assert memoized == fresh

    def test_lru_eviction_is_bounded(self, instance):
        dataset, candidates = instance
        store = ContextStore(maxsize=2)
        store.get(dataset, candidates)
        store.get(dataset, candidates + 1.0)
        store.get(dataset, candidates + 2.0)  # evicts the first entry
        assert len(store) == 2
        store.get(dataset, candidates)  # miss again: it aged out
        assert store.misses == 4

    def test_clear_resets_counters(self, instance):
        dataset, candidates = instance
        store = ContextStore()
        store.get(dataset, candidates)
        store.clear()
        assert (len(store), store.hits, store.misses) == (0, 0, 0)


class TestDiskSpill:
    """The cross-process tier: same fingerprints, pickled write-through."""

    def test_spill_disabled_by_default(self, instance, monkeypatch, tmp_path):
        monkeypatch.delenv(SPILL_ENV, raising=False)
        store = ContextStore()
        assert store.spill_dir is None

    def test_env_variable_enables_spill(self, instance, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_ENV, str(tmp_path))
        store = ContextStore()
        assert store.spill_dir == tmp_path

    def test_build_writes_through(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        assert len(list(tmp_path.glob("*.ctx"))) == 1

    def test_fresh_store_hits_disk_instead_of_rebuilding(self, instance, tmp_path):
        dataset, candidates = instance
        first = ContextStore(spill_dir=tmp_path)
        first.get(dataset, candidates)
        second = ContextStore(spill_dir=tmp_path)  # simulates a new process
        loaded = second.get(dataset, candidates)
        assert (second.misses, second.disk_hits) == (0, 1)
        labels = np.zeros(dataset.size, dtype=int)
        assert loaded.assigned_cost(labels) == CostContext(dataset, candidates).assigned_cost(labels)
        subsets = np.asarray([[0, 1], [1, 2], [0, 3]])
        assert np.array_equal(
            loaded.unassigned_costs(subsets), CostContext(dataset, candidates).unassigned_costs(subsets)
        )

    def test_memory_hit_wins_over_disk(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        built = store.get(dataset, candidates)
        again = store.get(dataset, candidates)
        assert again is built
        assert (store.hits, store.disk_hits) == (1, 0)

    def test_eviction_then_reload_comes_from_disk(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(maxsize=1, spill_dir=tmp_path)
        store.get(dataset, candidates)
        store.get(dataset, candidates + 1.0)  # evicts the first entry
        store.get(dataset, candidates)  # disk, not a rebuild
        assert store.misses == 2
        assert store.disk_hits == 1

    def test_corrupt_spill_file_is_ignored_and_rebuilt(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        spill_file = next(tmp_path.glob("*.ctx"))
        spill_file.write_bytes(b"not a pickle")
        fresh = ContextStore(spill_dir=tmp_path)
        context = fresh.get(dataset, candidates)
        assert (fresh.misses, fresh.disk_hits) == (1, 0)
        assert isinstance(context, CostContext)
        # the rebuild overwrote the corrupt file with a loadable one
        reread = ContextStore(spill_dir=tmp_path)
        reread.get(dataset, candidates)
        assert reread.disk_hits == 1

    def test_changed_candidates_never_alias_on_disk(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        other = ContextStore(spill_dir=tmp_path)
        other.get(dataset, candidates + 0.5)
        assert (other.misses, other.disk_hits) == (1, 0)
        assert len(list(tmp_path.glob("*.ctx"))) == 2


class TestSpillBounds:
    """The spill directory is bounded by size and age (ROADMAP follow-up)."""

    def test_size_bound_evicts_oldest_first(self, instance, tmp_path):
        import os
        import time

        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        first = next(tmp_path.glob("*.ctx"))
        one_file_bytes = first.stat().st_size
        # Backdate the first file so mtime ordering is unambiguous, then
        # write more contexts through a size-bounded store.
        backdated = time.time() - 3600
        os.utime(first, (backdated, backdated))
        bounded = ContextStore(spill_dir=tmp_path, spill_max_bytes=2 * one_file_bytes + 64)
        bounded.get(dataset, candidates + 1.0)
        bounded.get(dataset, candidates + 2.0)
        remaining = set(tmp_path.glob("*.ctx"))
        assert first not in remaining  # the oldest file went first
        assert bounded.spill_evictions >= 1
        total = sum(path.stat().st_size for path in remaining)
        assert total <= 2 * one_file_bytes + 64

    def test_just_written_file_survives_a_tiny_bound(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path, spill_max_bytes=1)
        store.get(dataset, candidates)
        # The bound is smaller than any context, but the write-through must
        # not evict its own file — the tier would otherwise thrash empty.
        assert len(list(tmp_path.glob("*.ctx"))) == 1
        fresh = ContextStore(spill_dir=tmp_path)
        fresh.get(dataset, candidates)
        assert fresh.disk_hits == 1

    def test_age_bound_evicts_stale_files(self, instance, tmp_path):
        import os
        import time

        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        stale = next(tmp_path.glob("*.ctx"))
        backdated = time.time() - 7200
        os.utime(stale, (backdated, backdated))
        aged = ContextStore(spill_dir=tmp_path, spill_max_age_seconds=3600)
        aged.get(dataset, candidates + 1.0)  # write-through triggers pruning
        assert stale not in set(tmp_path.glob("*.ctx"))
        assert aged.spill_evictions == 1

    def test_env_variables_set_default_bounds(self, instance, monkeypatch, tmp_path):
        monkeypatch.setenv(SPILL_MAX_ENV, "12345")
        monkeypatch.setenv(SPILL_MAX_AGE_ENV, "60.5")
        store = ContextStore(spill_dir=tmp_path)
        assert store.spill_max_bytes == 12345
        assert store.spill_max_age_seconds == 60.5
        monkeypatch.setenv(SPILL_MAX_ENV, "not-a-number")
        monkeypatch.setenv(SPILL_MAX_AGE_ENV, "0")
        tolerant = ContextStore(spill_dir=tmp_path)
        assert tolerant.spill_max_bytes is None  # garbage/zero = unbounded
        assert tolerant.spill_max_age_seconds is None

    def test_unbounded_store_never_prunes(self, instance, tmp_path):
        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        for shift in range(4):
            store.get(dataset, candidates + float(shift))
        assert store.spill_evictions == 0
        assert len(list(tmp_path.glob("*.ctx"))) == 4

    def test_scan_removes_corrupt_and_mismatched_files(self, instance, tmp_path):
        import pickle

        dataset, candidates = instance
        store = ContextStore(spill_dir=tmp_path)
        context = store.get(dataset, candidates)
        (tmp_path / "corrupt.ctx").write_bytes(b"not a pickle")
        (tmp_path / "stale.ctx").write_bytes(
            pickle.dumps(("repro-context", -1, context))  # version mismatch
        )
        (tmp_path / "wrong-tag.ctx").write_bytes(pickle.dumps(("other", 1, context)))
        report = store.scan_spill_dir()
        assert report == {"kept": 1, "removed": 3}
        survivors = list(tmp_path.glob("*.ctx"))
        assert len(survivors) == 1
        # the survivor still loads through the read path
        fresh = ContextStore(spill_dir=tmp_path)
        fresh.get(dataset, candidates)
        assert fresh.disk_hits == 1
