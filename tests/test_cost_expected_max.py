"""Tests for the exact E[max] engine — the library's central computation.

The engine is validated three ways: against hand-computed micro cases,
against full realization enumeration on random instances (exact equality up
to floating point), and against Monte-Carlo estimates (statistical
agreement), plus hypothesis property tests on its mathematical invariants.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cost import enumerate_expected_max, expected_max_of_independent
from repro.cost.expected import _expected_max_reference
from repro.exceptions import ValidationError


def brute_force_expected_max(values_list, probabilities_list):
    """Reference implementation: enumerate the full product space."""
    from itertools import product

    total = 0.0
    for combo in product(*[range(len(v)) for v in values_list]):
        probability = 1.0
        maximum = -np.inf
        for variable, choice in enumerate(combo):
            probability *= probabilities_list[variable][choice]
            maximum = max(maximum, values_list[variable][choice])
        total += probability * maximum
    return total


class TestHandComputedCases:
    def test_single_variable_is_plain_expectation(self):
        values = [np.array([1.0, 3.0])]
        probabilities = [np.array([0.5, 0.5])]
        assert expected_max_of_independent(values, probabilities) == pytest.approx(2.0)

    def test_two_fair_coins(self):
        # max of two independent {0, 1} fair coins: P(max=1) = 3/4.
        values = [np.array([0.0, 1.0])] * 2
        probabilities = [np.array([0.5, 0.5])] * 2
        assert expected_max_of_independent(values, probabilities) == pytest.approx(0.75)

    def test_degenerate_variables(self):
        values = [np.array([2.0]), np.array([5.0]), np.array([1.0])]
        probabilities = [np.array([1.0])] * 3
        assert expected_max_of_independent(values, probabilities) == pytest.approx(5.0)

    def test_duplicate_values_within_variable(self):
        values = [np.array([1.0, 1.0, 4.0])]
        probabilities = [np.array([0.25, 0.25, 0.5])]
        assert expected_max_of_independent(values, probabilities) == pytest.approx(0.5 * 1.0 + 0.5 * 4.0)

    def test_three_variables_manual(self):
        values = [np.array([0.0, 2.0]), np.array([1.0]), np.array([0.5, 3.0])]
        probabilities = [np.array([0.3, 0.7]), np.array([1.0]), np.array([0.9, 0.1])]
        expected = brute_force_expected_max(values, probabilities)
        assert expected_max_of_independent(values, probabilities) == pytest.approx(expected)

    def test_zero_probability_location_ignored(self):
        values = [np.array([1.0, 100.0])]
        probabilities = [np.array([1.0, 0.0])]
        assert expected_max_of_independent(values, probabilities) == pytest.approx(1.0)


class TestZeroProbabilityRegression:
    """A zero-probability entry at a variable's smallest value must not count
    toward that variable's CDF becoming positive (historical silent-wrong-answer
    bug: this instance returned 2.0)."""

    def test_zero_mass_smallest_entry(self):
        values = [[1.0, 5.0], [2.0]]
        probabilities = [[0.0, 1.0], [1.0]]
        assert expected_max_of_independent(values, probabilities) == pytest.approx(5.0)
        assert _expected_max_reference(values, probabilities) == pytest.approx(5.0)
        assert enumerate_expected_max(values, probabilities) == pytest.approx(5.0)

    def test_zero_mass_prefix_multiple_entries(self):
        values = [[0.5, 1.0, 7.0], [2.0, 3.0]]
        probabilities = [[0.0, 0.0, 1.0], [0.4, 0.6]]
        expected = enumerate_expected_max(values, probabilities)
        assert expected == pytest.approx(7.0)
        assert expected_max_of_independent(values, probabilities) == pytest.approx(expected)

    def test_zero_mass_entry_between_positive_entries(self):
        values = [[1.0, 4.0, 9.0], [2.0]]
        probabilities = [[0.5, 0.0, 0.5], [1.0]]
        expected = enumerate_expected_max(values, probabilities)
        assert expected_max_of_independent(values, probabilities) == pytest.approx(expected)
        assert _expected_max_reference(values, probabilities) == pytest.approx(expected)

    def test_all_variables_lead_with_zero_mass(self):
        values = [[0.0, 3.0], [0.0, 2.0]]
        probabilities = [[0.0, 1.0], [0.0, 1.0]]
        assert expected_max_of_independent(values, probabilities) == pytest.approx(3.0)


def _random_instance_with_zeros(rng):
    """Random ragged instance with explicit zeros and repeated values."""
    n = int(rng.integers(1, 6))
    values = []
    probabilities = []
    for _ in range(n):
        z = int(rng.integers(1, 5))
        support = rng.uniform(0, 10, size=z)
        if z > 1 and rng.random() < 0.5:
            support[int(rng.integers(1, z))] = support[0]  # repeated value
        weight = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.6:
            weight[int(rng.integers(0, z))] = 0.0  # explicit zero mass
            weight = weight / weight.sum()
        order = rng.permutation(z)
        values.append(support[order])
        probabilities.append(weight[order])
    return values, probabilities


class TestDifferentialKernelVsReferenceVsEnumeration:
    @pytest.mark.parametrize("seed", range(25))
    def test_three_way_agreement(self, seed):
        rng = np.random.default_rng(seed)
        values, probabilities = _random_instance_with_zeros(rng)
        vectorized = expected_max_of_independent(values, probabilities)
        reference = _expected_max_reference(values, probabilities)
        enumerated = enumerate_expected_max(values, probabilities)
        assert vectorized == pytest.approx(enumerated, rel=1e-9, abs=1e-9)
        assert vectorized == pytest.approx(reference, rel=1e-9, abs=1e-9)


class TestValidation:
    def test_empty_variables_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_of_independent([], [])

    def test_mismatched_lists_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_of_independent([np.array([1.0])], [])

    def test_misaligned_support_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_of_independent([np.array([1.0, 2.0])], [np.array([1.0])])

    def test_empty_support_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_of_independent([np.array([])], [np.array([])])


class TestAgainstEnumeration:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 6))
        values = []
        probabilities = []
        for _ in range(n):
            z = int(rng.integers(1, 5))
            values.append(rng.uniform(0, 10, size=z))
            probabilities.append(rng.dirichlet(np.ones(z)))
        fast = expected_max_of_independent(values, probabilities)
        slow = brute_force_expected_max(values, probabilities)
        assert fast == pytest.approx(slow, rel=1e-10, abs=1e-12)

    def test_many_variables_stability(self):
        # 200 variables: exercises the log-space product maintenance.
        rng = np.random.default_rng(42)
        values = [rng.uniform(0, 1, size=3) for _ in range(200)]
        probabilities = [rng.dirichlet(np.ones(3)) for _ in range(200)]
        result = expected_max_of_independent(values, probabilities)
        maxima = np.array([v.max() for v in values])
        assert maxima.max() * 0.5 <= result <= maxima.max() + 1e-9


@st.composite
def _instance(draw):
    """Random small collection of independent discrete distance variables."""
    n = draw(st.integers(min_value=1, max_value=4))
    values = []
    probabilities = []
    for _ in range(n):
        z = draw(st.integers(min_value=1, max_value=4))
        values.append(
            np.array(
                draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                        min_size=z,
                        max_size=z,
                    )
                )
            )
        )
        raw = np.array(
            draw(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=z, max_size=z))
        )
        probabilities.append(raw / raw.sum())
    return values, probabilities


class TestProperties:
    @given(_instance())
    @settings(max_examples=60, deadline=None)
    def test_matches_enumeration(self, data):
        values, probabilities = data
        fast = expected_max_of_independent(values, probabilities)
        slow = brute_force_expected_max(values, probabilities)
        assert fast == pytest.approx(slow, rel=1e-9, abs=1e-10)

    @given(_instance())
    @settings(max_examples=60, deadline=None)
    def test_bounded_by_min_and_max_of_supports(self, data):
        values, probabilities = data
        result = expected_max_of_independent(values, probabilities)
        largest_min = max(v.min() for v in values)
        overall_max = max(v.max() for v in values)
        assert largest_min - 1e-9 <= result <= overall_max + 1e-9

    @given(_instance())
    @settings(max_examples=40, deadline=None)
    def test_at_least_expectation_of_each_variable(self, data):
        # E[max_i V_i] >= E[V_j] for every j (monotonicity of max).
        values, probabilities = data
        result = expected_max_of_independent(values, probabilities)
        for value, probability in zip(values, probabilities):
            assert result >= float((value * probability).sum()) - 1e-9

    @given(_instance(), st.floats(min_value=0.1, max_value=5.0))
    @settings(max_examples=40, deadline=None)
    def test_positive_homogeneity(self, data, scale):
        values, probabilities = data
        base = expected_max_of_independent(values, probabilities)
        scaled = expected_max_of_independent([v * scale for v in values], probabilities)
        assert scaled == pytest.approx(scale * base, rel=1e-9, abs=1e-9)

    @given(_instance())
    @settings(max_examples=40, deadline=None)
    def test_adding_a_variable_never_decreases(self, data):
        values, probabilities = data
        base = expected_max_of_independent(values, probabilities)
        extended = expected_max_of_independent(values + [np.array([0.0])], probabilities + [np.array([1.0])])
        assert extended == pytest.approx(base, rel=1e-9, abs=1e-9)
        larger = expected_max_of_independent(
            values + [np.array([1e3])], probabilities + [np.array([1.0])]
        )
        assert larger >= base - 1e-9
