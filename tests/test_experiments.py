"""Tests for the experiment harness (records, report rendering, runners)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments import (
    AblationSettings,
    ExperimentRecord,
    ExperimentRow,
    ScalingSettings,
    Table1Settings,
    fit_exponent,
    format_table,
    render_record,
    render_records,
    run_assignment_ablation,
    run_e1_one_center,
    run_e8_one_dimensional,
    run_e9_general_metric,
    run_e10_baseline_comparison,
    run_representative_ablation,
)


@pytest.fixture(scope="module")
def tiny_settings() -> Table1Settings:
    return Table1Settings(trials=1, n_small=4, n_medium=12, z=2, k=2)


class TestRecords:
    def test_worst_and_best(self):
        record = ExperimentRecord(
            experiment_id="X",
            paper_artifact="none",
            paper_claim="none",
            rows=(
                ExperimentRow(configuration="a", measured={"ratio": 1.5}),
                ExperimentRow(configuration="b", measured={"ratio": 1.2}),
            ),
        )
        assert record.worst("ratio") == pytest.approx(1.5)
        assert record.best("ratio") == pytest.approx(1.2)

    def test_missing_key_gives_nan(self):
        record = ExperimentRecord(experiment_id="X", paper_artifact="none", paper_claim="none")
        assert np.isnan(record.worst("ratio"))


class TestReportRendering:
    def test_format_table_alignment(self):
        text = format_table(["name", "value"], [["a", 1.0], ["longer-name", 123.456]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[2:])
        assert "longer-name" in text

    def test_render_record_contains_claim_and_summary(self):
        record = ExperimentRecord(
            experiment_id="E0",
            paper_artifact="Table 1 row 0",
            paper_claim="factor 2",
            rows=(ExperimentRow(configuration="cfg", measured={"ratio": 1.25}),),
            summary={"worst_ratio": 1.25},
        )
        text = render_record(record)
        assert "E0" in text and "factor 2" in text and "worst_ratio" in text

    def test_render_records_joins(self):
        record = ExperimentRecord(experiment_id="E0", paper_artifact="a", paper_claim="b")
        assert render_records([record, record]).count("E0") == 2


class TestRunners:
    def test_e1_within_bound(self, tiny_settings):
        record = run_e1_one_center(tiny_settings)
        assert record.summary["within_bound"]
        assert record.experiment_id == "E1"
        assert len(record.rows) > 0

    def test_e8_within_bound(self, tiny_settings):
        record = run_e8_one_dimensional(tiny_settings)
        assert record.summary["within_bound"]

    def test_e9_within_bound(self, tiny_settings):
        record = run_e9_general_metric(tiny_settings)
        assert record.summary["within_bound"]

    def test_e10_reports_win_fraction(self, tiny_settings):
        record = run_e10_baseline_comparison(tiny_settings)
        assert 0.0 <= record.summary["win_fraction"] <= 1.0

    def test_quick_settings_factory(self):
        assert Table1Settings.quick().trials <= Table1Settings().trials
        assert ScalingSettings.quick().repeats <= ScalingSettings().repeats
        assert AblationSettings.quick().n <= AblationSettings().n


class TestScalingFit:
    def test_fit_exponent_linear(self):
        sizes = [100, 200, 400, 800]
        times = [0.01 * s for s in sizes]
        assert fit_exponent(sizes, times) == pytest.approx(1.0, abs=0.01)

    def test_fit_exponent_quadratic(self):
        sizes = [10, 20, 40, 80]
        times = [1e-6 * s**2 for s in sizes]
        assert fit_exponent(sizes, times) == pytest.approx(2.0, abs=0.01)

    def test_fit_exponent_constant(self):
        assert fit_exponent([1, 2, 4], [0.5, 0.5, 0.5]) == pytest.approx(0.0, abs=0.01)


class TestAblations:
    def test_representative_ablation_structure(self):
        record = run_representative_ablation(AblationSettings(trials=1, n=10, z=3, k=2))
        assert record.experiment_id == "E12a"
        assert set(record.summary) == {
            "mean_cost_expected_point",
            "mean_cost_one_center",
            "mean_cost_medoid",
        }
        assert all(value > 0 for value in record.summary.values())

    def test_assignment_ablation_structure(self):
        record = run_assignment_ablation(AblationSettings(trials=1, n=10, z=3, k=2))
        assert record.experiment_id == "E12b"
        assert all(value > 0 for value in record.summary.values())
