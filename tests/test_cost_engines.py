"""Cross-validation of the three expected-cost engines and the cost wrappers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignments import ExpectedDistanceAssignment
from repro.cost import (
    distance_supports_for_assignment,
    distance_supports_for_centers,
    enumerate_expected_cost_assigned,
    enumerate_expected_cost_unassigned,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_distance,
    expected_distance_matrix,
    expected_one_center_cost,
    monte_carlo_cost_assigned,
    monte_carlo_cost_unassigned,
)
from repro.exceptions import ValidationError
from tests.conftest import make_graph_dataset, make_uncertain_dataset


@pytest.fixture
def small_instance():
    dataset = make_uncertain_dataset(n=5, z=3, dimension=2, seed=7)
    rng = np.random.default_rng(3)
    centers = rng.normal(scale=4.0, size=(2, 2))
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    return dataset, centers, assignment


class TestExactVsEnumeration:
    def test_unassigned_agreement(self, small_instance):
        dataset, centers, _ = small_instance
        exact = expected_cost_unassigned(dataset, centers)
        enumerated = enumerate_expected_cost_unassigned(dataset, centers)
        assert exact == pytest.approx(enumerated, rel=1e-10)

    def test_assigned_agreement(self, small_instance):
        dataset, centers, assignment = small_instance
        exact = expected_cost_assigned(dataset, centers, assignment)
        enumerated = enumerate_expected_cost_assigned(dataset, centers, assignment)
        assert exact == pytest.approx(enumerated, rel=1e-10)

    def test_agreement_on_graph_metric(self):
        dataset = make_graph_dataset(n=4, z=2, nodes=12, seed=1)
        centers = dataset.metric.all_elements()[:2]
        assignment = ExpectedDistanceAssignment()(dataset, centers)
        exact = expected_cost_assigned(dataset, centers, assignment)
        enumerated = enumerate_expected_cost_assigned(dataset, centers, assignment)
        assert exact == pytest.approx(enumerated, rel=1e-10)
        exact_u = expected_cost_unassigned(dataset, centers)
        enumerated_u = enumerate_expected_cost_unassigned(dataset, centers)
        assert exact_u == pytest.approx(enumerated_u, rel=1e-10)

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement_random_instances(self, seed):
        dataset = make_uncertain_dataset(n=4, z=3, dimension=2, seed=seed)
        rng = np.random.default_rng(seed + 100)
        centers = rng.normal(scale=5.0, size=(3, 2))
        assignment = rng.integers(0, 3, size=4)
        exact = expected_cost_assigned(dataset, centers, assignment)
        enumerated = enumerate_expected_cost_assigned(dataset, centers, assignment)
        assert exact == pytest.approx(enumerated, rel=1e-10)


class TestMonteCarlo:
    def test_unassigned_statistical_agreement(self, small_instance):
        dataset, centers, _ = small_instance
        exact = expected_cost_unassigned(dataset, centers)
        estimate = monte_carlo_cost_unassigned(dataset, centers, samples=40_000, rng=0)
        assert estimate.within(exact, sigmas=5.0)

    def test_assigned_statistical_agreement(self, small_instance):
        dataset, centers, assignment = small_instance
        exact = expected_cost_assigned(dataset, centers, assignment)
        estimate = monte_carlo_cost_assigned(dataset, centers, assignment, samples=40_000, rng=1)
        assert estimate.within(exact, sigmas=5.0)

    def test_confidence_interval_contains_value(self, small_instance):
        dataset, centers, _ = small_instance
        estimate = monte_carlo_cost_unassigned(dataset, centers, samples=5_000, rng=2)
        low, high = estimate.confidence_interval
        assert low <= estimate.value <= high

    def test_confidence_interval_clamped_at_zero(self):
        from repro.cost import MonteCarloEstimate

        # A noisy estimate near zero must not report a negative lower bound:
        # the cost objectives are expectations of distances.
        estimate = MonteCarloEstimate(value=0.01, standard_error=0.5, samples=10)
        low, high = estimate.confidence_interval
        assert low == 0.0
        assert high == pytest.approx(0.01 + 1.96 * 0.5)

    def test_assignment_length_validated(self, small_instance):
        dataset, centers, _ = small_instance
        with pytest.raises(ValidationError):
            monte_carlo_cost_assigned(dataset, centers, np.array([0]), samples=10)

    def test_seed_reproducibility(self, small_instance):
        dataset, centers, _ = small_instance
        a = monte_carlo_cost_unassigned(dataset, centers, samples=1000, rng=7)
        b = monte_carlo_cost_unassigned(dataset, centers, samples=1000, rng=7)
        assert a.value == pytest.approx(b.value)


class TestCostStructure:
    def test_unassigned_leq_assigned(self, small_instance):
        # Assigning every realization of a point to one fixed center can only
        # increase the expected max compared to always using the nearest center.
        dataset, centers, assignment = small_instance
        assert expected_cost_unassigned(dataset, centers) <= expected_cost_assigned(
            dataset, centers, assignment
        ) + 1e-12

    def test_more_centers_never_hurt_unassigned(self, small_instance):
        dataset, centers, _ = small_instance
        extended = np.vstack([centers, np.array([[50.0, 50.0]])])
        assert expected_cost_unassigned(dataset, extended) <= expected_cost_unassigned(dataset, centers) + 1e-12

    def test_certain_dataset_reduces_to_deterministic_cost(self, certain_dataset):
        centers = certain_dataset.all_locations()[:2]
        assignment = ExpectedDistanceAssignment()(certain_dataset, centers)
        exact = expected_cost_assigned(certain_dataset, centers, assignment)
        # For certain points the expected max equals the deterministic max of
        # the assigned distances.
        metric = certain_dataset.metric
        manual = max(
            metric.distance(point.locations[0], centers[assignment[index]])
            for index, point in enumerate(certain_dataset)
        )
        assert exact == pytest.approx(manual)

    def test_expected_one_center_cost_matches_unassigned(self, small_instance):
        dataset, centers, _ = small_instance
        single = centers[0]
        assert expected_one_center_cost(dataset, single) == pytest.approx(
            expected_cost_unassigned(dataset, single.reshape(1, -1))
        )

    def test_supports_shapes(self, small_instance):
        dataset, centers, assignment = small_instance
        values, probabilities = distance_supports_for_assignment(dataset, centers, assignment)
        assert len(values) == dataset.size
        for point, value, probability in zip(dataset, values, probabilities):
            assert value.shape == (point.support_size,)
            assert probability.shape == (point.support_size,)
        values_u, _ = distance_supports_for_centers(dataset, centers)
        for point, value in zip(dataset, values_u):
            assert value.shape == (point.support_size,)

    def test_assignment_validation(self, small_instance):
        dataset, centers, _ = small_instance
        with pytest.raises(ValidationError):
            expected_cost_assigned(dataset, centers, np.array([0, 1]))
        with pytest.raises(ValidationError):
            expected_cost_assigned(dataset, centers, np.array([0, 1, 5, 0, 1]))

    def test_expected_distance_wrappers(self, small_instance):
        dataset, centers, _ = small_instance
        value = expected_distance(dataset, 0, centers[0])
        manual = dataset[0].expected_distance_to(centers[0], dataset.metric)
        assert value == pytest.approx(manual)
        matrix = expected_distance_matrix(dataset, centers)
        assert matrix.shape == (dataset.size, 2)
        assert matrix[0, 0] == pytest.approx(manual)
        with pytest.raises(ValidationError):
            expected_distance(dataset, 99, centers[0])
