"""Unit tests for the exact solvers, the epsilon refinement and 1-D k-center."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.deterministic import (
    epsilon_kcenter,
    exact_discrete_kcenter,
    exact_euclidean_kcenter,
    exact_kcenter_by_center_subsets,
    gonzalez_kcenter,
    intervals_needed,
    one_dimensional_kcenter,
    refine_centers_by_seb,
)
from repro.deterministic.exact import MAX_EXACT_PARTITION_POINTS
from repro.exceptions import ValidationError
from repro.metrics import EuclideanMetric, MatrixMetric

coords = st.floats(min_value=-20.0, max_value=20.0, allow_nan=False, allow_infinity=False)


class TestExactSolvers:
    def test_exact_euclidean_trivial(self):
        points = np.array([[0.0, 0.0], [2.0, 0.0]])
        result = exact_euclidean_kcenter(points, 1)
        assert result.radius == pytest.approx(1.0, abs=1e-9)

    def test_exact_euclidean_two_clusters(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        result = exact_euclidean_kcenter(points, 2)
        assert result.radius == pytest.approx(0.5, abs=1e-9)

    def test_exact_euclidean_rejects_large_instance(self, rng):
        points = rng.normal(size=(MAX_EXACT_PARTITION_POINTS + 1, 2))
        with pytest.raises(ValidationError):
            exact_euclidean_kcenter(points, 2)

    def test_exact_discrete_matches_subset_bruteforce(self, rng):
        points = rng.normal(size=(12, 2))
        a = exact_discrete_kcenter(points, 3)
        b = exact_kcenter_by_center_subsets(points, 3)
        assert a.radius == pytest.approx(b.radius, rel=1e-9)

    def test_exact_discrete_not_worse_than_gonzalez(self, rng):
        points = rng.normal(size=(25, 2))
        exact = exact_discrete_kcenter(points, 3)
        greedy = gonzalez_kcenter(points, 3)
        assert exact.radius <= greedy.radius + 1e-9

    def test_exact_discrete_on_finite_metric(self):
        matrix = np.array(
            [
                [0.0, 1.0, 4.0, 5.0],
                [1.0, 0.0, 3.0, 4.0],
                [4.0, 3.0, 0.0, 1.0],
                [5.0, 4.0, 1.0, 0.0],
            ]
        )
        metric = MatrixMetric(matrix)
        result = exact_discrete_kcenter(metric.all_elements(), 2, metric)
        assert result.radius == pytest.approx(1.0)

    def test_exact_discrete_custom_candidates(self, rng):
        points = rng.normal(size=(8, 2))
        candidates = np.vstack([points, points.mean(axis=0, keepdims=True)])
        result = exact_discrete_kcenter(points, 1, candidates=candidates)
        baseline = exact_discrete_kcenter(points, 1)
        assert result.radius <= baseline.radius + 1e-12

    def test_subset_bruteforce_cap(self, rng):
        points = rng.normal(size=(40, 2))
        with pytest.raises(ValidationError):
            exact_kcenter_by_center_subsets(points, 10, max_combinations=10)

    def test_continuous_beats_discrete(self, rng):
        points = rng.normal(size=(9, 2))
        continuous = exact_euclidean_kcenter(points, 2)
        discrete = exact_discrete_kcenter(points, 2)
        assert continuous.radius <= discrete.radius + 1e-9

    @given(arrays(np.float64, (7, 2), elements=coords), st.integers(min_value=1, max_value=3))
    @settings(max_examples=25, deadline=None)
    def test_property_exact_is_lower_bound_for_heuristics(self, points, k):
        optimum = exact_euclidean_kcenter(points, k)
        greedy = gonzalez_kcenter(points, k)
        refined = epsilon_kcenter(points, k, 0.1)
        assert optimum.radius <= greedy.radius + 1e-7
        assert optimum.radius <= refined.radius + 1e-7


class TestEpsilonKCenter:
    def test_never_worse_than_gonzalez(self, rng):
        points = rng.normal(size=(60, 2))
        refined = epsilon_kcenter(points, 4, 0.1, seed=1)
        greedy = gonzalez_kcenter(points, 4, first_index=None, seed=1)
        assert refined.radius <= greedy.radius + 1e-9

    def test_certified_factor_range(self, rng):
        points = rng.normal(size=(50, 3))
        result = epsilon_kcenter(points, 3)
        assert 1.0 <= result.approximation_factor <= 2.0

    def test_reports_lower_bound(self, rng):
        points = rng.normal(size=(30, 2))
        result = epsilon_kcenter(points, 3)
        assert result.metadata["lower_bound"] <= result.radius + 1e-12

    def test_well_separated_clusters_near_optimal(self):
        rng = np.random.default_rng(1)
        clusters = [np.zeros(2), np.array([50.0, 0.0]), np.array([0.0, 50.0])]
        points = np.vstack([c + rng.normal(scale=1.0, size=(15, 2)) for c in clusters])
        result = epsilon_kcenter(points, 3, 0.05)
        optimum_estimate = max(
            np.linalg.norm(points[i * 15 : (i + 1) * 15] - c, axis=1).max() for i, c in enumerate(clusters)
        )
        # SEB refinement should land within ~30% of the per-cluster optimum.
        assert result.radius <= 1.3 * optimum_estimate

    def test_grid_search_toggle(self, rng):
        points = rng.normal(size=(25, 2))
        on = epsilon_kcenter(points, 3, 0.1, grid_search=True, seed=0)
        off = epsilon_kcenter(points, 3, 0.1, grid_search=False, seed=0)
        assert on.radius <= off.radius + 1e-9

    def test_refine_centers_by_seb_monotone(self, rng):
        points = rng.normal(size=(40, 2))
        seed_result = gonzalez_kcenter(points, 3)
        _, refined_radius = refine_centers_by_seb(points, seed_result.centers)
        assert refined_radius <= seed_result.radius + 1e-12

    def test_k_one_matches_seb(self, rng):
        points = rng.normal(size=(30, 2))
        result = epsilon_kcenter(points, 1, 0.01)
        from repro.geometry import smallest_enclosing_ball

        assert result.radius == pytest.approx(smallest_enclosing_ball(points).radius, rel=1e-6)

    def test_invalid_epsilon(self, rng):
        with pytest.raises(ValidationError):
            epsilon_kcenter(rng.normal(size=(10, 2)), 2, -0.5)


class TestOneDimensional:
    def test_intervals_needed(self):
        values = np.array([0.0, 1.0, 2.0, 10.0, 11.0])
        assert intervals_needed(values, 1.0) == 2
        assert intervals_needed(values, 0.4) == 5
        assert intervals_needed(values, 0.5) == 3
        assert intervals_needed(values, 10.0) == 1

    def test_simple_two_cluster_instance(self):
        points = np.array([[0.0], [1.0], [10.0], [11.0]])
        result = one_dimensional_kcenter(points, 2)
        assert result.radius == pytest.approx(0.5, abs=1e-9)

    def test_single_center(self):
        points = np.array([[0.0], [4.0]])
        result = one_dimensional_kcenter(points, 1)
        assert result.radius == pytest.approx(2.0, abs=1e-9)
        assert result.centers[0, 0] == pytest.approx(2.0, abs=1e-6)

    def test_k_at_least_n(self):
        points = np.array([[0.0], [5.0], [9.0]])
        result = one_dimensional_kcenter(points, 5)
        assert result.radius == pytest.approx(0.0, abs=1e-12)

    def test_rejects_multidimensional(self, rng):
        with pytest.raises(ValueError):
            one_dimensional_kcenter(rng.normal(size=(5, 2)), 2)

    def test_matches_exact_partition_solver(self, rng):
        points = rng.normal(size=(9, 1)) * 10
        fast = one_dimensional_kcenter(points, 3)
        slow = exact_euclidean_kcenter(points, 3)
        assert fast.radius == pytest.approx(slow.radius, abs=1e-6)

    @given(arrays(np.float64, (10, 1), elements=coords), st.integers(min_value=1, max_value=4))
    @settings(max_examples=40, deadline=None)
    def test_property_matches_discrete_lower_bound(self, points, k):
        result = one_dimensional_kcenter(points, k)
        # Optimal radius can never exceed half the range and never be negative.
        span = points.max() - points.min()
        assert -1e-12 <= result.radius <= span / 2.0 + 1e-9

    @given(arrays(np.float64, (8, 1), elements=coords))
    @settings(max_examples=30, deadline=None)
    def test_property_monotone_in_k(self, points):
        radii = [one_dimensional_kcenter(points, k).radius for k in (1, 2, 3, 5)]
        for previous, current in zip(radii, radii[1:]):
            assert current <= previous + 1e-9
