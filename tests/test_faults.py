"""Tier-1 tests for the fault-injection harness and the crash-tolerant runtime.

PR 8's contract, pinned here end to end:

* :mod:`repro.faults` — spec parsing is strict (unknown kinds/keys raise),
  draws are stateless and seed-deterministic, and everything is inert when
  disarmed;
* chunk-granular crash recovery — a worker killed mid-map loses only its
  in-flight chunks: completed chunks are **reused, never recomputed**
  (audited by counting actual task executions on disk), results stay
  bit-identical, and the health counters satisfy
  ``chunks_submitted == chunks_completed + retries``;
* the degraded serial path — a map that exhausts its rebuild budget
  completes serially with bit-identical results, including under the
  determinism sanitizer (``REPRO_SANITIZE=det``);
* deadlines — ``time_budget`` turns the brute-force references into anytime
  solvers returning a feasible incumbent plus a valid ``(cost, lower_bound,
  gap)`` certificate;
* transport fallback — injected shared-memory attach failures degrade to
  the pickled transport with identical results;
* spill corruption — checksum-verified reads delete and rebuild corrupt
  spill files instead of raising mid-solve;
* teardown — ``shutdown()`` tolerates workers the OS already reaped.
"""

from __future__ import annotations

import os
import pickle
import signal
import uuid
from collections import Counter
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.baselines.brute_force import brute_force_restricted_assigned, brute_force_unassigned
from repro.runtime import parallel_map, set_oversubscribe, shutdown_runtime
from repro.runtime import health
from repro.runtime import pool as pool_module
from repro.runtime.store import ContextStore
from repro.sanitize import enabled_names as sanitize_enabled_names
from repro.sanitize import set_enabled as sanitize_set_enabled
from repro.workloads import gaussian_clusters


@pytest.fixture(autouse=True)
def _real_pools_and_clean_faults():
    """Real pools on 1-CPU boxes; restore the ambient fault/sanitizer config.

    Restoring (rather than clearing) the armed spec keeps these tests honest
    inside the chaos CI job, where ``REPRO_FAULTS`` is armed process-wide.
    """
    previous_faults = faults.enabled_spec()
    previous_sanitizers = sanitize_enabled_names()
    previous_oversubscribe = set_oversubscribe(True)
    yield
    set_oversubscribe(previous_oversubscribe)
    faults.set_enabled(previous_faults or None)
    sanitize_set_enabled(previous_sanitizers)
    shutdown_runtime()


def _micro_instance(n: int = 10, m: int = 12, k: int = 3, seed: int = 4):
    dataset, _ = gaussian_clusters(n=n, z=6, dimension=2, k_true=k, seed=seed)
    return dataset, dataset.all_locations()[:m]


class TestSpecParsing:
    def test_full_spec_round_trips(self):
        specs = faults.parse_spec("crash:p=0.05,slow:p=0.1:ms=200,shm_attach,spill_corrupt,serve_reject:p=0.2")
        assert [spec.kind for spec in specs] == list(faults.FAULT_KINDS)
        crash, slow, attach, corrupt, reject = specs
        assert crash.probability == 0.05
        assert slow.probability == 0.1 and slow.delay_ms == 200
        assert attach.probability == 1.0 and corrupt.probability == 1.0
        assert reject.probability == 0.2
        faults.set_enabled(specs)
        assert faults.parse_spec(faults.enabled_spec()) == specs

    def test_empty_and_none_mean_disarmed(self):
        assert faults.parse_spec(None) == ()
        assert faults.parse_spec("") == ()
        faults.set_enabled(None)
        assert faults.enabled_spec() == ""
        assert faults.inject("crash", "anywhere") is False

    def test_unknown_kind_is_a_hard_error(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.parse_spec("crsh:p=0.1")

    def test_unknown_parameter_is_a_hard_error(self):
        with pytest.raises(ValueError, match="unknown fault parameter"):
            faults.parse_spec("crash:rate=0.1")

    def test_malformed_parameter_is_a_hard_error(self):
        with pytest.raises(ValueError, match="malformed fault parameter"):
            faults.parse_spec("crash:p")

    def test_probability_out_of_range_is_a_hard_error(self):
        with pytest.raises(ValueError, match="within"):
            faults.parse_spec("crash:p=1.5")

    def test_env_registry_declares_the_variable(self):
        from repro._env import REGISTRY

        assert "REPRO_FAULTS" in REGISTRY


class TestDeterministicDraws:
    def test_draws_are_pure_functions_of_kind_seed_site_token(self):
        spec = faults.FaultSpec("crash", probability=0.3, seed=7)
        pattern = [faults._fires(spec, "pool.dispatch", (i, 0)) for i in range(64)]
        assert pattern == [faults._fires(spec, "pool.dispatch", (i, 0)) for i in range(64)]
        assert any(pattern) and not all(pattern)

    def test_seed_changes_the_pattern(self):
        base = faults.FaultSpec("crash", probability=0.3, seed=0)
        other = faults.FaultSpec("crash", probability=0.3, seed=1)
        tokens = [(i, 0) for i in range(64)]
        assert [faults._fires(base, "s", t) for t in tokens] != [
            faults._fires(other, "s", t) for t in tokens
        ]

    def test_retry_rerolls_via_the_attempt_token(self):
        spec = faults.FaultSpec("crash", probability=0.3, seed=7)
        firing = [i for i in range(64) if faults._fires(spec, "pool.dispatch", (i, 0))]
        assert firing  # at p=0.3 over 64 chunks some fire
        # across attempts the draw is independent, so a firing chunk does
        # not fire on every retry (the property that makes recovery converge)
        assert any(
            not faults._fires(spec, "pool.dispatch", (i, 1)) for i in firing
        )

    def test_probability_extremes_shortcut(self):
        always = faults.FaultSpec("slow", probability=1.0)
        never = faults.FaultSpec("slow", probability=0.0)
        assert faults._fires(always, "s", None) is True
        assert faults._fires(never, "s", None) is False

    def test_inject_semantics_for_non_crash_kinds(self):
        faults.set_enabled("slow:p=1:ms=1,shm_attach,spill_corrupt")
        assert faults.inject("slow", "site") is True
        assert faults.inject("spill_corrupt", "site") is True
        with pytest.raises(faults.FaultInjected):
            faults.inject("shm_attach", "site")


#: The item whose first execution kills its worker (mid-map, so chunks on
#: both sides of it exist) and the marker/record layout on disk.
_KILL_ITEM = 7


def _triple(payload, item):
    return item * 3


def _recording_task(payload, item):
    """Record every execution on disk; kill the worker on _KILL_ITEM once."""
    run_dir = Path(payload)
    marker = run_dir / "killed"
    if item == _KILL_ITEM and not marker.exists():
        marker.write_text("x")
        os.kill(os.getpid(), signal.SIGKILL)
    (run_dir / f"exec-{item}-{uuid.uuid4().hex}").touch()
    return item * 3


class TestCrashRecovery:
    def test_completed_chunks_are_reused_not_recomputed(self, tmp_path):
        """The PR-8 regression test: a mid-map worker kill loses only the
        in-flight chunks.  Execution counts on disk prove completed chunks
        never re-ran (the pre-PR-8 behavior — a full serial rerun — would
        re-execute every already-completed chunk).

        The kill is the test's OWN fault source (a planted SIGKILL), so
        ambient injection is disarmed: under the chaos CI job extra
        injected crashes would legitimately push ``lost_chunks`` past the
        bound this test pins for a single worker death."""
        faults.set_enabled(None)
        shutdown_runtime()
        items = list(range(12))
        before = health.snapshot()
        results = parallel_map(_recording_task, items, payload=str(tmp_path), workers=2)
        delta = health.delta(before)

        assert results == [item * 3 for item in items]
        assert delta.pool_rebuilds >= 1
        assert delta.chunks_submitted == delta.chunks_completed + delta.retries

        executions = Counter(
            int(record.name.split("-")[1]) for record in tmp_path.glob("exec-*")
        )
        assert set(executions) == set(items)  # every chunk ran
        total = sum(executions.values())
        # only chunks that were in flight when the worker died may have run
        # twice; everything harvested before the kill ran exactly once
        assert total <= len(items) + delta.lost_chunks
        assert delta.lost_chunks <= 3

    def test_injected_crashes_preserve_bruteforce_results_bitwise(self):
        dataset, candidates = _micro_instance()
        kwargs = dict(candidates=candidates, chunk_rows=16, prune=False)
        clean = brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs)
        faults.set_enabled("crash:p=0.2:seed=3")
        shutdown_runtime()
        faulted = brute_force_restricted_assigned(dataset, 3, workers=2, **kwargs)
        assert faulted.expected_cost == clean.expected_cost
        assert np.array_equal(faulted.centers, clean.centers)
        assert np.array_equal(faulted.assignment, clean.assignment)

    def test_exhausted_rebuild_budget_degrades_to_serial_under_det_sanitizer(self):
        """Crash probability high enough to exhaust the rebuild budget: the
        map degrades to the serial path and stays bit-identical, with the
        determinism sanitizer armed the whole way."""
        dataset, candidates = _micro_instance()
        kwargs = dict(candidates=candidates, chunk_rows=16, prune=False)
        clean = brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs)
        sanitize_set_enabled(("det",))
        faults.set_enabled("crash:p=0.9:seed=1")
        shutdown_runtime()
        before = health.snapshot()
        faulted = brute_force_restricted_assigned(dataset, 3, workers=2, **kwargs)
        delta = health.delta(before)
        assert delta.serial_fallbacks >= 1  # the budget was actually exhausted
        assert faulted.expected_cost == clean.expected_cost
        assert np.array_equal(faulted.centers, clean.centers)
        assert np.array_equal(faulted.assignment, clean.assignment)

    def test_warm_pool_respawns_on_fault_config_drift(self):
        """Arming faults after the pool is warm must reach the workers —
        worker config ships through initargs, frozen at spawn, so drift
        forces a respawn (the first smoke run of PR 8 silently injected
        nothing without this)."""
        pool = pool_module.executor()
        first = pool.ensure(2)
        faults.set_enabled("slow:p=0:ms=1")  # armed, never fires
        second = pool.ensure(2)
        assert second is not first
        faults.set_enabled(None)
        assert pool.ensure(2) is not second


class TestDeadlines:
    def test_generous_budget_matches_unbudgeted_run_bitwise(self):
        dataset, candidates = _micro_instance()
        kwargs = dict(candidates=candidates, chunk_rows=16, workers=1)
        unbudgeted = brute_force_restricted_assigned(dataset, 3, **kwargs)
        budgeted = brute_force_restricted_assigned(dataset, 3, time_budget=300.0, **kwargs)
        assert budgeted.expected_cost == unbudgeted.expected_cost
        assert np.array_equal(budgeted.centers, unbudgeted.centers)
        metadata = budgeted.metadata
        assert metadata["deadline_hit"] is False
        assert metadata["chunks_completed"] == metadata["chunks_total"]
        certificate = metadata["certificate"]
        assert certificate["gap"] == 0.0
        assert certificate["lower_bound"] == certificate["cost"]

    def test_exhausted_budget_returns_feasible_incumbent_with_certificate(self):
        dataset, candidates = _micro_instance()
        result = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=16, workers=1, time_budget=1e-9
        )
        metadata = result.metadata
        assert metadata["deadline_hit"] is True
        assert metadata["chunks_completed"] < metadata["chunks_total"]
        assert result.centers.shape == (3, 2)
        assert result.assignment.shape == (dataset.size,)
        certificate = metadata["certificate"]
        assert certificate["cost"] == result.expected_cost
        assert certificate["lower_bound"] <= certificate["cost"]
        assert certificate["gap"] >= 0.0
        # the certificate is sound: the true optimum lies above the bound
        exact = brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=16, workers=1
        )
        assert certificate["lower_bound"] <= exact.expected_cost
        assert result.expected_cost >= exact.expected_cost

    def test_unassigned_budget_certificate_is_sound_too(self):
        dataset, candidates = _micro_instance()
        result = brute_force_unassigned(
            dataset, 3, candidates=candidates, chunk_rows=16, workers=1, time_budget=1e-9
        )
        exact = brute_force_unassigned(
            dataset, 3, candidates=candidates, chunk_rows=16, workers=1
        )
        certificate = result.metadata["certificate"]
        assert result.metadata["deadline_hit"] is True
        assert certificate["lower_bound"] <= exact.expected_cost
        assert result.expected_cost >= exact.expected_cost

    def test_slow_faults_truncate_a_parallel_map_to_a_prefix(self):
        faults.set_enabled("slow:p=1:ms=40")
        shutdown_runtime()
        items = list(range(20))
        before = health.snapshot()
        results = parallel_map(_triple, items, payload=0, workers=2, time_budget=0.3)
        delta = health.delta(before)
        assert len(results) < len(items)
        assert results == [item * 3 for item in items[: len(results)]]
        assert delta.deadline_hits >= 1


class TestTransportFallback:
    def test_injected_attach_failures_fall_back_to_pickled_transport(self):
        dataset, candidates = _micro_instance()
        kwargs = dict(candidates=candidates, chunk_rows=16, prune=False)
        clean = brute_force_restricted_assigned(dataset, 3, workers=1, **kwargs)
        faults.set_enabled("shm_attach")
        shutdown_runtime()
        before = health.snapshot()
        faulted = brute_force_restricted_assigned(dataset, 3, workers=2, **kwargs)
        delta = health.delta(before)
        assert faulted.expected_cost == clean.expected_cost
        assert np.array_equal(faulted.centers, clean.centers)
        assert delta.transport_fallbacks >= 1


class TestSpillChecksum:
    def test_injected_spill_corruption_is_deleted_and_rebuilt(self, tmp_path):
        dataset, candidates = _micro_instance(n=8, m=8, k=2)
        faults.set_enabled("spill_corrupt")
        try:
            corrupting = ContextStore(spill_dir=tmp_path)
            corrupting.get(dataset, candidates).evaluator
        finally:
            faults.set_enabled(None)
        assert list(tmp_path.glob("*.ctx"))  # a (corrupt) spill was written

        # the checksum catches the corruption: no disk hit, no raise, rebuild
        fresh = ContextStore(spill_dir=tmp_path)
        context = fresh.get(dataset, candidates)
        assert context is not None
        assert fresh.disk_hits == 0 and fresh.misses == 1

        # the rebuild wrote a *valid* spill: the next process disk-hits it
        third = ContextStore(spill_dir=tmp_path)
        third.get(dataset, candidates)
        assert third.disk_hits == 1 and third.misses == 0

    def test_checksum_mismatch_with_valid_pickle_is_caught(self, tmp_path):
        dataset, candidates = _micro_instance(n=8, m=8, k=2)
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        (spill_file,) = tmp_path.glob("*.ctx")
        tag, version, checksum, blob = pickle.loads(spill_file.read_bytes())
        spill_file.write_bytes(
            pickle.dumps((tag, version, checksum, blob[: len(blob) // 2]))
        )
        fresh = ContextStore(spill_dir=tmp_path)
        context = fresh.get(dataset, candidates)  # must not raise mid-solve
        assert context is not None
        assert fresh.disk_hits == 0 and fresh.misses == 1

    def test_truncated_spill_file_is_tolerated(self, tmp_path):
        dataset, candidates = _micro_instance(n=8, m=8, k=2)
        store = ContextStore(spill_dir=tmp_path)
        store.get(dataset, candidates)
        (spill_file,) = tmp_path.glob("*.ctx")
        spill_file.write_bytes(spill_file.read_bytes()[:16])
        fresh = ContextStore(spill_dir=tmp_path)
        assert fresh.get(dataset, candidates) is not None
        assert fresh.misses == 1


class TestShutdownTolerance:
    def test_shutdown_tolerates_os_reaped_workers(self):
        pool = pool_module.executor()
        parallel_map(_triple, list(range(8)), payload=0, workers=2)  # spawn workers
        executor = pool.ensure(2)
        victims = list(executor._processes.values())
        assert victims
        os.kill(victims[0].pid, signal.SIGKILL)
        victims[0].join(timeout=10)
        pool.shutdown()  # must not raise on the reaped worker

        # and the pool respawns cleanly afterwards
        results = parallel_map(_triple, list(range(8)), payload=0, workers=2)
        assert results == [item * 3 for item in range(8)]
