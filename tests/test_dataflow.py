"""Tier-1 tests for the whole-program dataflow pass (`repro lint` PR 7).

Every interprocedural rule gets one *failing* multi-file fixture tree (the
cross-module bug the intra-module rules of PR 6 cannot see — that is the
point of the pass) and one *passing* tree (the sanctioned idiom, which must
stay silent).  On top of the rules: the project model's import resolution,
the suppression contract applied to dataflow findings, the ``--no-dataflow``
fast mode, and the ``--baseline`` warn-first landing path
(:func:`repro.analysis.apply_baseline`).
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

from repro.analysis import (
    LintReport,
    apply_baseline,
    lint_paths,
    render_json,
    render_rule_table,
)
from repro.analysis.dataflow import (
    DATAFLOW_RULE_CLASSES,
    LockOrderRule,
    NondetFlowRule,
    ShmEscapeRule,
    dataflow_rules,
)
from repro.analysis.dataflow.project import Project
from repro.analysis.core import parse_module
from repro.analysis.rules import RULE_CLASSES
from repro.cli import main


def write_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel_path, source in files.items():
        file = tmp_path / rel_path
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source))
    return tmp_path


def lint_tree(
    tmp_path: Path, files: dict[str, str], rule=None, *, dataflow: bool = True
) -> LintReport:
    write_tree(tmp_path, files)
    rules = None if rule is None else [rule]
    return lint_paths([tmp_path], rules=rules, dataflow=dataflow)


def rule_ids(report: LintReport) -> list[str]:
    return [finding.rule for finding in report.findings]


#: A solver that reaches an unseeded RNG only through a helper module —
#: invisible to the intra-module NONDET rule, the NONDET-FLOW true positive.
NONDET_CHAIN_TREE = {
    "pkg/helpers.py": """
        from numpy.random import default_rng

        def make_rng():
            return default_rng()

        def fresh_values(count):
            return make_rng().normal(size=count)
        """,
    "algorithms/solver.py": """
        from pkg.helpers import fresh_values

        def solve(points):
            return fresh_values(len(points))
        """,
}

#: The same shape with the seed threaded through every hop — must be silent.
NONDET_SEEDED_TREE = {
    "pkg/helpers.py": """
        from numpy.random import default_rng

        def make_rng(seed):
            return default_rng(seed)

        def fresh_values(count, seed):
            return make_rng(seed).normal(size=count)
        """,
    "algorithms/solver.py": """
        from pkg.helpers import fresh_values

        def solve(points, seed):
            return fresh_values(len(points), seed)
        """,
}


class TestNondetFlowRule:
    def test_flags_cross_module_chain_to_unseeded_rng(self, tmp_path):
        report = lint_tree(tmp_path, NONDET_CHAIN_TREE, NondetFlowRule())
        assert rule_ids(report) == ["NONDET-FLOW"]
        finding = report.findings[0]
        assert finding.path.endswith("algorithms/solver.py")
        message = finding.message
        assert "call to 'fresh_values' reaches an unseeded default_rng()" in message
        # The full witness chain, hop by hop, lands in the message.
        assert "pkg/helpers.py:fresh_values" in message
        assert "pkg/helpers.py:make_rng" in message
        assert "default_rng() at line" in message

    def test_seeded_chain_is_silent(self, tmp_path):
        report = lint_tree(tmp_path, NONDET_SEEDED_TREE, NondetFlowRule())
        assert report.findings == []

    def test_direct_default_rng_left_to_intra_module_rule(self, tmp_path):
        # A direct default_rng() call in a solver file belongs to NONDET,
        # not NONDET-FLOW — no double reporting.
        report = lint_tree(
            tmp_path,
            {
                "algorithms/direct.py": """
                from numpy.random import default_rng

                def solve(points):
                    return default_rng().choice(points)
                """
            },
            NondetFlowRule(),
        )
        assert report.findings == []

    def test_flags_dropped_seed_parameter(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "pkg/sampler.py": """
                from numpy.random import default_rng

                def sample(points, seed):
                    values = default_rng()
                    return values.choice(points)
                """
            },
            NondetFlowRule(),
        )
        assert rule_ids(report) == ["NONDET-FLOW"]
        message = report.findings[0].message
        assert "'sample' accepts 'seed' but never reads it" in message
        assert "the caller's seed cannot reach the generator" in message

    def test_forwarded_seed_parameter_is_silent(self, tmp_path):
        report = lint_tree(
            tmp_path,
            {
                "pkg/sampler.py": """
                from numpy.random import default_rng

                def sample(points, seed):
                    values = default_rng(seed)
                    return values.choice(points)
                """
            },
            NondetFlowRule(),
        )
        assert report.findings == []


#: A lease producer plus a caller that leaks on every call — SHM-ESCAPE's
#: true positive is the *call site*, one module away from the constructor.
SHM_LEAK_TREE = {
    "runtime/shmlib.py": """
        class SegmentLease:
            def __init__(self, segment):
                self.name = segment.name

            def close(self):
                pass

        def pack(arrays, allocate):
            segment = allocate(arrays)
            lease = SegmentLease(segment)
            return ({"name": lease.name}, lease)
        """,
    "experiments/user.py": """
        from runtime.shmlib import pack

        def discards(arrays, allocate):
            pack(arrays, allocate)
            return None

        def binds_and_forgets(arrays, allocate):
            payload, lease = pack(arrays, allocate)
            return payload
        """,
}

#: The sanctioned consumption idiom: bind, use, close in a ``finally``.
SHM_CAREFUL_TREE = {
    "runtime/shmlib.py": SHM_LEAK_TREE["runtime/shmlib.py"],
    "experiments/user.py": """
        from runtime.shmlib import pack

        def careful(arrays, allocate, consume):
            payload, lease = pack(arrays, allocate)
            try:
                return consume(payload)
            finally:
                lease.close()
        """,
}


class TestShmEscapeRule:
    def test_flags_discarded_and_forgotten_leases(self, tmp_path):
        report = lint_tree(tmp_path, SHM_LEAK_TREE, ShmEscapeRule())
        assert rule_ids(report) == ["SHM-ESCAPE", "SHM-ESCAPE"]
        discarded, forgotten = report.findings
        assert discarded.path.endswith("experiments/user.py")
        assert "is discarded" in discarded.message
        assert "the segment can never be unlinked" in discarded.message
        assert "bound to 'lease' but 'lease' is never read afterwards" in forgotten.message

    def test_close_in_finally_is_silent(self, tmp_path):
        report = lint_tree(tmp_path, SHM_CAREFUL_TREE, ShmEscapeRule())
        assert report.findings == []

    def test_rereturning_the_lease_moves_ownership(self, tmp_path):
        # Forwarding the lease to *its own* caller is consumption here; the
        # new call site is then checked in turn (and consumes it properly).
        tree = {
            "runtime/shmlib.py": SHM_LEAK_TREE["runtime/shmlib.py"],
            "experiments/user.py": """
                from runtime.shmlib import pack

                def repack(arrays, allocate):
                    payload, lease = pack(arrays, allocate)
                    return payload, lease

                def top(arrays, allocate):
                    payload, lease = repack(arrays, allocate)
                    lease.close()
                    return payload
                """,
        }
        report = lint_tree(tmp_path, tree, ShmEscapeRule())
        assert report.findings == []


#: Two functions taking the same two locks in opposite orders — the
#: deadlock that only manifests under contention, caught statically.
LOCK_CYCLE_TREE = {
    "runtime/locks.py": """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def forward():
            with a_lock:
                with b_lock:
                    pass

        def backward():
            with b_lock:
                with a_lock:
                    pass
        """
}

LOCK_ORDERED_TREE = {
    "runtime/locks.py": """
        import threading

        a_lock = threading.Lock()
        b_lock = threading.Lock()

        def forward():
            with a_lock:
                with b_lock:
                    pass

        def also_forward():
            with a_lock:
                with b_lock:
                    pass
        """
}


class TestLockOrderRule:
    def test_flags_inverted_acquisition_order(self, tmp_path):
        report = lint_tree(tmp_path, LOCK_CYCLE_TREE, LockOrderRule())
        assert rule_ids(report) == ["LOCK-ORDER"]
        message = report.findings[0].message
        assert "lock acquisition-order cycle" in message
        assert "a_lock -> b_lock -> a_lock" in message

    def test_consistent_order_is_silent(self, tmp_path):
        report = lint_tree(tmp_path, LOCK_ORDERED_TREE, LockOrderRule())
        assert report.findings == []

    def test_sees_locks_acquired_through_callees(self, tmp_path):
        # The edge a_lock -> b_lock exists only through a call made while
        # a_lock is held; the inversion is direct.  Still a cycle.
        tree = {
            "runtime/locks.py": """
                import threading

                a_lock = threading.Lock()
                b_lock = threading.Lock()

                def helper():
                    with b_lock:
                        pass

                def outer():
                    with a_lock:
                        helper()

                def inverted():
                    with b_lock:
                        with a_lock:
                            pass
                """
        }
        report = lint_tree(tmp_path, tree, LockOrderRule())
        assert rule_ids(report) == ["LOCK-ORDER"]

    def test_scoped_to_runtime_directory(self, tmp_path):
        tree = {"pkg/locks.py": LOCK_CYCLE_TREE["runtime/locks.py"]}
        report = lint_tree(tmp_path, tree, LockOrderRule())
        assert report.findings == []


class TestProjectModel:
    def test_resolves_imports_aliases_and_methods(self, tmp_path):
        write_tree(
            tmp_path,
            {
                "pkg/__init__.py": "",
                "pkg/impl.py": """
                class Widget:
                    def spin(self):
                        return self.turn()

                    def turn(self):
                        return 1

                def helper():
                    return 2
                """,
                "pkg/front.py": """
                from . import impl
                from .impl import helper as aliased

                def call_both():
                    return impl.helper() + aliased()
                """,
            },
        )
        contexts = {
            str(path): parse_module(path) for path in sorted(tmp_path.rglob("*.py"))
        }
        project = Project(contexts)
        front = next(m for m in project if m.context.path.endswith("front.py"))
        import ast

        calls = [n for n in front.context.walk(ast.Call)]
        resolved = {front.context.call_name(c): project.resolve_call(front, c) for c in calls}
        assert resolved["impl.helper"] is not None
        assert resolved["impl.helper"].qualname == "helper"
        assert resolved["aliased"] is not None
        assert resolved["aliased"].key == resolved["impl.helper"].key
        impl = resolved["aliased"].module
        # self.method resolves against the enclosing class.
        spin = impl.functions["Widget.spin"]
        (turn_call,) = [n for n in ast.walk(spin) if isinstance(n, ast.Call)]
        turn = project.resolve_call(impl, turn_call)
        assert turn is not None and turn.qualname == "Widget.turn"

    def test_dataflow_registry_is_separate_from_intra_module_rules(self):
        # The intra-module registry (PR 6's eight plus PR 8's FAULT-POINT
        # and PR 10's GAP-CERTIFICATE) stays separate from the
        # interprocedural rules, which ship in their own registry and only
        # join in the (default) dataflow mode.
        assert len(RULE_CLASSES) == 10
        assert len(DATAFLOW_RULE_CLASSES) == 3
        assert {rule.id for rule in dataflow_rules()} == {
            "NONDET-FLOW",
            "SHM-ESCAPE",
            "LOCK-ORDER",
        }
        table = render_rule_table()
        assert "NONDET-FLOW" in table and "(dataflow)" in table


class TestSuppressionAndModes:
    def test_dataflow_finding_suppressed_with_justification(self, tmp_path):
        tree = dict(NONDET_CHAIN_TREE)
        tree["algorithms/solver.py"] = """
            from pkg.helpers import fresh_values

            def solve(points):
                # repro: noqa[NONDET-FLOW] -- fixture exercising the waiver path
                return fresh_values(len(points))
            """
        report = lint_tree(tmp_path, tree, NondetFlowRule())
        assert report.findings == []
        assert [s.finding.rule for s in report.suppressed] == ["NONDET-FLOW"]
        assert "waiver path" in report.suppressed[0].justification

    def test_no_dataflow_skips_project_pass(self, tmp_path):
        report = lint_tree(tmp_path, NONDET_CHAIN_TREE, dataflow=False)
        assert "NONDET-FLOW" not in rule_ids(report)

    def test_cli_no_dataflow_flag(self, tmp_path, capsys):
        write_tree(tmp_path, NONDET_CHAIN_TREE)
        assert main(["lint", str(tmp_path)]) == 1
        assert main(["lint", str(tmp_path), "--no-dataflow"]) == 0
        capsys.readouterr()


class TestBaseline:
    def test_apply_baseline_moves_known_findings(self, tmp_path, capsys):
        report = lint_tree(tmp_path, NONDET_CHAIN_TREE)
        assert report.exit_code() == 1
        baseline = json.loads(render_json(report))
        fresh = lint_paths([tmp_path])
        apply_baseline(fresh, baseline)
        assert fresh.findings == []
        assert [finding.rule for finding in fresh.baselined] == ["NONDET-FLOW"]
        assert fresh.exit_code() == 0
        assert fresh.exit_code(strict=True) == 0
        assert fresh.counts()["baselined"] == 1

    def test_baseline_budget_is_per_rule_and_path_not_line(self, tmp_path):
        report = lint_tree(tmp_path, NONDET_CHAIN_TREE)
        (finding,) = report.findings
        # Same (rule, path), wrong line: still matches — edits that shift a
        # known finding around the file must not resurrect it.
        budget_entry = {"rule": finding.rule, "path": finding.path, "line": 9999}
        fresh = lint_paths([tmp_path])
        apply_baseline(fresh, {"findings": [budget_entry]})
        assert fresh.findings == [] and len(fresh.baselined) == 1
        # A second finding of the pair would exceed the count-1 budget.
        fresh = lint_paths([tmp_path])
        fresh.findings = fresh.findings * 2
        apply_baseline(fresh, {"findings": [budget_entry]})
        assert len(fresh.baselined) == 1 and len(fresh.findings) == 1

    def test_cli_baseline_warns_first(self, tmp_path, capsys):
        tree_dir = tmp_path / "tree"
        write_tree(tree_dir, NONDET_CHAIN_TREE)
        assert main(["lint", str(tree_dir), "--format", "json"]) == 1
        baseline_file = tmp_path / "baseline.json"
        baseline_file.write_text(capsys.readouterr().out)
        assert main(["lint", str(tree_dir), "--baseline", str(baseline_file)]) == 0
        out = capsys.readouterr().out
        assert "baselined" in out

    def test_unreadable_baseline_is_a_usage_error(self, tmp_path, capsys):
        tree_dir = tmp_path / "tree"
        write_tree(tree_dir, NONDET_SEEDED_TREE)
        assert main(["lint", str(tree_dir), "--baseline", str(tmp_path / "nope.json")]) == 2
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert main(["lint", str(tree_dir), "--baseline", str(garbage)]) == 2
        capsys.readouterr()


class TestShippedTree:
    def test_shipped_tree_passes_dataflow_lint(self):
        src = Path(__file__).resolve().parents[1] / "src" / "repro"
        report = lint_paths([src])
        assert report.errors == []
        assert report.findings == []
