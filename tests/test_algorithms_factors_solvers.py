"""Tests for the factor formulas and the solver registry."""

from __future__ import annotations

import pytest

from repro.algorithms import (
    DETERMINISTIC_SOLVERS,
    ONE_CENTER_EXPECTED_POINT_FACTOR,
    RESTRICTED_ED_VS_UNRESTRICTED_FACTOR,
    resolve_solver,
    restricted_euclidean_factor,
    unrestricted_euclidean_factor,
    unrestricted_metric_factor,
)
from repro.deterministic import KCenterResult, gonzalez_kcenter
from repro.exceptions import ValidationError
from repro.metrics import EuclideanMetric


class TestFactorFormulas:
    def test_table1_row_values_with_gonzalez(self):
        # Gonzalez has factor 2: Table 1's 6 / 4 / 4 rows.
        assert restricted_euclidean_factor("expected-distance", 2.0) == pytest.approx(6.0)
        assert restricted_euclidean_factor("expected-point", 2.0) == pytest.approx(4.0)
        assert unrestricted_euclidean_factor("expected-point", 2.0) == pytest.approx(4.0)

    def test_table1_row_values_with_eps_solver(self):
        eps = 0.1
        assert restricted_euclidean_factor("expected-distance", 1 + eps) == pytest.approx(5 + eps)
        assert restricted_euclidean_factor("expected-point", 1 + eps) == pytest.approx(3 + eps)
        assert unrestricted_euclidean_factor("expected-distance", 1 + eps) == pytest.approx(5 + eps)
        assert unrestricted_euclidean_factor("expected-point", 1 + eps) == pytest.approx(3 + eps)
        assert unrestricted_metric_factor("expected-distance", 1 + eps) == pytest.approx(7 + 2 * eps)
        assert unrestricted_metric_factor("one-center", 1 + eps) == pytest.approx(5 + 2 * eps)

    def test_constants(self):
        assert ONE_CENTER_EXPECTED_POINT_FACTOR == 2.0
        assert RESTRICTED_ED_VS_UNRESTRICTED_FACTOR == 3.0

    def test_exact_solver_gives_best_constants(self):
        # With an exact deterministic solver (f = 1) the formulas bottom out.
        assert restricted_euclidean_factor("expected-point", 1.0) == pytest.approx(3.0)
        assert unrestricted_metric_factor("one-center", 1.0) == pytest.approx(5.0)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValidationError):
            restricted_euclidean_factor("one-center", 2.0)
        with pytest.raises(ValidationError):
            unrestricted_euclidean_factor("one-center", 2.0)
        with pytest.raises(ValidationError):
            unrestricted_metric_factor("expected-point", 2.0)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValidationError):
            restricted_euclidean_factor("expected-point", 0.5)

    def test_tiny_float_slack_tolerated(self):
        value = restricted_euclidean_factor("expected-point", 1.0 - 1e-12)
        assert value == pytest.approx(3.0)


class TestSolverRegistry:
    def test_registry_contents(self):
        assert {"gonzalez", "epsilon", "hochbaum-shmoys", "exact-discrete", "exact-euclidean"} <= set(
            DETERMINISTIC_SOLVERS
        )

    def test_resolve_by_name(self, rng):
        solver = resolve_solver("gonzalez")
        result = solver(rng.normal(size=(10, 2)), 2, EuclideanMetric())
        assert isinstance(result, KCenterResult)
        assert result.approximation_factor == 2.0

    def test_resolve_epsilon_with_custom_eps(self, rng):
        solver = resolve_solver("epsilon", epsilon=0.5)
        result = solver(rng.normal(size=(12, 2)), 2, EuclideanMetric())
        assert result.metadata["epsilon"] == pytest.approx(0.5)

    def test_resolve_callable_passthrough(self):
        assert resolve_solver(gonzalez_kcenter) is gonzalez_kcenter

    def test_unknown_name_rejected(self):
        with pytest.raises(ValidationError):
            resolve_solver("unknown-solver")

    def test_every_registered_solver_runs(self, rng):
        points = rng.normal(size=(8, 2))
        for name, solver in DETERMINISTIC_SOLVERS.items():
            result = solver(points, 2, EuclideanMetric())
            assert isinstance(result, KCenterResult)
            assert result.radius >= 0
