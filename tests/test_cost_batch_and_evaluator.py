"""Tests for the batch E[max] kernel and the incremental assigned-cost evaluator.

Covers: batch/scalar/enumeration agreement (including explicit
zero-probability entries), the incremental single-point-move path against
ground truth, validation errors, and a smoke test that the vectorized kernel
handles 10k-support instances in a bounded number of NumPy kernel calls (no
Python-loop fallback over entries).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cost import (
    AssignedCostEvaluator,
    assigned_cost_evaluator,
    enumerate_expected_max,
    expected_max_batch,
    expected_max_batch_values,
    expected_max_of_independent,
)
from repro.exceptions import ValidationError
from repro.workloads import gaussian_clusters


def _random_supports(rng, n=None, m=None):
    """Random (z_i, m) candidate supports with zeros and repeats mixed in."""
    n = n or int(rng.integers(1, 5))
    m = m or int(rng.integers(1, 5))
    supports = []
    probabilities = []
    for _ in range(n):
        z = int(rng.integers(1, 5))
        matrix = rng.uniform(0, 10, size=(z, m))
        if z > 1 and rng.random() < 0.4:
            matrix[int(rng.integers(1, z))] = matrix[0]  # repeated support rows
        weight = rng.dirichlet(np.ones(z))
        if z > 1 and rng.random() < 0.6:
            weight[int(rng.integers(0, z))] = 0.0
            weight = weight / weight.sum()
        supports.append(matrix)
        probabilities.append(weight)
    return supports, probabilities, n, m


class TestExpectedMaxBatch:
    @pytest.mark.parametrize("seed", range(12))
    def test_matches_scalar_and_enumeration(self, seed):
        rng = np.random.default_rng(seed)
        supports, probabilities, n, m = _random_supports(rng)
        column_sets = rng.integers(0, m, size=(7, n))
        batch = expected_max_batch(supports, probabilities, column_sets)
        assert batch.shape == (7,)
        for row, columns in enumerate(column_sets):
            selected = [supports[i][:, columns[i]] for i in range(n)]
            scalar = expected_max_of_independent(selected, probabilities)
            enumerated = enumerate_expected_max(selected, probabilities)
            assert batch[row] == pytest.approx(scalar, rel=1e-9, abs=1e-9)
            assert batch[row] == pytest.approx(enumerated, rel=1e-9, abs=1e-9)

    def test_zero_probability_rows_exact(self):
        supports = [np.array([[1.0], [5.0]]), np.array([[2.0]])]
        probabilities = [np.array([0.0, 1.0]), np.array([1.0])]
        costs = expected_max_batch(supports, probabilities, np.array([[0, 0]]))
        assert costs[0] == pytest.approx(5.0)

    def test_column_count_mismatch_rejected(self):
        supports = [np.array([[1.0, 2.0]]), np.array([[3.0]])]
        probabilities = [np.array([1.0]), np.array([1.0])]
        with pytest.raises(ValidationError):
            expected_max_batch(supports, probabilities, np.array([[0, 0]]))

    def test_out_of_range_column_rejected(self):
        supports = [np.array([[1.0, 2.0]])]
        probabilities = [np.array([1.0])]
        with pytest.raises(ValidationError):
            expected_max_batch(supports, probabilities, np.array([[2]]))


class TestExpectedMaxBatchValues:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_scalar(self, seed):
        rng = np.random.default_rng(seed + 100)
        n = int(rng.integers(1, 5))
        batch = 5
        rows = []
        probabilities = []
        for _ in range(n):
            z = int(rng.integers(1, 5))
            rows.append(rng.uniform(0, 10, size=(batch, z)))
            weight = rng.dirichlet(np.ones(z))
            if z > 1 and rng.random() < 0.5:
                weight[int(rng.integers(0, z))] = 0.0
                weight = weight / weight.sum()
            probabilities.append(weight)
        costs = expected_max_batch_values(rows, probabilities)
        for b in range(batch):
            scalar = expected_max_of_independent([rows[i][b] for i in range(n)], probabilities)
            assert costs[b] == pytest.approx(scalar, rel=1e-9, abs=1e-9)

    def test_row_count_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            expected_max_batch_values(
                [np.ones((2, 1)), np.ones((3, 1))], [np.array([1.0]), np.array([1.0])]
            )


class TestAssignedCostEvaluator:
    @pytest.mark.parametrize("seed", range(12))
    def test_move_costs_match_full_recomputation(self, seed):
        rng = np.random.default_rng(seed + 200)
        supports, probabilities, n, m = _random_supports(rng)
        evaluator = AssignedCostEvaluator(supports, probabilities)
        columns = rng.integers(0, m, size=n)
        for point in range(n):
            profile = evaluator.rest_profile(columns, point)
            move = evaluator.move_costs(profile, np.arange(m))
            for column in range(m):
                trial = columns.copy()
                trial[point] = column
                selected = [supports[i][:, trial[i]] for i in range(n)]
                expected = expected_max_of_independent(selected, probabilities)
                assert move[column] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_cost_and_costs_agree(self):
        rng = np.random.default_rng(7)
        supports, probabilities, n, m = _random_supports(rng, n=3, m=4)
        evaluator = AssignedCostEvaluator(supports, probabilities)
        column_sets = rng.integers(0, m, size=(9, n))
        batch = evaluator.costs(column_sets)
        for row, columns in enumerate(column_sets):
            assert batch[row] == pytest.approx(evaluator.cost(columns), rel=1e-12)

    def test_single_variable_instance(self):
        supports = [np.array([[1.0, 3.0], [2.0, 9.0]])]
        probabilities = [np.array([0.25, 0.75])]
        evaluator = AssignedCostEvaluator(supports, probabilities)
        profile = evaluator.rest_profile(np.array([0]), 0)
        move = evaluator.move_costs(profile, np.array([0, 1]))
        assert move[0] == pytest.approx(0.25 * 1.0 + 0.75 * 2.0)
        assert move[1] == pytest.approx(0.25 * 3.0 + 0.75 * 9.0)

    def test_dataset_factory_matches_assigned_cost(self):
        dataset, _ = gaussian_clusters(n=6, z=3, dimension=2, k_true=2, seed=11)
        centers = dataset.expected_points()[:2]
        evaluator = assigned_cost_evaluator(dataset, centers)
        from repro.cost import expected_cost_assigned

        assignment = np.array([0, 1, 0, 1, 0, 1])
        assert evaluator.cost(assignment) == pytest.approx(
            expected_cost_assigned(dataset, centers, assignment), rel=1e-12
        )

    def test_mismatched_column_counts_rejected(self):
        with pytest.raises(ValidationError):
            AssignedCostEvaluator(
                [np.ones((2, 2)), np.ones((2, 3))], [np.full(2, 0.5), np.full(2, 0.5)]
            )


class TestVectorizedKernelSmoke:
    def test_10k_supports_bounded_kernel_calls(self, monkeypatch):
        """The scalar kernel must handle a 10k-entry union with a bounded
        number of NumPy sort/cumsum calls — i.e. no Python-loop fallback over
        support entries."""
        rng = np.random.default_rng(0)
        n, z = 1250, 8  # N = 10_000 total support entries
        values = [rng.uniform(0, 100, size=z) for _ in range(n)]
        probabilities = [rng.dirichlet(np.ones(z)) for _ in range(n)]

        calls = {"argsort": 0, "lexsort": 0, "cumsum": 0}
        real_argsort, real_lexsort, real_cumsum = np.argsort, np.lexsort, np.cumsum
        monkeypatch.setattr(
            np, "argsort", lambda *a, **k: calls.__setitem__("argsort", calls["argsort"] + 1) or real_argsort(*a, **k)
        )
        monkeypatch.setattr(
            np, "lexsort", lambda *a, **k: calls.__setitem__("lexsort", calls["lexsort"] + 1) or real_lexsort(*a, **k)
        )
        monkeypatch.setattr(
            np, "cumsum", lambda *a, **k: calls.__setitem__("cumsum", calls["cumsum"] + 1) or real_cumsum(*a, **k)
        )
        result = expected_max_of_independent(values, probabilities)
        total_kernel_calls = calls["argsort"] + calls["lexsort"] + calls["cumsum"]
        assert total_kernel_calls <= 8, calls
        maxima = np.array([v.max() for v in values])
        assert 0.0 < result <= maxima.max() + 1e-9

    def test_10k_supports_batch_rows(self):
        """The batch kernel evaluates several 10k-entry rows in one shot."""
        rng = np.random.default_rng(1)
        n, z, m = 1000, 10, 3
        supports = [rng.uniform(0, 100, size=(z, m)) for _ in range(n)]
        probabilities = [rng.dirichlet(np.ones(z)) for _ in range(n)]
        column_sets = rng.integers(0, m, size=(4, n))
        costs = expected_max_batch(supports, probabilities, column_sets)
        assert costs.shape == (4,)
        assert np.all(costs > 0)
        spot = [supports[i][:, column_sets[0, i]] for i in range(n)]
        assert costs[0] == pytest.approx(expected_max_of_independent(spot, probabilities), rel=1e-9)
