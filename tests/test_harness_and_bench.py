"""Harness completeness (E13 inclusion) and the benchmark runner contract."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.experiments import (
    AblationSettings,
    SensitivitySettings,
    Table1Settings,
    run_everything,
)
from repro.runtime.bench import CASES, run_bench


@pytest.fixture(scope="module")
def tiny_kwargs():
    return dict(
        table1_settings=Table1Settings(trials=1, n_small=4, n_medium=10, z=2, k=2),
        ablation_settings=AblationSettings(trials=1, n=8, z=2, k=2),
        sensitivity_settings=SensitivitySettings(
            n=8, trials=1, outlier_probabilities=(0.0, 0.1), support_sizes=(2, 3)
        ),
        include_scaling=False,
    )


class TestRunEverything:
    def test_includes_sensitivity_records(self, tiny_kwargs):
        records = run_everything(**tiny_kwargs)
        identifiers = [record.experiment_id for record in records]
        assert "E13a" in identifiers and "E13b" in identifiers
        # Sensitivity comes after the ablations, mirroring DESIGN.md's index.
        assert identifiers.index("E13a") > identifiers.index("E12b")

    def test_include_sensitivity_flag_excludes(self, tiny_kwargs):
        records = run_everything(**tiny_kwargs, include_sensitivity=False)
        identifiers = [record.experiment_id for record in records]
        assert "E13a" not in identifiers and "E13b" not in identifiers

    def test_workers_override_reaches_every_settings_object(self, tiny_kwargs):
        serial = run_everything(**tiny_kwargs)
        parallel = run_everything(**tiny_kwargs, workers=2)
        # E13b rows carry wall-clock fields; compare everything else exactly.
        for left, right in zip(serial, parallel):
            if left.experiment_id == "E13b":
                assert [row.measured["cost"] for row in left.rows] == [
                    row.measured["cost"] for row in right.rows
                ]
            else:
                assert left == right


class TestCliCommands:
    def test_sensitivity_quick(self, capsys, monkeypatch):
        tiny = SensitivitySettings(
            n=8, trials=1, outlier_probabilities=(0.0, 0.1), support_sizes=(2, 3)
        )
        monkeypatch.setattr(SensitivitySettings, "quick", classmethod(lambda cls: tiny))
        assert main(["sensitivity", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "E13a" in out and "E13b" in out

    def test_ablation_accepts_workers(self, capsys, monkeypatch):
        tiny = AblationSettings(trials=1, n=8, z=2, k=2)
        monkeypatch.setattr(AblationSettings, "quick", classmethod(lambda cls: tiny))
        assert main(["ablation", "--quick", "--workers", "2"]) == 0
        out = capsys.readouterr().out
        assert "E12a" in out and "E12b" in out

    def test_bench_writes_machine_readable_json(self, tmp_path, capsys):
        output = tmp_path / "bench.json"
        assert main(["bench", "--output", str(output), "--case", "wang_zhang_column_splice"]) == 0
        document = json.loads(output.read_text())
        assert document["schema"] == "repro-bench/1"
        assert "cpu_count" in document["environment"]
        case = document["cases"]["wang_zhang_column_splice"]
        assert case["splice_seconds"] > 0 and case["rebuild_seconds"] > 0
        assert "speedup" in case and "target" in case


class TestBenchRunner:
    def test_registry_contains_the_pr3_cases(self):
        assert "brute_force_parallel_speedup" in CASES
        assert "wang_zhang_column_splice" in CASES

    def test_unknown_case_rejected(self):
        with pytest.raises(ValueError, match="unknown benchmark cases"):
            run_bench(None, cases=["not-a-case"])

    def test_run_bench_without_output_returns_document(self):
        document = run_bench(None, cases=["batch_cost_kernel"])
        assert set(document["cases"]) == {"batch_cost_kernel"}
        assert document["cases"]["batch_cost_kernel"]["speedup"] > 0

    def test_registry_contains_the_pr4_cases(self):
        for case in (
            "shm_dispatch_bytes",
            "persistent_pool_amortization",
            "context_store_disk_spill",
            "unassigned_rank_merge",
        ):
            assert case in CASES

    def test_registry_contains_the_pr5_cases(self):
        from repro.runtime.bench import QUICK_CASES

        assert "brute_force_prune_restricted" in CASES
        assert "brute_force_prune_unassigned" in CASES
        # The quick smoke subset must be real cases and include the prune ones.
        assert set(QUICK_CASES) <= set(CASES)
        assert "brute_force_prune_restricted" in QUICK_CASES

    def test_quick_preset_runs_the_smoke_subset(self):
        document = run_bench(None, cases=["batch_cost_kernel"], quick=True)
        # explicit cases win over --quick, and the flag is recorded honestly
        assert set(document["cases"]) == {"batch_cost_kernel"}
        assert document["quick"] is False

    def test_document_records_audit_metadata(self):
        document = run_bench(None, cases=["batch_cost_kernel"])
        assert document["pr"] == "PR10"
        # ISO timestamp parses and matches the unix stamp it sits next to.
        import datetime

        stamp = datetime.datetime.fromisoformat(document["created_iso"])
        assert abs(stamp.timestamp() - document["created_unix"]) < 2.0
        # This repo is a git checkout, so the revision must resolve.
        assert isinstance(document["git_revision"], str)
        assert len(document["git_revision"]) == 40


class TestBenchCompare:
    def _document(self, **seconds):
        return {"cases": {"case": dict(seconds)}}

    def test_bench_out_flag_and_compare_pass(self, tmp_path):
        baseline = tmp_path / "old.json"
        output = tmp_path / "new.json"
        document = run_bench(None, cases=["batch_cost_kernel"])
        # Inflate the baseline timings 10x so machine-load jitter between
        # the two runs can never trip the 20% regression gate here.
        for case in document["cases"].values():
            for key in list(case):
                if key.endswith("_seconds"):
                    case[key] *= 10.0
        baseline.write_text(json.dumps(document))
        assert (
            main(
                [
                    "bench",
                    "--out",
                    str(output),
                    "--case",
                    "batch_cost_kernel",
                    "--compare",
                    str(baseline),
                ]
            )
            == 0
        )
        assert json.loads(output.read_text())["pr"] == "PR10"

    def test_compare_exits_nonzero_on_regression(self, tmp_path, capsys):
        from repro.runtime.bench import compare_documents

        old = self._document(batch_seconds=0.010)
        new = self._document(batch_seconds=0.013)  # 1.3x slower: regression
        table, regressions = compare_documents(new, old)
        assert "REGRESSION" in table
        assert len(regressions) == 1
        baseline = tmp_path / "old.json"
        baseline.write_text(json.dumps({"cases": {"batch_cost_kernel": {"batch_seconds": 1e-3}}}))
        # A real run is far slower than 1ms -> the CLI must exit nonzero.
        assert (
            main(
                [
                    "bench",
                    "--out",
                    str(tmp_path / "new.json"),
                    "--case",
                    "batch_cost_kernel",
                    "--compare",
                    str(baseline),
                ]
            )
            == 3  # the distinct "regression" exit code; crashes stay nonzero-but-not-3
        )

    def test_unreadable_baseline_is_a_crash_not_a_regression(self, tmp_path, capsys):
        from repro.runtime.bench import report_comparison

        assert report_comparison({"cases": {}}, tmp_path / "missing.json") == 1
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        assert report_comparison({"cases": {}}, garbage) == 1

    def test_compare_exit_code_contract(self, tmp_path, capsys):
        """The full 0/3/1 contract of report_comparison in one place.

        0 = identical documents, 3 = >20% regression on a shared product
        metric, 1 = crashed/unreadable baseline — CI warns on 3 and gates
        on 1, so the codes must never collapse into each other.
        """
        from repro.runtime.bench import REGRESSION_EXIT_CODE, report_comparison

        document = {"cases": {"a": {"x_seconds": 0.010}, "b": {"y_seconds": 0.5}}}
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(document))
        assert report_comparison(json.loads(json.dumps(document)), baseline) == 0

        regressed = {"cases": {"a": {"x_seconds": 0.030}, "b": {"y_seconds": 0.5}}}
        assert report_comparison(regressed, baseline) == REGRESSION_EXIT_CODE == 3

        assert report_comparison(document, tmp_path / "nope.json") == 1

    def test_compare_reports_one_sided_cases(self):
        from repro.runtime.bench import compare_documents

        old = {"cases": {"shared": {"x_seconds": 0.01}, "retired": {"x_seconds": 1.0}}}
        new = {"cases": {"shared": {"x_seconds": 0.01}, "fresh": {"x_seconds": 1.0}}}
        table, regressions = compare_documents(new, old)
        assert regressions == []
        assert "only in baseline" in table and "retired" in table
        assert "only in this run" in table and "fresh" in table
        # Disjoint case sets must render a readable report, not crash.
        table, regressions = compare_documents(
            {"cases": {"b": {"x_seconds": 1.0}}}, {"cases": {"a": {"x_seconds": 1.0}}}
        )
        assert regressions == []
        assert "a" in table and "b" in table

    def test_compare_tolerates_noise_and_missing_cases(self):
        from repro.runtime.bench import compare_documents

        old = {"cases": {"a": {"x_seconds": 0.010}, "gone": {"x_seconds": 1.0}}}
        new = {"cases": {"a": {"x_seconds": 0.011}, "added": {"x_seconds": 1.0}}}
        table, regressions = compare_documents(new, old)
        assert regressions == []  # 1.1x is inside the 20% tolerance
        assert "a.x_seconds" in table
        # sub-millisecond metrics are reported but never flagged
        old = {"cases": {"a": {"x_seconds": 1e-6}}}
        new = {"cases": {"a": {"x_seconds": 5e-6}}}
        _, regressions = compare_documents(new, old)
        assert regressions == []

    def test_compare_spec_is_per_case(self):
        """`CASE_COMPARE` pins the per-case floor/tolerance overrides.

        The µs-scale kernel cases gate from 10 µs with 2x headroom; the
        whole-tree lint cases allow 50% for organic tree growth; every
        unregistered case (notably ``batch_cost_kernel``) keeps the
        historical 1 ms floor + 20% tolerance byte-for-byte, so the older
        compare tests in this file double as the default-spec pin.
        """
        from repro.runtime.bench import (
            REGRESSION_FLOOR_SECONDS,
            REGRESSION_TOLERANCE,
            compare_documents,
            compare_spec,
        )

        spec = compare_spec("unassigned_rank_merge")
        assert (spec.floor_seconds, spec.tolerance) == (1e-5, 2.0)
        assert compare_spec("lint_dataflow_full_tree").tolerance == 1.5
        default = compare_spec("batch_cost_kernel")
        assert default.floor_seconds == REGRESSION_FLOOR_SECONDS == 1e-3
        assert default.tolerance == REGRESSION_TOLERANCE == 1.2

        # A 4x slowdown at 50 µs: invisible to the global 1 ms floor, but
        # the rank-merge case's lowered floor flags it.
        old = {"cases": {"unassigned_rank_merge": {"merge_seconds": 5e-5}}}
        new = {"cases": {"unassigned_rank_merge": {"merge_seconds": 2e-4}}}
        _, regressions = compare_documents(new, old)
        assert len(regressions) == 1
        # ...while a 1.8x wobble stays inside the widened 2x tolerance,
        new = {"cases": {"unassigned_rank_merge": {"merge_seconds": 9e-5}}}
        _, regressions = compare_documents(new, old)
        assert regressions == []
        # ...and timings under the 10 µs floor still never gate.
        old = {"cases": {"unassigned_rank_merge": {"merge_seconds": 5e-6}}}
        new = {"cases": {"unassigned_rank_merge": {"merge_seconds": 5e-5}}}
        _, regressions = compare_documents(new, old)
        assert regressions == []

        # The same 4x-at-50µs regression on an unregistered case is below
        # the default floor — reported, never flagged (the historical rule).
        old = {"cases": {"batch_cost_kernel": {"batch_seconds": 5e-5}}}
        new = {"cases": {"batch_cost_kernel": {"batch_seconds": 2e-4}}}
        _, regressions = compare_documents(new, old)
        assert regressions == []

        # Lint cases: 1.4x growth is organic, 1.6x gates.
        old = {"cases": {"lint_dataflow_full_tree": {"lint_dataflow_full_tree_seconds": 0.10}}}
        new = {"cases": {"lint_dataflow_full_tree": {"lint_dataflow_full_tree_seconds": 0.14}}}
        _, regressions = compare_documents(new, old)
        assert regressions == []
        new = {"cases": {"lint_dataflow_full_tree": {"lint_dataflow_full_tree_seconds": 0.16}}}
        _, regressions = compare_documents(new, old)
        assert len(regressions) == 1
