"""Repo-wide pytest configuration: per-test default timeouts.

Solver hangs (like the historical threshold-greedy infinite loop in the
Guha–Munagala baseline) must fail fast instead of stalling the whole suite.
When the ``pytest-timeout`` plugin is installed (the ``test`` extra in
``setup.py``) it enforces the default below; otherwise a SIGALRM-based
fallback provides the same behaviour on POSIX.  Individual tests override
the default with ``@pytest.mark.timeout(seconds)``.  Living at the repo root
this applies to ``tests/`` and ``benchmarks/`` alike.
"""

from __future__ import annotations

import signal
import threading

import pytest

#: Default per-test budget; generous next to the slowest benchmark test but
#: far below "the suite is hanging".
DEFAULT_TEST_TIMEOUT_SECONDS = 300.0

try:  # pragma: no cover - exercised only where the plugin is installed
    import pytest_timeout  # noqa: F401

    _HAVE_PYTEST_TIMEOUT = True
except ImportError:
    _HAVE_PYTEST_TIMEOUT = False


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "timeout(seconds): override the per-test timeout default"
    )
    if _HAVE_PYTEST_TIMEOUT and getattr(config.option, "timeout", None) is None:
        config.option.timeout = DEFAULT_TEST_TIMEOUT_SECONDS


def _timeout_seconds(item) -> float:
    marker = item.get_closest_marker("timeout")
    if marker is None:
        return DEFAULT_TEST_TIMEOUT_SECONDS
    if marker.args:
        return float(marker.args[0])
    # pytest-timeout's keyword is ``timeout=``; accept ``seconds=`` too.
    value = marker.kwargs.get("timeout", marker.kwargs.get("seconds"))
    return float(value) if value is not None else DEFAULT_TEST_TIMEOUT_SECONDS


def _alarm_fallback_active() -> bool:
    return (
        not _HAVE_PYTEST_TIMEOUT
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


def _guarded(item, phase: str):
    """SIGALRM fallback for one test phase when pytest-timeout is unavailable.

    Hangs can occur in fixture setup/teardown as easily as in the test body
    (a solver hang inside a dataset fixture, say), so every phase of the
    runtest protocol gets its own alarm budget.
    """
    if not _alarm_fallback_active():
        yield
        return
    seconds = _timeout_seconds(item)

    def _on_timeout(signum, frame):
        raise TimeoutError(
            f"{item.nodeid} exceeded the {seconds:.0f}s {phase} timeout "
            "(fallback guard; install pytest-timeout for richer reporting)"
        )

    previous = signal.signal(signal.SIGALRM, _on_timeout)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_setup(item):
    yield from _guarded(item, "fixture-setup")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    yield from _guarded(item, "test")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item):
    yield from _guarded(item, "fixture-teardown")
