"""E10 — head-to-head against prior-work-style baselines (abstract's claim)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.guha_munagala import guha_munagala_baseline
from repro.cost import expected_cost_assigned
from repro.experiments.table1 import run_e10_baseline_comparison
from repro.workloads import gaussian_clusters, heavy_tailed


def test_bench_e10_baseline_comparison(benchmark, table1_settings):
    record = benchmark(run_e10_baseline_comparison, table1_settings)
    # The paper's algorithms should beat or match the baselines on a clear
    # majority of workloads (they win all of them in practice).
    assert record.summary["win_fraction"] >= 0.5, record.summary


@pytest.mark.timeout(120)
def test_bench_threshold_greedy_baseline(benchmark):
    """The threshold-greedy (Guha–Munagala-style) baseline on a heavy-tailed
    workload: the binary search sweeps tight thresholds where the opener's
    best expected distance exceeds 3T — the exact regime that used to hang."""
    dataset, _ = heavy_tailed(n=40, z=5, dimension=2, outlier_probability=0.2, seed=3)
    result = benchmark(guha_munagala_baseline, dataset, 3)
    assert result.centers.shape[0] <= 3
    assert np.isfinite(result.expected_cost)
    assert result.expected_cost == pytest.approx(
        expected_cost_assigned(dataset, result.centers, result.assignment),
        rel=1e-9,
    )


@pytest.mark.timeout(120)
def test_bench_threshold_greedy_single_spread_point(benchmark):
    """Degenerate tight-threshold instance (single point, far-apart support):
    every candidate threshold is below best/3 until the search widens."""
    dataset, _ = gaussian_clusters(n=1, z=6, dimension=2, k_true=1, seed=11)
    result = benchmark(guha_munagala_baseline, dataset, 1)
    assert result.centers.shape[0] == 1
    assert np.isfinite(result.expected_cost)
