"""E10 — head-to-head against prior-work-style baselines (abstract's claim)."""

from __future__ import annotations

from repro.experiments.table1 import run_e10_baseline_comparison


def test_bench_e10_baseline_comparison(benchmark, table1_settings):
    record = benchmark(run_e10_baseline_comparison, table1_settings)
    # The paper's algorithms should beat or match the baselines on a clear
    # majority of workloads (they win all of them in practice).
    assert record.summary["win_fraction"] >= 0.5, record.summary
