"""E2/E3 — Table 1 rows 2-3: restricted assigned, expected-distance assignment."""

from __future__ import annotations

from repro.experiments.table1 import run_e2_e3_restricted_expected_distance


def test_bench_e2_e3_restricted_expected_distance(benchmark, table1_settings):
    record = benchmark(run_e2_e3_restricted_expected_distance, table1_settings)
    assert record.summary["within_bound"], record.summary
    # Gonzalez variant must respect the factor-6 row, the refined solver the
    # (5 + eps) row.
    assert record.summary["worst_ratio_gonzalez"] <= record.summary["bound_gonzalez"] + 1e-9
    assert record.summary["worst_ratio_epsilon"] <= record.summary["bound_epsilon"] + 1e-9
