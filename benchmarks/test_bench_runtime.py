"""Benchmarks for the PR-3 execution runtime: sharded enumeration, memoized
contexts and incremental candidate-column splices.

Timing comes from pytest-benchmark; the assertions pin the *quality*
contracts (parallel determinism, splice-vs-rebuild win, store hits) and the
wall-clock targets where the hardware can express them — the parallel
speedup target needs >= 2 physical CPUs and is skipped honestly below that.
``python -m repro bench`` records the same cases (plus environment metadata)
to ``BENCH_PR3.json`` for the cross-PR trajectory.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_restricted_assigned
from repro.cost.context import CostContext
from repro.runtime import ContextStore
from repro.workloads import gaussian_clusters, line_workload

#: Wall-clock target for the sharded enumeration at 2+ workers (achievable
#: only with >= 2 physical CPUs).
PARALLEL_SPEEDUP_TARGET = 2.0
#: Wall-clock target for the column splice vs a full context rebuild.
SPLICE_SPEEDUP_TARGET = 1.8


def _best_of(function, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


@pytest.fixture(scope="module")
def enumeration_instance():
    dataset, _ = gaussian_clusters(n=30, z=4, dimension=2, k_true=3, seed=7)
    return dataset, dataset.all_locations()[:40]


def test_bench_sharded_brute_force(benchmark, enumeration_instance):
    """Sharded enumeration at 2 workers: identical result, timed end to end."""
    dataset, candidates = enumeration_instance
    serial = brute_force_restricted_assigned(
        dataset, 3, candidates=candidates, chunk_rows=256, workers=1
    )
    sharded = benchmark.pedantic(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=2
        ),
        iterations=1,
        rounds=2,
    )
    assert sharded.expected_cost == serial.expected_cost
    assert np.array_equal(sharded.centers, serial.centers)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason=f"parallel speedup target needs >= 2 CPUs (found {os.cpu_count()})",
)
def test_bench_parallel_speedup_target(enumeration_instance):
    """>= 2x wall clock on the enumeration at 2+ workers (ISSUE 3 target)."""
    dataset, candidates = enumeration_instance
    workers = min(4, os.cpu_count() or 2)
    serial_seconds = _best_of(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=1
        )
    )
    parallel_seconds = _best_of(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=workers
        )
    )
    speedup = serial_seconds / max(parallel_seconds, 1e-12)
    assert speedup >= PARALLEL_SPEEDUP_TARGET, (
        f"sharded enumeration speedup {speedup:.2f}x at {workers} workers "
        f"below the {PARALLEL_SPEEDUP_TARGET}x target"
    )


def test_bench_column_splice(benchmark):
    """Incremental fine-grid splice vs the full rebuild it replaces."""
    dataset, _ = line_workload(n=100, z=12, segment_count=3, seed=11)
    k = 3
    coarse = np.linspace(-1.0, 1.0, 33)
    fine = np.linspace(-0.05, 0.05, 21)
    centers = dataset.expected_points()[:k]
    candidates = np.vstack([centers, coarse.reshape(-1, 1), fine.reshape(-1, 1)])
    fine_columns = np.arange(k + 33, k + 33 + 21)

    def rebuild() -> None:
        CostContext(dataset, candidates).evaluator

    context = CostContext(dataset, candidates)
    context.evaluator
    shift = [0.0]

    def splice() -> None:
        shift[0] += 1e-4
        context.replace_candidate_columns(fine_columns, (fine + shift[0]).reshape(-1, 1))

    rebuild_seconds = _best_of(rebuild, repeats=5)
    splice_seconds = benchmark(splice)
    splice_seconds = _best_of(splice, repeats=5)
    speedup = rebuild_seconds / max(splice_seconds, 1e-12)
    assert speedup >= SPLICE_SPEEDUP_TARGET, (
        f"column splice speedup {speedup:.2f}x below the {SPLICE_SPEEDUP_TARGET}x target"
    )


def test_bench_context_store_hit(benchmark):
    """A store hit must be orders of magnitude cheaper than a cold build."""
    dataset, _ = gaussian_clusters(n=80, z=6, dimension=2, k_true=4, seed=21)
    candidates = dataset.all_locations()[:64]
    cold_seconds = _best_of(lambda: CostContext(dataset, candidates).evaluator, repeats=3)
    store = ContextStore()
    store.get(dataset, candidates).evaluator
    benchmark(lambda: store.get(dataset, candidates))
    hit_seconds = _best_of(lambda: store.get(dataset, candidates), repeats=3)
    assert store.hits >= 2 and store.misses == 1
    assert cold_seconds / max(hit_seconds, 1e-12) >= 10.0
