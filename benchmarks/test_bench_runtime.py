"""Benchmarks for the execution runtime: sharded enumeration, the persistent
pool, shared-memory dispatch, memoized/spilled contexts, column splices and
the rank-merge unassigned sweep.

Timing comes from pytest-benchmark; the assertions pin the *quality*
contracts (parallel determinism, splice-vs-rebuild win, store hits,
descriptor-vs-payload dispatch bytes, pool amortization, rank-merge win) and
the wall-clock targets where the hardware can express them — the parallel
speedup target needs >= 2 physical CPUs and is skipped honestly below that
(the 2-vCPU CI runners execute it).  ``python -m repro bench`` records the
same cases (plus environment metadata) to ``BENCH_PR9.json`` for the
cross-PR trajectory; ``--compare BENCH_PR5.json`` diffs documents.
"""

from __future__ import annotations

import os
import pickle
import time

import numpy as np
import pytest

from repro.baselines.brute_force import brute_force_restricted_assigned
from repro.cost.context import CostContext
from repro.runtime import ContextStore, set_oversubscribe, shutdown_runtime
from repro.runtime import shm as shm_module
from repro.runtime.bench import (
    bench_context_store_disk_spill,
    bench_persistent_pool,
    bench_rank_merge,
)
from repro.workloads import gaussian_clusters, line_workload

#: Wall-clock target for the sharded enumeration at 2+ workers (achievable
#: only with >= 2 physical CPUs).
PARALLEL_SPEEDUP_TARGET = 2.0
#: Wall-clock target for the column splice vs a full context rebuild.
SPLICE_SPEEDUP_TARGET = 1.8
#: Dispatch-bytes reduction the shared-memory chunk protocol must deliver.
SHM_DISPATCH_BYTES_TARGET = 10.0
#: Pool amortization across many small calls (startup is what's measured, so
#: this holds on any core count); the bench JSON targets 2x.
POOL_AMORTIZATION_TARGET = 1.5
#: Rank-merge sweep vs float-sort sweep (slightly under the bench JSON's
#: 1.5x target to absorb shared-machine timing noise in CI).
RANK_MERGE_SPEEDUP_TARGET = 1.3
#: Branch-and-bound pruned restricted brute force vs the exhaustive scan
#: (the bench JSON targets 3x on a quiet box; the CI guard leaves noise
#: headroom).  The >50% prune-rate half of the PR-5 contract is
#: deterministic and asserted exactly.
PRUNE_SPEEDUP_FLOOR = 1.5
PRUNE_RATE_TARGET = 0.5


def _best_of(function, repeats: int = 3) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


@pytest.fixture(scope="module")
def enumeration_instance():
    dataset, _ = gaussian_clusters(n=30, z=4, dimension=2, k_true=3, seed=7)
    return dataset, dataset.all_locations()[:40]


def test_bench_sharded_brute_force(benchmark, enumeration_instance):
    """Sharded enumeration at 2 workers: identical result, timed end to end."""
    dataset, candidates = enumeration_instance
    serial = brute_force_restricted_assigned(
        dataset, 3, candidates=candidates, chunk_rows=256, workers=1
    )
    sharded = benchmark.pedantic(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=2
        ),
        iterations=1,
        rounds=2,
    )
    assert sharded.expected_cost == serial.expected_cost
    assert np.array_equal(sharded.centers, serial.centers)


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 2,
    reason=f"parallel speedup target needs >= 2 CPUs (found {os.cpu_count()})",
)
def test_bench_parallel_speedup_target(enumeration_instance):
    """>= 2x wall clock on the enumeration at 2+ workers (ISSUE 3 target)."""
    dataset, candidates = enumeration_instance
    workers = min(4, os.cpu_count() or 2)
    serial_seconds = _best_of(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=1
        )
    )
    parallel_seconds = _best_of(
        lambda: brute_force_restricted_assigned(
            dataset, 3, candidates=candidates, chunk_rows=256, workers=workers
        )
    )
    speedup = serial_seconds / max(parallel_seconds, 1e-12)
    assert speedup >= PARALLEL_SPEEDUP_TARGET, (
        f"sharded enumeration speedup {speedup:.2f}x at {workers} workers "
        f"below the {PARALLEL_SPEEDUP_TARGET}x target"
    )


def test_bench_column_splice(benchmark):
    """Incremental fine-grid splice vs the full rebuild it replaces."""
    dataset, _ = line_workload(n=100, z=12, segment_count=3, seed=11)
    k = 3
    coarse = np.linspace(-1.0, 1.0, 33)
    fine = np.linspace(-0.05, 0.05, 21)
    centers = dataset.expected_points()[:k]
    candidates = np.vstack([centers, coarse.reshape(-1, 1), fine.reshape(-1, 1)])
    fine_columns = np.arange(k + 33, k + 33 + 21)

    def rebuild() -> None:
        CostContext(dataset, candidates).evaluator

    context = CostContext(dataset, candidates)
    context.evaluator
    shift = [0.0]

    def splice() -> None:
        shift[0] += 1e-4
        context.replace_candidate_columns(fine_columns, (fine + shift[0]).reshape(-1, 1))

    rebuild_seconds = _best_of(rebuild, repeats=5)
    splice_seconds = benchmark(splice)
    splice_seconds = _best_of(splice, repeats=5)
    speedup = rebuild_seconds / max(splice_seconds, 1e-12)
    assert speedup >= SPLICE_SPEEDUP_TARGET, (
        f"column splice speedup {speedup:.2f}x below the {SPLICE_SPEEDUP_TARGET}x target"
    )


def test_bench_shm_dispatch_bytes(enumeration_instance):
    """Chunk dispatch ships >= 10x fewer bytes than pickling the payload."""
    if not shm_module.shm_available():
        pytest.skip("shared memory unavailable")
    dataset, candidates = enumeration_instance
    context = CostContext(dataset, candidates)
    context.evaluator
    context.expected
    payload = (context, context.expected, 256)
    pickled_bytes = len(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
    descriptor, call_lease = shm_module.publish_payload(payload)
    try:
        descriptor_bytes = descriptor.dispatch_bytes()
    finally:
        if call_lease is not None:
            call_lease.close()
        shm_module.close_all_publications()
    assert pickled_bytes >= SHM_DISPATCH_BYTES_TARGET * descriptor_bytes, (
        f"descriptor dispatch is {pickled_bytes / descriptor_bytes:.1f}x smaller "
        f"than the pickled payload; target is {SHM_DISPATCH_BYTES_TARGET}x"
    )


def test_bench_persistent_pool_amortization():
    """Persistent pool + memoized publication beats a fresh pool per call."""
    if not shm_module.shm_available():
        pytest.skip("shared memory unavailable")
    record = bench_persistent_pool(calls=20)
    assert record["speedup"] >= POOL_AMORTIZATION_TARGET, (
        f"persistent pool amortization {record['speedup']:.2f}x across "
        f"{record['calls']} calls below the {POOL_AMORTIZATION_TARGET}x floor"
    )


def test_bench_context_store_disk_spill_across_processes():
    """A second process hits the disk tier instead of rebuilding."""
    record = bench_context_store_disk_spill()
    assert record["cross_process_hit"], record
    assert record["first_process"]["misses"] == 1
    assert record["first_process"]["disk_hits"] == 0


def test_bench_rank_merge_sweep():
    """Rank-merge unassigned sweep beats the float-sort sweep, bit-identically."""
    record = bench_rank_merge()
    assert record["speedup"] >= RANK_MERGE_SPEEDUP_TARGET, (
        f"rank-merge sweep speedup {record['speedup']:.2f}x below the "
        f"{RANK_MERGE_SPEEDUP_TARGET}x floor"
    )


def test_bench_pruned_brute_force():
    """Pruned restricted enumeration: identical result, >50% rows pruned,
    and a real wall-clock win over ``prune=False`` (ISSUE 5 target)."""
    from repro.runtime.bench import bench_prune_restricted

    record = bench_prune_restricted(repeats=3)
    assert record["prune_rate"] > PRUNE_RATE_TARGET, (
        f"prune rate {record['prune_rate']:.0%} below the {PRUNE_RATE_TARGET:.0%} contract"
    )
    assert record["speedup"] >= PRUNE_SPEEDUP_FLOOR, (
        f"pruned brute force speedup {record['speedup']:.2f}x below the "
        f"{PRUNE_SPEEDUP_FLOOR}x CI floor (bench target {record['target']}x)"
    )


def test_bench_context_store_hit(benchmark):
    """A store hit must be orders of magnitude cheaper than a cold build."""
    dataset, _ = gaussian_clusters(n=80, z=6, dimension=2, k_true=4, seed=21)
    candidates = dataset.all_locations()[:64]
    cold_seconds = _best_of(lambda: CostContext(dataset, candidates).evaluator, repeats=3)
    store = ContextStore()
    store.get(dataset, candidates).evaluator
    benchmark(lambda: store.get(dataset, candidates))
    hit_seconds = _best_of(lambda: store.get(dataset, candidates), repeats=3)
    assert store.hits >= 2 and store.misses == 1
    assert cold_seconds / max(hit_seconds, 1e-12) >= 10.0
