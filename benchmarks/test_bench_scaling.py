"""E11 — Table 1 running-time column: scaling in n, z and k."""

from __future__ import annotations

from repro.experiments.scaling import run_scaling


def test_bench_e11_scaling(benchmark, scaling_settings):
    record = benchmark.pedantic(run_scaling, args=(scaling_settings,), iterations=1, rounds=1)
    # The fitted growth exponents should reproduce the claimed shapes:
    # roughly linear in n and z, clearly sub-linear in k.
    assert record.summary["n_exponent"] <= 1.6, record.summary
    assert record.summary["z_exponent"] <= 1.5, record.summary
    assert record.summary["k_exponent"] <= 1.0, record.summary
