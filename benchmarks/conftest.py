"""Shared configuration for the benchmark harness.

Each benchmark file regenerates one experiment from DESIGN.md's index
(Table 1 rows, the scaling study, the ablations).  pytest-benchmark provides
the timing; the assertions check that the measured quality reproduces the
paper's claim (ratios within the proven factors, baselines not better, the
scaling shape roughly linear).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pytest

from repro.experiments.ablation import AblationSettings
from repro.experiments.scaling import ScalingSettings
from repro.experiments.table1 import Table1Settings


@pytest.fixture(scope="session")
def table1_settings() -> Table1Settings:
    """Lightweight settings so a full benchmark run stays fast."""
    return Table1Settings.quick()


@pytest.fixture(scope="session")
def scaling_settings() -> ScalingSettings:
    return ScalingSettings.quick()


@pytest.fixture(scope="session")
def ablation_settings() -> AblationSettings:
    return AblationSettings.quick()
