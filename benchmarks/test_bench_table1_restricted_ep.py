"""E4/E5 — Table 1 rows 4-5: restricted assigned, expected-point assignment."""

from __future__ import annotations

from repro.experiments.table1 import run_e4_e5_restricted_expected_point


def test_bench_e4_e5_restricted_expected_point(benchmark, table1_settings):
    record = benchmark(run_e4_e5_restricted_expected_point, table1_settings)
    assert record.summary["within_bound"], record.summary
    assert record.summary["worst_ratio_gonzalez"] <= record.summary["bound_gonzalez"] + 1e-9
    assert record.summary["worst_ratio_epsilon"] <= record.summary["bound_epsilon"] + 1e-9
