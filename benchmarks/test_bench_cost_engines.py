"""Cost-engine micro-benchmarks (design-choice ablation from DESIGN.md §5.4).

Times the exact O(N log N) expected-cost engine against Monte-Carlo
estimation and full enumeration on a common instance, and checks they agree.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignments import ExpectedDistanceAssignment
from repro.cost import (
    enumerate_expected_cost_assigned,
    expected_cost_assigned,
    monte_carlo_cost_assigned,
)
from repro.workloads import gaussian_clusters


@pytest.fixture(scope="module")
def instance():
    dataset, _ = gaussian_clusters(n=10, z=3, dimension=2, k_true=3, seed=5)
    centers = dataset.expected_points()[:3]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    return dataset, centers, assignment


def test_bench_exact_engine(benchmark, instance):
    dataset, centers, assignment = instance
    value = benchmark(expected_cost_assigned, dataset, centers, assignment)
    assert value > 0


def test_bench_enumeration_engine(benchmark, instance):
    dataset, centers, assignment = instance
    value = benchmark(enumerate_expected_cost_assigned, dataset, centers, assignment)
    exact = expected_cost_assigned(dataset, centers, assignment)
    assert np.isclose(value, exact, rtol=1e-9)


def test_bench_monte_carlo_engine(benchmark, instance):
    dataset, centers, assignment = instance
    estimate = benchmark(monte_carlo_cost_assigned, dataset, centers, assignment, samples=2000, rng=0)
    exact = expected_cost_assigned(dataset, centers, assignment)
    assert estimate.within(exact, sigmas=6.0)


def test_bench_large_exact_engine(benchmark):
    dataset, _ = gaussian_clusters(n=500, z=8, dimension=2, k_true=5, seed=9)
    centers = dataset.expected_points()[:5]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    value = benchmark(expected_cost_assigned, dataset, centers, assignment)
    assert value > 0
