"""Cost-engine micro-benchmarks (design-choice ablation from DESIGN.md §5.4).

Times the exact O(N log N) expected-cost engine against Monte-Carlo
estimation and full enumeration on a common instance, and checks they agree.
Also times the batch E[max] kernel and the incremental local-search path
(the hot path of :class:`OptimalAssignment` and the brute-force baselines).
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.assignments import ExpectedDistanceAssignment, OptimalAssignment
from repro.cost import (
    assigned_cost_evaluator,
    enumerate_expected_cost_assigned,
    expected_cost_assigned,
    monte_carlo_cost_assigned,
)
from repro.cost.expected import _expected_max_reference, distance_supports_for_assignment
from repro.workloads import gaussian_clusters


@pytest.fixture(scope="module")
def instance():
    dataset, _ = gaussian_clusters(n=10, z=3, dimension=2, k_true=3, seed=5)
    centers = dataset.expected_points()[:3]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    return dataset, centers, assignment


def test_bench_exact_engine(benchmark, instance):
    dataset, centers, assignment = instance
    value = benchmark(expected_cost_assigned, dataset, centers, assignment)
    assert value > 0


def test_bench_enumeration_engine(benchmark, instance):
    dataset, centers, assignment = instance
    value = benchmark(enumerate_expected_cost_assigned, dataset, centers, assignment)
    exact = expected_cost_assigned(dataset, centers, assignment)
    assert np.isclose(value, exact, rtol=1e-9)


def test_bench_monte_carlo_engine(benchmark, instance):
    dataset, centers, assignment = instance
    estimate = benchmark(monte_carlo_cost_assigned, dataset, centers, assignment, samples=2000, rng=0)
    exact = expected_cost_assigned(dataset, centers, assignment)
    assert estimate.within(exact, sigmas=6.0)


def test_bench_large_exact_engine(benchmark):
    dataset, _ = gaussian_clusters(n=500, z=8, dimension=2, k_true=5, seed=9)
    centers = dataset.expected_points()[:5]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    value = benchmark(expected_cost_assigned, dataset, centers, assignment)
    assert value > 0


def test_bench_batch_kernel(benchmark):
    """Batch evaluation of 256 assignments through the shared sweep kernel."""
    dataset, _ = gaussian_clusters(n=100, z=6, dimension=2, k_true=4, seed=12)
    centers = dataset.expected_points()[:4]
    evaluator = assigned_cost_evaluator(dataset, centers)
    rng = np.random.default_rng(0)
    column_sets = rng.integers(0, 4, size=(256, dataset.size))
    costs = benchmark(evaluator.costs, column_sets)
    assert costs.shape == (256,)
    spot = int(rng.integers(0, 256))
    assert costs[spot] == pytest.approx(
        expected_cost_assigned(dataset, centers, column_sets[spot]), rel=1e-9
    )


def test_bench_local_search_incremental(benchmark):
    """The ISSUE's target scenario: OptimalAssignment local search at
    n≈200, z≈8 through the incremental evaluator."""
    dataset, _ = gaussian_clusters(n=200, z=8, dimension=2, k_true=4, seed=3)
    centers = dataset.expected_points()[:4]
    labels = benchmark.pedantic(OptimalAssignment(), args=(dataset, centers), iterations=1, rounds=2)
    ed_cost = expected_cost_assigned(dataset, centers, ExpectedDistanceAssignment()(dataset, centers))
    assert expected_cost_assigned(dataset, centers, labels) <= ed_cost + 1e-9


def test_local_search_speedup_over_reference_engine():
    """Speed guard (not a pytest-benchmark case): one local-search round of
    single-point moves via the incremental evaluator must clearly beat the
    same moves re-evaluated from scratch through the historical engine."""
    dataset, _ = gaussian_clusters(n=60, z=8, dimension=2, k_true=4, seed=3)
    centers = dataset.expected_points()[:4]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    k = centers.shape[0]

    evaluator = assigned_cost_evaluator(dataset, centers)
    start = time.perf_counter()
    for point_index in range(dataset.size):
        profile = evaluator.rest_profile(assignment, point_index)
        evaluator.move_costs(profile, np.arange(k))
    incremental_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for point_index in range(dataset.size):
        for center_index in range(k):
            trial = assignment.copy()
            trial[point_index] = center_index
            values, probabilities = distance_supports_for_assignment(dataset, centers, trial)
            _expected_max_reference(values, probabilities)
    reference_seconds = time.perf_counter() - start

    speedup = reference_seconds / max(incremental_seconds, 1e-9)
    assert speedup >= 5.0, f"incremental path only {speedup:.1f}x faster than reference engine"


def test_local_search_sweep_amortization_speedup():
    """ISSUE 2 guard: the round-amortized LocalSearchSweep must be >= 3x
    faster than per-point ``rest_profile`` re-sorts on the local-search
    polish sweep at n=200, z=8 (one full round of single-point moves)."""
    dataset, _ = gaussian_clusters(n=200, z=8, dimension=2, k_true=8, seed=7)
    centers = dataset.expected_points()[:8]
    assignment = ExpectedDistanceAssignment()(dataset, centers)
    evaluator = assigned_cost_evaluator(dataset, centers)
    all_columns = np.arange(centers.shape[0])

    def per_point_round() -> np.ndarray:
        costs = np.empty((dataset.size, centers.shape[0]))
        for point in range(dataset.size):
            profile = evaluator.rest_profile(assignment, point)
            costs[point] = evaluator.move_costs(profile, all_columns)
        return costs

    sweep = evaluator.local_search_sweep(assignment)

    def amortized_round() -> np.ndarray:
        costs = np.empty((dataset.size, centers.shape[0]))
        for point in range(dataset.size):
            profile = sweep.rest_profile(point)
            costs[point] = evaluator.move_costs(profile, all_columns)
        return costs

    # Warm up once (also checks the two paths agree), then take the best of
    # three timed repeats of each to damp scheduler noise.
    np.testing.assert_allclose(amortized_round(), per_point_round(), rtol=1e-9, atol=1e-12)
    per_point_seconds = min(
        _timed(per_point_round) for _ in range(3)
    )
    amortized_seconds = min(
        _timed(amortized_round) for _ in range(3)
    )
    speedup = per_point_seconds / max(amortized_seconds, 1e-9)
    assert speedup >= 3.0, (
        f"round-amortized sweep only {speedup:.1f}x faster than per-point rest_profile"
    )


def _timed(function) -> float:
    start = time.perf_counter()
    function()
    return time.perf_counter() - start
