"""E1 — Table 1 row 1: uncertain 1-center via the expected point (factor 2)."""

from __future__ import annotations

from repro.experiments.table1 import run_e1_one_center


def test_bench_e1_one_center(benchmark, table1_settings):
    record = benchmark(run_e1_one_center, table1_settings)
    assert record.summary["within_bound"], record.summary
    assert record.summary["worst_ratio"] <= 2.0 + 1e-9
