"""E6/E7 — Table 1 rows 6-7: unrestricted assigned, Euclidean (factors 4 / 3+eps)."""

from __future__ import annotations

from repro.experiments.table1 import run_e6_e7_unrestricted_euclidean


def test_bench_e6_e7_unrestricted_euclidean(benchmark, table1_settings):
    record = benchmark(run_e6_e7_unrestricted_euclidean, table1_settings)
    assert record.summary["within_bound"], record.summary
    assert record.summary["worst_ratio_gonzalez"] <= 4.0 + 1e-9
    assert record.summary["worst_ratio_epsilon"] <= record.summary["bound_epsilon"] + 1e-9
