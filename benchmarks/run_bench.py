#!/usr/bin/env python
"""Standalone entry point for the machine-readable benchmark runner.

Equivalent to ``python -m repro bench``; see :mod:`repro.runtime.bench` for
the case registry.  Writes ``BENCH_PR4.json`` (override with ``--out``) so
every PR leaves a comparable perf trajectory, and ``--compare`` diffs the
fresh run against an earlier document, exiting nonzero on >20% regressions::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --compare BENCH_PR3.json
    PYTHONPATH=src python benchmarks/run_bench.py --out /tmp/bench.json --case unassigned_rank_merge
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", "--output", dest="out", default="BENCH_PR4.json", help="JSON document to write"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="earlier benchmark JSON to diff against (nonzero exit on >20%% regressions)",
    )
    parser.add_argument(
        "--case", action="append", default=None, help="run only this case (repeatable)"
    )
    args = parser.parse_args(argv)

    from repro.runtime.bench import report_comparison, run_bench

    document = run_bench(args.out, cases=args.case)
    print(json.dumps(document, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if args.compare is not None:
        return report_comparison(document, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
