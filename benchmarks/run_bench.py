#!/usr/bin/env python
"""Standalone entry point for the machine-readable benchmark runner.

Equivalent to ``python -m repro bench``; see :mod:`repro.runtime.bench` for
the case registry.  Writes ``BENCH_PR9.json`` (override with ``--out``) so
every PR leaves a comparable perf trajectory, and ``--compare`` diffs the
fresh run against an earlier document (cases present in only one document
are listed, not errors), exiting with code 3 on >20% regressions — distinct
from crashes so CI can warn on the former and gate on the latter::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --compare BENCH_PR5.json
    PYTHONPATH=src python benchmarks/run_bench.py --quick --out /tmp/bench.json
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out", "--output", dest="out", default="BENCH_PR9.json", help="JSON document to write"
    )
    parser.add_argument(
        "--compare",
        default=None,
        help="earlier benchmark JSON to diff against (nonzero exit on >20%% regressions)",
    )
    parser.add_argument(
        "--case", action="append", default=None, help="run only this case (repeatable)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="run only the fast smoke subset of cases"
    )
    args = parser.parse_args(argv)

    from repro.runtime.bench import report_comparison, run_bench

    document = run_bench(args.out, cases=args.case, quick=args.quick)
    print(json.dumps(document, indent=2))
    print(f"wrote {args.out}", file=sys.stderr)
    if args.compare is not None:
        return report_comparison(document, args.compare)
    return 0


if __name__ == "__main__":
    sys.exit(main())
