#!/usr/bin/env python
"""Standalone entry point for the machine-readable benchmark runner.

Equivalent to ``python -m repro bench``; see :mod:`repro.runtime.bench` for
the case registry.  Writes ``BENCH_PR3.json`` (override with ``--output``)
so every PR leaves a comparable perf trajectory::

    PYTHONPATH=src python benchmarks/run_bench.py
    PYTHONPATH=src python benchmarks/run_bench.py --output /tmp/bench.json --case wang_zhang_column_splice
"""

from __future__ import annotations

import argparse
import json
import sys


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default="BENCH_PR3.json", help="JSON document to write")
    parser.add_argument(
        "--case", action="append", default=None, help="run only this case (repeatable)"
    )
    args = parser.parse_args(argv)

    from repro.runtime.bench import run_bench

    document = run_bench(args.output, cases=args.case)
    print(json.dumps(document, indent=2))
    print(f"wrote {args.output}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
