"""E13 — sensitivity sweeps (extension benches beyond Table 1)."""

from __future__ import annotations

import pytest

from repro.experiments.sensitivity import (
    SensitivitySettings,
    run_outlier_sensitivity,
    run_support_size_sensitivity,
)


@pytest.fixture(scope="module")
def sensitivity_settings() -> SensitivitySettings:
    return SensitivitySettings.quick()


def test_bench_e13a_outlier_sensitivity(benchmark, sensitivity_settings):
    record = benchmark.pedantic(run_outlier_sensitivity, args=(sensitivity_settings,), iterations=1, rounds=1)
    # The denominator is only a lower bound on the optimum (loose under
    # heavy-tailed noise), so the check is that the ratio stays bounded as the
    # outlier mass grows — the exact (2+f) guarantee is verified against
    # brute-force references in E6/E7 and the property tests.
    assert record.summary["ratio_bounded"], record.summary


def test_bench_e13b_support_size_sensitivity(benchmark, sensitivity_settings):
    record = benchmark.pedantic(
        run_support_size_sensitivity, args=(sensitivity_settings,), iterations=1, rounds=1
    )
    assert record.summary["time_subquadratic_in_z"], record.summary
    # The objective should not blow up as more locations are added at fixed scale.
    assert record.summary["cost_spread"] <= 3.0
