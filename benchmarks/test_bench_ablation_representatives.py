"""E12 — ablations: representative construction and assignment rule."""

from __future__ import annotations

from repro.experiments.ablation import run_assignment_ablation, run_representative_ablation


def test_bench_e12a_representative_ablation(benchmark, ablation_settings):
    record = benchmark(run_representative_ablation, ablation_settings)
    means = record.summary
    # All three representatives must produce finite, positive costs; the
    # paper's choices (expected point / 1-center) should not be dramatically
    # worse than the medoid heuristic on average.
    assert all(value > 0 for value in means.values())
    assert means["mean_cost_expected_point"] <= 2.0 * means["mean_cost_medoid"]
    assert means["mean_cost_one_center"] <= 2.0 * means["mean_cost_medoid"]


def test_bench_e12b_assignment_ablation(benchmark, ablation_settings):
    record = benchmark(run_assignment_ablation, ablation_settings)
    means = record.summary
    assert all(value > 0 for value in means.values())
    # The naive nearest-mode assignment should never beat the paper's
    # expected-distance rule by a large margin (it has no guarantee at all).
    assert means["mean_cost_expected_distance"] <= 1.5 * means["mean_cost_nearest_mode_location"]
