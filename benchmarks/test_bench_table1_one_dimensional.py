"""E8 — Table 1 row 8: R^1 unrestricted assigned via Theorem 2.3 (factor 3)."""

from __future__ import annotations

from repro.experiments.table1 import run_e8_one_dimensional


def test_bench_e8_one_dimensional(benchmark, table1_settings):
    record = benchmark(run_e8_one_dimensional, table1_settings)
    assert record.summary["within_bound"], record.summary
    assert record.summary["worst_ratio"] <= 3.0 + 1e-9
