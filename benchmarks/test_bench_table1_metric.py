"""E9 — Table 1 row 9: unrestricted assigned in a general (graph) metric."""

from __future__ import annotations

from repro.experiments.table1 import run_e9_general_metric


def test_bench_e9_general_metric(benchmark, table1_settings):
    record = benchmark(run_e9_general_metric, table1_settings)
    assert record.summary["within_bound"], record.summary
    # Gonzalez instantiation of Theorems 2.7 / 2.6: factors 3+2*2=7 and 5+2*2=9.
    assert record.summary["worst_ratio_one_center"] <= 7.0 + 1e-9
    assert record.summary["worst_ratio_expected_distance"] <= 9.0 + 1e-9
