"""Quickstart: cluster a handful of uncertain points and inspect the result.

Run with ``python examples/quickstart.py``.

The scenario: three sensors report the position of six objects, but each
sensor is noisy, so every object has a few possible locations with known
probabilities.  We want two "service centers" minimising the expected
worst-case distance from any object to the center it is assigned to.
"""

from __future__ import annotations

import numpy as np

from repro import (
    UncertainDataset,
    UncertainPoint,
    brute_force_unrestricted_assigned,
    expected_cost_unassigned,
    solve_restricted_assigned,
    solve_unrestricted_assigned,
)


def build_dataset() -> UncertainDataset:
    """Six objects, each with two or three possible positions in the plane."""
    raw = [
        # (locations, probabilities)
        ([[0.0, 0.0], [0.4, 0.1], [0.1, 0.5]], [0.6, 0.3, 0.1]),
        ([[0.8, 0.2], [1.1, -0.1]], [0.5, 0.5]),
        ([[0.3, 0.9], [0.2, 1.2], [0.6, 1.0]], [0.4, 0.4, 0.2]),
        ([[6.0, 5.5], [6.2, 5.8]], [0.7, 0.3]),
        ([[6.5, 6.2], [6.4, 5.9], [7.0, 6.0]], [0.3, 0.5, 0.2]),
        ([[5.8, 6.4], [6.1, 6.6]], [0.5, 0.5]),
    ]
    points = [
        UncertainPoint(locations=np.array(locations), probabilities=np.array(probabilities), label=f"object-{index}")
        for index, (locations, probabilities) in enumerate(raw)
    ]
    return UncertainDataset(points=tuple(points))


def main() -> None:
    dataset = build_dataset()
    print(f"dataset: n={dataset.size} uncertain points, z<={dataset.max_support_size}, d={dataset.dimension}")

    # The paper's unrestricted assigned algorithm (Theorem 2.5): reduce to
    # expected points, run a refined deterministic solver, assign by expected
    # point.  The guarantee is (2 + f) times the unrestricted optimum.
    result = solve_unrestricted_assigned(dataset, k=2, solver="epsilon", epsilon=0.1)
    print("\nunrestricted assigned solution (Theorem 2.5):")
    print(" ", result.summary())
    for index, center in enumerate(result.centers):
        members = [dataset.points[i].label for i in np.flatnonzero(result.assignment == index)]
        print(f"  center[{index}] at {np.round(center, 3).tolist()} serves {members}")

    # Same reduction under the expected-distance assignment (Theorem 2.2 /
    # 2.4) for comparison.
    ed_result = solve_restricted_assigned(dataset, k=2, assignment="expected-distance", solver="epsilon")
    print("\nrestricted assigned solution (expected-distance rule, Theorem 2.2):")
    print(" ", ed_result.summary())

    # Ground truth on this micro instance: brute force over a rich candidate
    # set with the optimal assignment.
    reference = brute_force_unrestricted_assigned(dataset, k=2)
    print("\nbrute-force reference:")
    print(" ", reference.summary())
    ratio = result.expected_cost / reference.expected_cost
    print(f"\nempirical ratio vs reference: {ratio:.3f} (guarantee {result.guaranteed_factor:.2f})")

    # The centers can also be scored under the unassigned objective.
    unassigned = expected_cost_unassigned(dataset, result.centers)
    print(f"unassigned expected cost of the same centers: {unassigned:.4f}")


if __name__ == "__main__":
    main()
