"""Fleet tracking: heavy-tailed uncertainty, ablations and the k-median extension.

Run with ``python examples/fleet_tracking_extensions.py``.

The scenario: a logistics fleet reports GPS fixes that are usually accurate
but occasionally wildly wrong (multipath / spoofed fixes).  Each vehicle is an
uncertain point whose location distribution has a low-probability far-away
outlier.  The example shows:

1. how the choice of representative (expected point vs per-point 1-center)
   matters under heavy-tailed noise — the ablation the paper's design invites;
2. the k-median extension announced in the paper's conclusion (expected sum
   instead of expected maximum);
3. dataset serialization round-tripping (JSON), the hand-off format the CLI's
   ``solve`` sub-command consumes.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ExpectedDistanceAssignment,
    UncertainDataset,
    expected_cost_assigned,
    gonzalez_kcenter,
    heavy_tailed,
    reduce_dataset,
    solve_uncertain_kmedian,
    solve_unrestricted_assigned,
)


def representative_ablation(dataset: UncertainDataset, k: int) -> None:
    """Compare the three representative constructions on the same instance."""
    policy = ExpectedDistanceAssignment()
    print("representative ablation (same Gonzalez solver + ED assignment):")
    for kind in ("expected-point", "one-center", "medoid"):
        representatives = reduce_dataset(dataset, kind)
        centers = gonzalez_kcenter(representatives, k, dataset.metric).centers
        cost = expected_cost_assigned(dataset, centers, policy(dataset, centers))
        print(f"  {kind:>15}: expected cost {cost:.4f}")


def main() -> None:
    dataset, spec = heavy_tailed(n=50, z=5, dimension=2, outlier_probability=0.08, seed=3)
    print(f"workload: {spec.describe()} (GPS fixes with rare far outliers)")

    k = 4
    result = solve_unrestricted_assigned(dataset, k, assignment="expected-point", solver="epsilon")
    print("\npaper k-center pipeline (Theorem 2.5):")
    print(" ", result.summary())

    print()
    representative_ablation(dataset, k)

    # k-median extension: minimise the expected *sum* of distances instead of
    # the expected maximum (the paper's announced future work).
    median_result = solve_uncertain_kmedian(dataset, k)
    print("\nk-median extension (expected total travel instead of worst case):")
    print(" ", median_result.summary())

    # Serialization round trip.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "fleet.json"
        dataset.save_json(path)
        restored = UncertainDataset.load_json(path)
        same = restored.size == dataset.size and np.allclose(
            restored.all_locations(), dataset.all_locations()
        )
        print(f"\nserialization round trip via {path.name}: {'ok' if same else 'MISMATCH'}")


if __name__ == "__main__":
    main()
