"""Facility placement on a sensor-network graph metric (Theorems 2.6/2.7).

Run with ``python examples/sensor_network_graph.py``.

The scenario: mobile assets move around a sensor network (a weighted graph);
each asset's position is only known up to a small neighbourhood of nodes with
probabilities estimated from past observations.  We must place ``k``
maintenance stations *on nodes of the network* minimising the expected
worst-case shortest-path distance from any asset to its station.

This is exactly the paper's general-metric setting: expected points do not
exist on a graph, so each asset is summarised by its per-point 1-center and
the deterministic k-center runs on those representatives (Theorem 2.7 gives a
``3 + 2f`` guarantee with the 1-center assignment).
"""

from __future__ import annotations

import numpy as np

from repro import (
    brute_force_unrestricted_assigned,
    graph_uncertain_workload,
    guha_munagala_baseline,
    solve_metric_unrestricted,
)


def main() -> None:
    dataset, spec = graph_uncertain_workload(
        n=20, z=4, node_count=40, model="watts-strogatz", locality=2, seed=7
    )
    metric = dataset.metric
    print(f"workload: {spec.describe()} on a graph metric with {metric.size} nodes")

    # Paper algorithm: 1-center representatives + Gonzalez + OC assignment.
    result = solve_metric_unrestricted(dataset, k=3, assignment="one-center", solver="gonzalez")
    print("\npaper algorithm (Theorem 2.7, Gonzalez solver):")
    print(" ", result.summary())
    station_nodes = [metric.node_of(center) for center in result.centers]
    print(f"  stations on nodes: {station_nodes}")

    # Variant with the expected-distance assignment (Theorem 2.6).
    ed_result = solve_metric_unrestricted(dataset, k=3, assignment="expected-distance")
    print("\npaper algorithm (Theorem 2.6, expected-distance assignment):")
    print(" ", ed_result.summary())

    # Prior-work-style baseline and a brute-force reference (the graph is
    # finite, so the reference is exact over all node subsets up to the
    # assignment polish).
    baseline = guha_munagala_baseline(dataset, k=3)
    reference = brute_force_unrestricted_assigned(dataset, k=3)
    print("\ncomparison:")
    print(f"  Guha-Munagala-style baseline cost: {baseline.expected_cost:.4f}")
    print(f"  brute-force reference cost:        {reference.expected_cost:.4f}")
    print(f"  paper algorithm cost:              {result.expected_cost:.4f}")
    ratio = result.expected_cost / reference.expected_cost
    print(f"  empirical ratio vs reference:      {ratio:.3f} (guarantee {result.guaranteed_factor:.1f})")

    # Show the assignment for a few assets.
    print("\nsample assignments (asset -> station node):")
    for index in range(min(5, dataset.size)):
        station = metric.node_of(result.centers[result.assignment[index]])
        locations = [metric.node_of(loc) for loc in dataset.points[index].locations]
        print(f"  {dataset.points[index].label}: possible nodes {locations} -> station {station}")


if __name__ == "__main__":
    main()
