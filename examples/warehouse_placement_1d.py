"""Warehouse placement along a highway corridor (the R^1 special case).

Run with ``python examples/warehouse_placement_1d.py``.

The scenario: delivery demand points sit along a single highway (positions in
kilometres).  Each demand point's exact position on a given day is uncertain
(a few possible mileposts with probabilities).  We choose ``k`` warehouse
positions minimising the expected worst-case distance to the warehouse each
demand point is contracted to.

The paper's pipeline for R^1: solve the restricted assigned problem under the
expected-distance rule (Wang–Zhang's setting) and invoke Theorem 2.3 — the
optimal ED-restricted solution is a 3-approximation for the unrestricted
assigned optimum.
"""

from __future__ import annotations

import numpy as np

from repro import (
    brute_force_unrestricted_assigned,
    line_workload,
    solve_unrestricted_assigned,
    wang_zhang_1d,
)


def main() -> None:
    dataset, spec = line_workload(n=18, z=3, segment_count=3, segment_length=12.0, gap=40.0, seed=11)
    print(f"workload: {spec.describe()} (positions along a highway, km)")

    # Wang–Zhang-style solver for the ED-restricted objective; by Theorem 2.3
    # its optimum is within 3x of the unrestricted optimum.
    wz = wang_zhang_1d(dataset, k=3)
    print("\nWang-Zhang-style 1-D solver (expected-distance assignment):")
    print(" ", wz.summary())
    print(f"  warehouse positions (km): {np.round(wz.centers.reshape(-1), 2).tolist()}")

    # The general Euclidean pipeline also applies in R^1.
    general = solve_unrestricted_assigned(dataset, k=3, assignment="expected-point", solver="epsilon")
    print("\ngeneral Euclidean pipeline (Theorem 2.5):")
    print(" ", general.summary())

    # Micro-instance reference.
    reference = brute_force_unrestricted_assigned(dataset, k=3)
    print("\nbrute-force reference:")
    print(" ", reference.summary())
    print(f"\nempirical ratios vs reference: "
          f"Wang-Zhang {wz.expected_cost / reference.expected_cost:.3f} (Theorem 2.3 bound 3.0), "
          f"Euclidean pipeline {general.expected_cost / reference.expected_cost:.3f} "
          f"(bound {general.guaranteed_factor:.2f})")


if __name__ == "__main__":
    main()
