"""Deterministic k-supplier: k-center with centers restricted to facilities.

In the k-supplier problem the points to cover (*clients*) and the candidate
center positions (*facilities*) are different sets, and centers may only be
opened at facilities.  This is the deterministic substrate for the
facility-restricted uncertain k-center variant
(:func:`repro.algorithms.discrete_centers.solve_facility_restricted`), the
natural database formulation where service can only be placed at existing
sites.

The classical Hochbaum–Shmoys threshold algorithm gives a 3-approximation:
for a guessed radius ``r`` (binary searched over the client-facility
distances), greedily pick an uncovered client, open *any* facility within
``r`` of it and mark every client within ``3r`` of that facility as covered;
the smallest feasible ``r`` yields a solution of radius at most ``3 r* ``.
An exact solver (branch-and-bound set cover over facilities) is provided for
small instances and for tests.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..exceptions import InfeasibleError, ValidationError
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from .exact import _cover_with_k_sets
from .result import KCenterResult


def _assign_clients(clients: np.ndarray, centers: np.ndarray, metric: Metric) -> tuple[np.ndarray, np.ndarray]:
    matrix = metric.pairwise(clients, centers)
    labels = matrix.argmin(axis=1)
    distances = matrix[np.arange(clients.shape[0]), labels]
    return labels.astype(int), distances


def k_supplier(
    clients: np.ndarray,
    facilities: np.ndarray,
    k: int,
    metric: Metric | None = None,
) -> KCenterResult:
    """Hochbaum–Shmoys 3-approximation for the k-supplier problem."""
    clients = as_point_array(clients, name="clients")
    facilities = as_point_array(facilities, name="facilities")
    metric = metric or EuclideanMetric()
    k = min(check_positive_int(k, name="k"), facilities.shape[0])

    client_facility = metric.pairwise(clients, facilities)
    client_client = metric.pairwise(clients, clients)
    radii = np.unique(client_facility)

    best: tuple[float, list[int]] | None = None
    low, high = 0, radii.shape[0] - 1
    while low <= high:
        mid = (low + high) // 2
        radius = float(radii[mid])
        opened = _threshold_open(client_facility, client_client, radius, k)
        if opened is not None:
            best = (radius, opened)
            high = mid - 1
        else:
            low = mid + 1
    if best is None:
        raise InfeasibleError("no radius allows covering every client with k facilities")

    _, opened = best
    centers = facilities[opened]
    labels, distances = _assign_clients(clients, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=3.0,
        metadata={"algorithm": "hochbaum-shmoys-supplier", "facility_indices": tuple(opened)},
    )


def _threshold_open(
    client_facility: np.ndarray,
    client_client: np.ndarray,
    radius: float,
    k: int,
) -> list[int] | None:
    """Greedy opening for a guessed radius; None when more than k open."""
    n_clients = client_facility.shape[0]
    uncovered = np.ones(n_clients, dtype=bool)
    opened: list[int] = []
    while uncovered.any():
        client = int(np.flatnonzero(uncovered)[0])
        nearby = np.flatnonzero(client_facility[client] <= radius + 1e-12)
        if nearby.shape[0] == 0:
            return None
        facility = int(nearby[0])
        opened.append(facility)
        if len(opened) > k:
            return None
        uncovered &= client_facility[:, facility] > 3.0 * radius + 1e-12
    return opened


def exact_k_supplier(
    clients: np.ndarray,
    facilities: np.ndarray,
    k: int,
    metric: Metric | None = None,
) -> KCenterResult:
    """Exact k-supplier by radius binary search + set-cover branch and bound.

    Intended for small instances (ground truth in tests and experiments).
    """
    clients = as_point_array(clients, name="clients")
    facilities = as_point_array(facilities, name="facilities")
    metric = metric or EuclideanMetric()
    k = min(check_positive_int(k, name="k"), facilities.shape[0])
    if clients.shape[0] > 200 or facilities.shape[0] > 200:
        raise ValidationError("exact_k_supplier is intended for small instances (<= 200 clients/facilities)")

    matrix = metric.pairwise(facilities, clients)
    radii = np.unique(matrix)
    best: tuple[float, list[int]] | None = None
    low, high = 0, radii.shape[0] - 1
    while low <= high:
        mid = (low + high) // 2
        radius = float(radii[mid])
        chosen = _cover_with_k_sets(matrix <= radius + 1e-12, k)
        if chosen is not None:
            best = (radius, chosen)
            high = mid - 1
        else:
            low = mid + 1
    if best is None:
        raise InfeasibleError("no radius allows covering every client with k facilities")
    _, chosen = best
    centers = facilities[chosen]
    labels, distances = _assign_clients(clients, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=1.0,
        metadata={"algorithm": "exact-supplier", "facility_indices": tuple(chosen)},
    )
