"""Exact deterministic k-center solvers for small instances.

These solvers are the ground truth the experiments divide by when reporting
empirical approximation ratios.  Two variants:

* :func:`exact_discrete_kcenter` — centers restricted to a finite candidate
  set (the input points by default; every element of a finite metric).  It
  binary-searches the sorted candidate radii and decides feasibility of each
  radius exactly with a set-cover branch-and-bound.  Exponential in the worst
  case but fast for the instance sizes used as ground truth (n up to ~60,
  k up to ~6).
* :func:`exact_euclidean_kcenter` — the *continuous* Euclidean optimum,
  obtained by enumerating partitions of the points into at most ``k`` groups
  and taking the smallest enclosing ball of each group.  Feasible only for
  tiny ``n`` (<= ~12); used to validate the discrete solvers and the paper's
  factor claims on micro instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..exceptions import ValidationError
from ..geometry.seb import smallest_enclosing_ball
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from .assign import assign_to_nearest
from .result import KCenterResult

#: Safety cap on the partition-enumeration solver.
MAX_EXACT_PARTITION_POINTS = 13
#: Safety cap on the candidate-set branch and bound.
MAX_EXACT_DISCRETE_POINTS = 400


def _cover_with_k_sets(coverage: np.ndarray, k: int) -> list[int] | None:
    """Decide whether ``k`` candidate rows of ``coverage`` cover all columns.

    ``coverage[c, p]`` is true when candidate ``c`` covers point ``p``.
    Returns the chosen candidate indices or ``None``.  Branch and bound on the
    least-covered uncovered point; candidates covering it are tried in order
    of decreasing coverage.
    """
    n_candidates, n_points = coverage.shape
    if n_points == 0:
        return []

    def recurse(uncovered: np.ndarray, budget: int) -> list[int] | None:
        if not uncovered.any():
            return []
        if budget == 0:
            return None
        sub = coverage[:, uncovered]
        # Point with fewest covering candidates: the strongest branching pivot.
        per_point = sub.sum(axis=0)
        if np.any(per_point == 0):
            return None
        uncovered_indices = np.flatnonzero(uncovered)
        pivot = uncovered_indices[int(np.argmin(per_point))]
        candidates_for_pivot = np.flatnonzero(coverage[:, pivot])
        # Try candidates covering the most uncovered points first.
        gain = coverage[candidates_for_pivot][:, uncovered].sum(axis=1)
        for candidate in candidates_for_pivot[np.argsort(-gain)]:
            remaining = uncovered & ~coverage[candidate]
            solution = recurse(remaining, budget - 1)
            if solution is not None:
                return [int(candidate)] + solution
        return None

    return recurse(np.ones(n_points, dtype=bool), k)


def exact_discrete_kcenter(
    points: np.ndarray,
    k: int,
    metric: Metric | None = None,
    candidates: np.ndarray | None = None,
) -> KCenterResult:
    """Optimal k-center with centers restricted to a finite candidate set.

    Raises
    ------
    ValidationError
        If the instance exceeds :data:`MAX_EXACT_DISCRETE_POINTS` points
        (the decision subproblem is NP-hard; this solver is for ground truth
        on small instances only).
    """
    points = as_point_array(points)
    metric = metric or EuclideanMetric()
    n = points.shape[0]
    if n > MAX_EXACT_DISCRETE_POINTS:
        raise ValidationError(
            f"exact_discrete_kcenter supports at most {MAX_EXACT_DISCRETE_POINTS} points, got {n}"
        )
    k = min(check_positive_int(k, name="k"), n)
    if candidates is None:
        candidates = metric.candidate_centers(points)
    candidates = as_point_array(candidates, name="candidates")

    matrix = metric.pairwise(candidates, points)
    radii = np.unique(matrix)
    low, high = 0, radii.shape[0] - 1
    best: tuple[float, list[int]] | None = None
    while low <= high:
        mid = (low + high) // 2
        radius = float(radii[mid])
        chosen = _cover_with_k_sets(matrix <= radius + 1e-12, k)
        if chosen is not None:
            best = (radius, chosen)
            high = mid - 1
        else:
            low = mid + 1
    if best is None:  # pragma: no cover - the max radius always covers
        raise RuntimeError("no feasible radius found; this should be impossible")

    _, chosen = best
    centers = candidates[chosen]
    labels, distances = assign_to_nearest(points, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=1.0,
        metadata={"algorithm": "exact-discrete", "candidate_count": int(candidates.shape[0])},
    )


def _partitions_into_at_most_k(n: int, k: int) -> Iterable[list[list[int]]]:
    """Yield set partitions of ``range(n)`` into at most ``k`` blocks.

    Uses restricted-growth strings so each partition is generated once.
    """
    assignment = [0] * n

    def recurse(index: int, used: int):
        if index == n:
            blocks: list[list[int]] = [[] for _ in range(used)]
            for element, block in enumerate(assignment):
                blocks[block].append(element)
            yield blocks
            return
        for block in range(min(used + 1, k)):
            assignment[index] = block
            yield from recurse(index + 1, max(used, block + 1))

    yield from recurse(0, 0)


def exact_euclidean_kcenter(points: np.ndarray, k: int) -> KCenterResult:
    """Continuous Euclidean optimum by enumerating partitions (tiny n only).

    Every optimal solution induces a partition of the points into at most
    ``k`` clusters, and each cluster's best center is the center of its
    smallest enclosing ball; enumerating partitions is therefore exact.
    """
    points = as_point_array(points)
    n = points.shape[0]
    if n > MAX_EXACT_PARTITION_POINTS:
        raise ValidationError(
            f"exact_euclidean_kcenter supports at most {MAX_EXACT_PARTITION_POINTS} points, got {n}"
        )
    k = min(check_positive_int(k, name="k"), n)

    metric = EuclideanMetric()
    best_radius = np.inf
    best_centers: np.ndarray | None = None
    for blocks in _partitions_into_at_most_k(n, k):
        centers = []
        radius = 0.0
        for block in blocks:
            ball = smallest_enclosing_ball(points[block])
            centers.append(ball.center)
            radius = max(radius, ball.radius)
            if radius >= best_radius:
                break
        else:
            if radius < best_radius:
                best_radius = radius
                best_centers = np.asarray(centers)
    assert best_centers is not None
    labels, distances = assign_to_nearest(points, best_centers, metric)
    return KCenterResult(
        centers=best_centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=1.0,
        metadata={"algorithm": "exact-euclidean-partition"},
    )


def exact_kcenter_by_center_subsets(
    points: np.ndarray,
    k: int,
    metric: Metric | None = None,
    candidates: np.ndarray | None = None,
    *,
    max_combinations: int = 2_000_000,
) -> KCenterResult:
    """Optimal discrete k-center by brute force over candidate subsets.

    A slower but conceptually simple cross-check for
    :func:`exact_discrete_kcenter` (used in tests).  Enumerates all
    ``C(m, k)`` candidate subsets.
    """
    points = as_point_array(points)
    metric = metric or EuclideanMetric()
    if candidates is None:
        candidates = metric.candidate_centers(points)
    candidates = as_point_array(candidates, name="candidates")
    m = candidates.shape[0]
    k = min(check_positive_int(k, name="k"), m)

    from math import comb

    if comb(m, k) > max_combinations:
        raise ValidationError(
            f"brute force over C({m}, {k}) candidate subsets exceeds the safety cap"
        )
    matrix = metric.pairwise(points, candidates)
    best_radius = np.inf
    best_subset: tuple[int, ...] | None = None
    for subset in combinations(range(m), k):
        radius = float(matrix[:, subset].min(axis=1).max())
        if radius < best_radius:
            best_radius = radius
            best_subset = subset
    assert best_subset is not None
    centers = candidates[list(best_subset)]
    labels, distances = assign_to_nearest(points, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=1.0,
        metadata={"algorithm": "exact-subset-bruteforce", "subset": best_subset},
    )
