"""Exact k-center on the real line.

The deterministic 1-D k-center problem is solvable in ``O(n log n)`` time
(Megiddo et al.; the paper cites [24]).  We use the textbook approach:

* the objective is a radius ``r`` such that the sorted points can be covered
  by ``k`` intervals of length ``2r``;
* coverage by intervals is monotone in ``r`` and checkable greedily in
  ``O(n)`` after sorting;
* the optimal ``r`` is always half the gap between two input points, i.e. of
  the form ``(x_j - x_i) / 2``; rather than enumerate all ``O(n^2)``
  candidates we binary search on the value of ``r`` over the reals to the
  requested precision and then snap to the best exact candidate in a narrow
  window, which keeps the run time ``O(n log n + n log(1/eps))``.

For the library's purposes (sub-routine of the Wang–Zhang-style baseline and
the E8 experiment) we expose both the decision procedure and the optimiser.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from .result import KCenterResult


def _assign_one_dimensional(points: np.ndarray, centers: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-center assignment computed directly on the line.

    Uses plain absolute differences (not the generic Euclidean pairwise
    expansion) so the reported radius stays exact even when centers coincide
    with far-from-origin points.
    """
    gaps = np.abs(points[:, 0][:, None] - centers[:, 0][None, :])
    labels = gaps.argmin(axis=1)
    distances = gaps[np.arange(points.shape[0]), labels]
    return labels.astype(int), distances


def intervals_needed(sorted_values: np.ndarray, radius: float) -> int:
    """Number of radius-``radius`` intervals needed to cover sorted values."""
    count = 0
    index = 0
    n = sorted_values.shape[0]
    while index < n:
        count += 1
        right_edge = sorted_values[index] + 2.0 * radius
        # Skip every value covered by an interval centered at value+radius.
        index = int(np.searchsorted(sorted_values, right_edge, side="right"))
    return count


def one_dimensional_kcenter(points: np.ndarray, k: int, *, tolerance: float = 1e-12) -> KCenterResult:
    """Exact (to floating point) k-center of points on the real line."""
    points = as_point_array(points)
    if points.shape[1] != 1:
        raise ValueError(f"one_dimensional_kcenter expects 1-D points, got dimension {points.shape[1]}")
    k = check_positive_int(k, name="k")
    values = np.sort(points[:, 0])
    n = values.shape[0]
    if k >= n:
        centers = np.unique(values).reshape(-1, 1)[:k]
        labels, distances = _assign_one_dimensional(points, centers)
        return KCenterResult(
            centers=centers,
            labels=labels,
            radius=float(distances.max()),
            approximation_factor=1.0,
            metadata={"algorithm": "exact-1d"},
        )

    low, high = 0.0, float(values[-1] - values[0]) / 2.0
    # Binary search on the radius; the feasibility check is monotone.
    for _ in range(200):
        if high - low <= tolerance * max(1.0, high):
            break
        mid = (low + high) / 2.0
        if intervals_needed(values, mid) <= k:
            high = mid
        else:
            low = mid
    radius = high

    # Rebuild the actual centers with a greedy sweep at the final radius.
    centers: list[float] = []
    index = 0
    while index < n and len(centers) < k:
        left = values[index]
        center = left + radius
        centers.append(center)
        index = int(np.searchsorted(values, center + radius + 1e-15, side="right"))
    centers_array = np.asarray(centers).reshape(-1, 1)
    labels, distances = _assign_one_dimensional(points, centers_array)
    return KCenterResult(
        centers=centers_array,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=1.0,
        metadata={"algorithm": "exact-1d", "search_radius": radius},
    )
