"""Refined Euclidean k-center solver playing the paper's ``(1+ε)`` black box.

The paper's Theorems 2.2–2.7 take "a (1+ε)-approximation solution for the
k-center problem for P̄_1 ... P̄_n" as a black box, citing e.g.
Badoiu–Har-Peled–Indyk and Agarwal–Procopiuc.  This module provides a
practical stand-in with an *honest certificate*:

1. seed with Gonzalez (factor 2), which also yields the lower bound
   ``opt >= r_G / 2``;
2. refine by Lloyd-style alternation (reassign, recenter each cluster at its
   smallest enclosing ball) — monotone, never worse than the seed;
3. optionally run a swap-based local search over a capped lattice of
   candidate centers around each cluster.

The returned :class:`KCenterResult` reports
``approximation_factor = radius / (r_G / 2)`` (capped at 2): the factor that
is *certified* for this instance.  On the well-separated workloads used in
the experiments this certificate is typically well below ``1 + ε`` for the
requested ε, which is exactly the role the black box plays in the paper's
bounds; the certificate propagates into the uncertain-solver results so
end-to-end factors are always honest.
"""

from __future__ import annotations

from itertools import product

import numpy as np

from .._validation import as_point_array, check_epsilon, check_positive_int
from ..geometry.seb import smallest_enclosing_ball
from ..metrics.euclidean import EuclideanMetric
from .assign import assign_to_nearest
from .gonzalez import gonzalez_kcenter
from .result import KCenterResult

#: Dimension cap for the lattice local search (candidate count grows as
#: ``(1/eps)^d``).
GRID_SEARCH_MAX_DIMENSION = 3
#: Cap on the total number of lattice candidates generated per run.
GRID_SEARCH_MAX_CANDIDATES = 4_096


def refine_centers_by_seb(
    points: np.ndarray,
    centers: np.ndarray,
    *,
    max_rounds: int = 50,
    tolerance: float = 1e-12,
) -> tuple[np.ndarray, float]:
    """Alternate nearest-center assignment and per-cluster SEB recentering.

    Returns the refined centers and the resulting k-center radius.  The
    radius never increases relative to the input centers.
    """
    points = as_point_array(points)
    metric = EuclideanMetric()
    centers = as_point_array(centers, name="centers").copy()
    labels, distances = assign_to_nearest(points, centers, metric)
    best_radius = float(distances.max())
    best_centers = centers.copy()
    for _ in range(max_rounds):
        new_centers = centers.copy()
        for center_index in range(centers.shape[0]):
            members = points[labels == center_index]
            if members.shape[0] > 0:
                new_centers[center_index] = smallest_enclosing_ball(members).center
        labels, distances = assign_to_nearest(points, new_centers, metric)
        radius = float(distances.max())
        centers = new_centers
        if radius < best_radius - tolerance * max(1.0, best_radius):
            best_radius = radius
            best_centers = new_centers.copy()
        else:
            break
    return best_centers, best_radius


def _lattice_candidates(points: np.ndarray, labels: np.ndarray, k: int, target_spacing: float) -> np.ndarray:
    """Lattice candidates around each cluster, capped in total count.

    The spacing is widened as needed so the total candidate count stays under
    :data:`GRID_SEARCH_MAX_CANDIDATES`.
    """
    dim = points.shape[1]
    per_cluster = max(GRID_SEARCH_MAX_CANDIDATES // max(k, 1), 8)
    blocks: list[np.ndarray] = []
    for center_index in range(k):
        members = points[labels == center_index]
        if members.shape[0] == 0:
            continue
        lower = members.min(axis=0)
        upper = members.max(axis=0)
        extent = np.maximum(upper - lower, 1e-12)
        spacing = max(target_spacing, float(extent.max()) / max(per_cluster ** (1.0 / dim) - 1.0, 1.0))
        axes = [np.arange(lower[d], upper[d] + spacing, spacing) for d in range(dim)]
        count = int(np.prod([len(a) for a in axes]))
        if count > per_cluster * 4:
            continue
        blocks.append(np.array(list(product(*axes))))
    if not blocks:
        return np.empty((0, dim))
    return np.vstack(blocks)


def _swap_local_search(
    points: np.ndarray,
    centers: np.ndarray,
    candidates: np.ndarray,
    *,
    max_rounds: int = 10,
) -> tuple[np.ndarray, float]:
    """Single-center swap local search over a finite candidate set."""
    metric = EuclideanMetric()
    centers = centers.copy()
    point_to_center = metric.pairwise(points, centers)
    point_to_candidate = metric.pairwise(points, candidates)
    best_radius = float(point_to_center.min(axis=1).max())
    k = centers.shape[0]
    for _ in range(max_rounds):
        improved = False
        for center_index in range(k):
            others = np.delete(point_to_center, center_index, axis=1)
            base = others.min(axis=1) if others.shape[1] else np.full(points.shape[0], np.inf)
            # Radius achieved if center_index is replaced by each candidate.
            radii = np.maximum(0.0, np.minimum(base[:, None], point_to_candidate)).max(axis=0)
            best_candidate = int(np.argmin(radii))
            if radii[best_candidate] < best_radius - 1e-15:
                best_radius = float(radii[best_candidate])
                centers[center_index] = candidates[best_candidate]
                point_to_center[:, center_index] = point_to_candidate[:, best_candidate]
                improved = True
        if not improved:
            break
    return centers, best_radius


def epsilon_kcenter(
    points: np.ndarray,
    k: int,
    epsilon: float = 0.1,
    *,
    grid_search: bool | None = None,
    seed: int | np.random.Generator | None = 0,
) -> KCenterResult:
    """Euclidean k-center with a per-instance certified approximation factor.

    Parameters
    ----------
    points, k:
        The instance.
    epsilon:
        Requested slack; controls the lattice spacing of the optional grid
        search.  The reported ``approximation_factor`` is what was actually
        certified for this instance (never worse than 2).
    grid_search:
        Force the lattice swap search on or off.  The default (``None``) runs
        it only when the dimension is at most
        :data:`GRID_SEARCH_MAX_DIMENSION` and the instance is small enough
        for it to be cheap.
    seed:
        Randomness for the Gonzalez seed point.
    """
    points = as_point_array(points)
    metric = EuclideanMetric()
    k = min(check_positive_int(k, name="k"), points.shape[0])
    epsilon = check_epsilon(epsilon)

    seed_result = gonzalez_kcenter(points, k, metric, first_index=None, seed=seed)
    lower_bound = seed_result.radius / 2.0  # Gonzalez guarantee: opt >= r_G / 2.
    centers, radius = refine_centers_by_seb(points, seed_result.centers)
    used_algorithm = "gonzalez+seb-refine"

    if grid_search is None:
        grid_search = points.shape[1] <= GRID_SEARCH_MAX_DIMENSION and points.shape[0] <= 5_000
    if grid_search and lower_bound > 0 and points.shape[1] <= GRID_SEARCH_MAX_DIMENSION:
        spacing = max(epsilon, 1e-3) * lower_bound / np.sqrt(points.shape[1])
        labels, _ = assign_to_nearest(points, centers, metric)
        candidates = _lattice_candidates(points, labels, k, spacing)
        if candidates.shape[0] > 0:
            swapped_centers, swapped_radius = _swap_local_search(points, centers, candidates)
            if swapped_radius < radius:
                centers, radius = swapped_centers, swapped_radius
                centers, radius = refine_centers_by_seb(points, centers)
            used_algorithm = "gonzalez+seb-refine+grid-swap"

    labels, distances = assign_to_nearest(points, centers, metric)
    radius = float(distances.max())
    certified = max(1.0, min(2.0, radius / lower_bound)) if lower_bound > 0 else 1.0
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=radius,
        approximation_factor=float(certified),
        metadata={
            "algorithm": used_algorithm,
            "epsilon": epsilon,
            "gonzalez_radius": seed_result.radius,
            "lower_bound": lower_bound,
        },
    )
