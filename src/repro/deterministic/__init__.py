"""Deterministic (certain-points) k-center substrate.

The paper reduces the uncertain k-center problem to the classical
deterministic one on representative points; this subpackage provides every
deterministic solver the reductions and experiments need:

* :func:`gonzalez_kcenter` — Gonzalez farthest-point greedy, factor 2, any
  metric (the solver used in Remark 3.1 and the O(nz + n log k) Table 1 rows);
* :func:`hochbaum_shmoys_kcenter` — bottleneck threshold greedy, factor 2,
  discrete centers;
* :func:`epsilon_kcenter` — Euclidean (1+ε)-style solver (Gonzalez seed, SEB
  refinement, optional rigorous lattice search);
* :func:`exact_discrete_kcenter`, :func:`exact_euclidean_kcenter`,
  :func:`exact_kcenter_by_center_subsets` — ground-truth solvers for small
  instances;
* :func:`one_dimensional_kcenter` — exact k-center on the line;
* 1-center solvers (Euclidean SEB wrapper and discrete/weighted variants).
"""

from .assign import assign_to_nearest, coverage_radius_per_center, kcenter_cost
from .eps_approx import epsilon_kcenter, refine_centers_by_seb
from .exact import (
    MAX_EXACT_DISCRETE_POINTS,
    MAX_EXACT_PARTITION_POINTS,
    exact_discrete_kcenter,
    exact_euclidean_kcenter,
    exact_kcenter_by_center_subsets,
)
from .gonzalez import gonzalez_kcenter
from .hochbaum_shmoys import hochbaum_shmoys_kcenter
from .one_center import (
    discrete_one_center,
    discrete_weighted_one_center,
    euclidean_one_center,
    one_center_cost,
)
from .one_dimensional import intervals_needed, one_dimensional_kcenter
from .result import KCenterResult
from .supplier import exact_k_supplier, k_supplier

__all__ = [
    "KCenterResult",
    "assign_to_nearest",
    "kcenter_cost",
    "coverage_radius_per_center",
    "gonzalez_kcenter",
    "hochbaum_shmoys_kcenter",
    "epsilon_kcenter",
    "refine_centers_by_seb",
    "exact_discrete_kcenter",
    "exact_euclidean_kcenter",
    "exact_kcenter_by_center_subsets",
    "MAX_EXACT_DISCRETE_POINTS",
    "MAX_EXACT_PARTITION_POINTS",
    "one_dimensional_kcenter",
    "intervals_needed",
    "k_supplier",
    "exact_k_supplier",
    "euclidean_one_center",
    "discrete_one_center",
    "discrete_weighted_one_center",
    "one_center_cost",
]
