"""Result container shared by every deterministic k-center solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

import numpy as np


@dataclass(frozen=True)
class KCenterResult:
    """Outcome of a deterministic k-center computation.

    Attributes
    ----------
    centers:
        ``(k, d)`` array of chosen center positions.
    labels:
        For each input point, the index (into ``centers``) of its nearest
        center under the metric the solver used.
    radius:
        The solution's objective value ``max_i d(p_i, centers)``.
    approximation_factor:
        The factor guaranteed by the solver that produced this result
        (``1.0`` for exact solvers, ``2.0`` for Gonzalez, ``1 + eps`` for the
        epsilon refinement).  ``None`` when the solver offers no guarantee.
    metadata:
        Free-form extra information (iterations, candidate counts, ...).
    """

    centers: np.ndarray
    labels: np.ndarray
    radius: float
    approximation_factor: float | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Number of centers in the solution."""
        return int(self.centers.shape[0])

    def cluster_indices(self, center_index: int) -> np.ndarray:
        """Indices of the points assigned to center ``center_index``."""
        return np.flatnonzero(self.labels == center_index)

    def summary(self) -> str:
        """One-line human readable description."""
        factor = "exact" if self.approximation_factor == 1.0 else f"{self.approximation_factor}-approx" if self.approximation_factor else "heuristic"
        return f"k={self.k} radius={self.radius:.6g} ({factor})"
