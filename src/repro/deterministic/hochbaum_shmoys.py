"""Hochbaum–Shmoys style 2-approximation for the discrete k-center problem.

In the *discrete* k-center problem the centers must be chosen from the input
points (or, for a finite metric, from the space's elements).  The classical
bottleneck approach tries each candidate radius ``r`` from the sorted set of
pairwise distances and greedily picks maximal independent points; if at most
``k`` centers are selected, the optimal discrete radius is at most ``2r``.

We use the standard threshold-greedy: for a candidate radius ``r``, repeatedly
pick an uncovered point as a center and mark everything within ``2r`` of it as
covered.  A binary search over the sorted candidate radii finds the smallest
``r`` for which at most ``k`` centers suffice, giving a 2-approximation to the
discrete optimum (and therefore at most ``2 * optimal_continuous`` as well,
because the discrete optimum is at most twice the continuous one... we keep
the conservative factor 2 with respect to the *discrete* optimum).
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, check_positive_int
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from .assign import assign_to_nearest
from .result import KCenterResult


def _greedy_cover(matrix: np.ndarray, radius: float) -> list[int]:
    """Threshold greedy: centers chosen among points, covering within 2r."""
    n = matrix.shape[0]
    uncovered = np.ones(n, dtype=bool)
    centers: list[int] = []
    while uncovered.any():
        pick = int(np.flatnonzero(uncovered)[0])
        centers.append(pick)
        uncovered &= matrix[pick] > 2.0 * radius + 1e-12
    return centers


def hochbaum_shmoys_kcenter(
    points: np.ndarray,
    k: int,
    metric: Metric | None = None,
) -> KCenterResult:
    """Bottleneck threshold 2-approximation for discrete k-center.

    Runs in ``O(n^2 log n)`` time and ``O(n^2)`` memory (it materialises the
    pairwise distance matrix), so it is intended for the finite-metric
    experiments rather than very large Euclidean inputs.
    """
    points = as_point_array(points)
    metric = metric or EuclideanMetric()
    n = points.shape[0]
    k = min(check_positive_int(k, name="k"), n)

    matrix = metric.pairwise(points, points)
    candidate_radii = np.unique(matrix)
    low, high = 0, candidate_radii.shape[0] - 1
    best_centers = list(range(min(k, n)))
    best_radius_index = high
    while low <= high:
        mid = (low + high) // 2
        centers = _greedy_cover(matrix, float(candidate_radii[mid]))
        if len(centers) <= k:
            best_centers = centers
            best_radius_index = mid
            high = mid - 1
        else:
            low = mid + 1

    centers = points[best_centers]
    labels, distances = assign_to_nearest(points, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=2.0,
        metadata={
            "algorithm": "hochbaum-shmoys",
            "center_indices": tuple(best_centers),
            "threshold_radius": float(candidate_radii[best_radius_index]),
        },
    )
