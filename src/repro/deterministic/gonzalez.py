"""Gonzalez farthest-point greedy 2-approximation for k-center.

This is the deterministic solver the paper plugs into its reductions in
Remark 3.1: "There is a greedy 2-approximation algorithm for deterministic
k-center problem ... given in [13]" (Gonzalez 1985).  It works in any metric
space, runs in ``O(nk)`` distance evaluations (``O(n log k)`` is possible with
the Feder–Greene refinement, which we do not need for correctness), and the
chosen centers are always input points.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array, as_rng, check_positive_int
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from .assign import assign_to_nearest
from .result import KCenterResult


def gonzalez_kcenter(
    points: np.ndarray,
    k: int,
    metric: Metric | None = None,
    *,
    first_index: int | None = 0,
    seed: int | np.random.Generator | None = None,
) -> KCenterResult:
    """Farthest-point traversal producing a 2-approximate k-center solution.

    Parameters
    ----------
    points:
        ``(n, d)`` point array (or ``(n, 1)`` element indices for finite
        metrics).
    k:
        Number of centers; values larger than ``n`` are clamped to ``n``.
    metric:
        Metric to use; defaults to Euclidean.
    first_index:
        Index of the seed center.  The 2-approximation guarantee holds for
        any seed; pass ``None`` to pick one at random using ``seed``.
    seed:
        Randomness source used only when ``first_index`` is ``None``.
    """
    points = as_point_array(points)
    metric = metric or EuclideanMetric()
    n = points.shape[0]
    k = min(check_positive_int(k, name="k"), n)

    if first_index is None:
        first_index = int(as_rng(seed).integers(0, n))
    if not 0 <= first_index < n:
        raise IndexError(f"first_index {first_index} out of range [0, {n})")

    chosen = [first_index]
    # Distance from every point to the closest chosen center so far.
    nearest = metric.pairwise(points, points[first_index : first_index + 1]).reshape(-1)
    for _ in range(1, k):
        farthest = int(np.argmax(nearest))
        if nearest[farthest] == 0.0:
            # Fewer than k distinct points: stop early, the radius is 0.
            break
        chosen.append(farthest)
        new_distances = metric.pairwise(points, points[farthest : farthest + 1]).reshape(-1)
        np.minimum(nearest, new_distances, out=nearest)

    centers = points[chosen]
    labels, distances = assign_to_nearest(points, centers, metric)
    return KCenterResult(
        centers=centers,
        labels=labels,
        radius=float(distances.max()),
        approximation_factor=2.0,
        metadata={"algorithm": "gonzalez", "center_indices": tuple(chosen)},
    )
