"""Deterministic 1-center solvers.

Two flavours are needed by the paper's reductions:

* the **Euclidean 1-center** (smallest enclosing ball center), used by
  Theorem 2.1 and as the optimum the expected point is compared against;
* the **discrete metric 1-center**: the candidate element minimising the
  maximum distance to the input points, which is what the per-point
  representative ``P̃_i`` of Theorems 2.6/2.7 is in a finite metric space.

For an *uncertain* point the paper's ``P̃_i`` is "the 1-center of the single
uncertain point ``P_i``".  Specialising the uncertain 1-center objective
``Ecost(q) = E_R[max_i d(P̂_i, q)]`` to ``n = 1`` gives
``sum_j p_ij d(P_ij, q)``: for one uncertain point the max ranges over a
single element, so the objective is simply the *expected distance* to ``q``.
The per-point representative of Theorems 2.6/2.7 is therefore the
expected-distance minimiser over the whole space (every element, for a finite
metric).  This reading is the one the proofs rely on — Lemma 3.5 uses exactly
``sum_j p_j d(P̂, P̃) <= sum_j p_j d(P̂, A(P))``, i.e. optimality of ``P̃`` for
the expected-distance objective.  Both the expected-distance and worst-case
(max-distance) variants are exposed below; the uncertain reduction in
:mod:`repro.uncertain.reduction` uses the expected-distance one.
"""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array
from ..geometry.seb import Ball, smallest_enclosing_ball
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric


def euclidean_one_center(points: np.ndarray) -> Ball:
    """Smallest enclosing ball of a Euclidean point set."""
    return smallest_enclosing_ball(points)


def discrete_one_center(
    points: np.ndarray,
    metric: Metric,
    candidates: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Candidate minimising the maximum distance to ``points``.

    Parameters
    ----------
    points:
        The points to cover.
    metric:
        The metric space.
    candidates:
        Candidate center positions; defaults to ``metric.candidate_centers``
        (the points themselves for vector spaces, every element for finite
        metrics).

    Returns
    -------
    (center, radius):
        The best candidate and its max-distance objective value.
    """
    points = as_point_array(points)
    if candidates is None:
        candidates = metric.candidate_centers(points)
    candidates = as_point_array(candidates, name="candidates")
    matrix = metric.pairwise(candidates, points)
    objective = matrix.max(axis=1)
    best = int(np.argmin(objective))
    return candidates[best].copy(), float(objective[best])


def discrete_weighted_one_center(
    points: np.ndarray,
    weights: np.ndarray,
    metric: Metric,
    candidates: np.ndarray | None = None,
) -> tuple[np.ndarray, float]:
    """Candidate minimising the *expected* (probability-weighted) distance.

    This is the per-point representative ``P̃`` used by the general-metric
    theorems: ``argmin_q sum_j w_j d(p_j, q)`` over the candidate set.
    """
    points = as_point_array(points)
    weights = np.asarray(weights, dtype=float).reshape(-1)
    if candidates is None:
        candidates = metric.candidate_centers(points)
    candidates = as_point_array(candidates, name="candidates")
    matrix = metric.pairwise(candidates, points)
    objective = matrix @ weights
    best = int(np.argmin(objective))
    return candidates[best].copy(), float(objective[best])


def one_center_cost(points: np.ndarray, center: np.ndarray, metric: Metric | None = None) -> float:
    """Max distance from ``center`` to ``points`` (the 1-center objective)."""
    metric = metric or EuclideanMetric()
    return float(metric.distances_to_point(as_point_array(points), center).max())
