"""Assignment and objective helpers for deterministic k-center solutions."""

from __future__ import annotations

import numpy as np

from .._validation import as_point_array
from ..metrics.base import Metric


def assign_to_nearest(points: np.ndarray, centers: np.ndarray, metric: Metric) -> tuple[np.ndarray, np.ndarray]:
    """Assign each point to its nearest center.

    Returns
    -------
    labels:
        ``(n,)`` integer array of nearest-center indices.
    distances:
        ``(n,)`` array of distances to the assigned center.
    """
    points = as_point_array(points)
    centers = as_point_array(centers, name="centers")
    matrix = metric.pairwise(points, centers)
    labels = matrix.argmin(axis=1)
    distances = matrix[np.arange(points.shape[0]), labels]
    return labels.astype(int), distances


def kcenter_cost(points: np.ndarray, centers: np.ndarray, metric: Metric) -> float:
    """Deterministic k-center objective ``max_i d(p_i, centers)``."""
    _, distances = assign_to_nearest(points, centers, metric)
    return float(distances.max())


def coverage_radius_per_center(points: np.ndarray, centers: np.ndarray, metric: Metric) -> np.ndarray:
    """Per-center radius: max distance over the points assigned to it.

    Centers with no assigned point get radius 0.
    """
    points = as_point_array(points)
    centers = as_point_array(centers, name="centers")
    labels, distances = assign_to_nearest(points, centers, metric)
    radii = np.zeros(centers.shape[0])
    for center_index in range(centers.shape[0]):
        mask = labels == center_index
        if np.any(mask):
            radii[center_index] = distances[mask].max()
    return radii
