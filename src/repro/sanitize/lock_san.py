"""LOCK-SAN: dynamic lock acquisition-order checking.

The static LOCK-ORDER rule proves the *visible* acquisition graph is
acyclic; this sanitizer watches the orders that actually execute —
including ones assembled dynamically through callbacks the static pass
cannot resolve.  :func:`wrap_lock` returns a :class:`TracedLock` proxy
(the raw primitive stays reachable via ``.raw`` so it can still be handed
to ``multiprocessing`` internals such as ``Value(..., lock=...)`` and
shipped through pool initargs); every acquire pushes onto a per-thread
held stack and adds held-top -> new edges to a process-wide order graph.
Two checks fire at the offending ``acquire`` call:

* **re-acquisition** — the same traced lock taken while already held by
  this thread (multiprocessing locks are not reentrant: self-deadlock);
* **order inversion** — the new edge closes a cycle in the order graph,
  i.e. some earlier execution acquired these locks in the opposite order.

Violations are recorded via :func:`repro.sanitize.report_violation`; the
instrumented acquire itself always proceeds, because the sanitizer's job
is to *report* the deadlock-in-waiting, not to inject one.
"""

from __future__ import annotations

import threading
from typing import Any, Iterator

from . import enabled, report_violation

#: Acquisition-order edges actually observed: (held, acquired) pairs.
_edges: set[tuple[str, str]] = set()
_local = threading.local()


def _held_stack() -> list[str]:
    stack = getattr(_local, "stack", None)
    if stack is None:
        stack = []
        _local.stack = stack
    return stack


def _find_path(start: str, goal: str) -> list[str] | None:
    """DFS path ``start .. goal`` through the observed-order graph."""
    adjacency: dict[str, set[str]] = {}
    for source, target in _edges:
        adjacency.setdefault(source, set()).add(target)
    frontier: list[tuple[str, list[str]]] = [(start, [start])]
    visited: set[str] = set()
    while frontier:
        node, path = frontier.pop()
        if node == goal:
            return path
        if node in visited:
            continue
        visited.add(node)
        for successor in sorted(adjacency.get(node, ())):
            frontier.append((successor, [*path, successor]))
    return None


def note_acquire(name: str) -> None:
    """Record that this thread acquired ``name``; check both invariants."""
    stack = _held_stack()
    if name in stack:
        report_violation(
            "lock",
            f"lock '{name}' acquired while already held by this thread"
            " (multiprocessing locks are not reentrant: self-deadlock)",
        )
    elif stack:
        edge = (stack[-1], name)
        if edge not in _edges:
            inverse = _find_path(name, stack[-1])
            _edges.add(edge)
            if inverse is not None:
                cycle = " -> ".join([stack[-1], *inverse])
                report_violation(
                    "lock",
                    f"lock-order inversion: acquired '{name}' while holding"
                    f" '{stack[-1]}', but an earlier execution ordered"
                    f" {cycle} — interleaved processes can deadlock",
                )
    stack.append(name)


def note_release(name: str) -> None:
    stack = _held_stack()
    for index in range(len(stack) - 1, -1, -1):
        if stack[index] == name:
            del stack[index]
            break


class TracedLock:
    """Order-checking proxy around a threading/multiprocessing lock.

    Supports the context-manager protocol and explicit
    ``acquire``/``release``; everything else should use :attr:`raw` —
    notably anything that crosses a process boundary, since the proxy is
    deliberately not picklable (each process wraps its own copy via
    :func:`wrap_lock` after adoption).
    """

    __slots__ = ("raw", "name")

    def __init__(self, raw: Any, name: str):
        self.raw = raw
        self.name = name

    def acquire(self, *args: Any, **kwargs: Any) -> bool:
        acquired = bool(self.raw.acquire(*args, **kwargs))
        if acquired:
            note_acquire(self.name)
        return acquired

    def release(self) -> None:
        note_release(self.name)
        self.raw.release()

    def __enter__(self) -> "TracedLock":
        self.acquire()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()

    def __reduce__(self) -> str:
        raise TypeError(
            "TracedLock must not cross process boundaries; ship .raw and"
            " re-wrap with repro.sanitize.lock_san.wrap_lock on the far side"
        )


def wrap_lock(raw: Any, name: str) -> Any:
    """Wrap ``raw`` in a :class:`TracedLock` when LOCK-SAN is enabled.

    With the sanitizer off this returns ``raw`` unchanged, so the runtime
    pays nothing and pickling behavior is identical to pre-sanitizer code.
    """
    if not enabled("lock"):
        return raw
    if isinstance(raw, TracedLock):
        return raw
    return TracedLock(raw, name)


def unwrap_lock(lock: Any) -> Any:
    """The raw primitive behind a possibly-traced lock."""
    return lock.raw if isinstance(lock, TracedLock) else lock


def observed_edges() -> Iterator[tuple[str, str]]:
    return iter(sorted(_edges))


def reset() -> None:
    _edges.clear()
    _local.stack = []


__all__ = [
    "TracedLock",
    "note_acquire",
    "note_release",
    "observed_edges",
    "reset",
    "unwrap_lock",
    "wrap_lock",
]
