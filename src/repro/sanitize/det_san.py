"""DET-SAN: per-chunk determinism fingerprinting.

The runtime's determinism contract (:mod:`repro.runtime.parallel`) says
``parallel_map(task, items)`` returns the same list for every worker
count and payload transport.  The existing tier-1 tests check that at the
*final-result* level; when one breaks, the divergence has already been
reduced away from the chunk that caused it.  This sanitizer fingerprints
the per-chunk results of every un-pruned map, keyed by the map's identity
``(task, items, payload)``, and compares repeat executions — so the run
that diverges (``workers=4`` against an earlier ``workers=1``, shm on
against shm off) is reported **at the first differing chunk**, with the
chunk index and both fingerprints.

Pruned maps (``incumbent_seed`` set) are skipped by design: branch-and-
bound chunks legitimately return timing-dependent *per-chunk* values (the
skip sets depend on cross-shard incumbent races) while the callers'
reductions stay exact — fingerprinting them would be pure false-positive.

Fingerprints are SHA-1 of the pickled value.  That is exactly the
serialization determinism the runtime already relies on everywhere it
ships chunks across processes, so anything unpicklable (or a map whose
key cannot be built) is silently skipped rather than reported.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Any, Callable, Sequence

from . import enabled, report_violation

#: Distinct map identities remembered; oldest evicted first.  Big enough
#: for a bench run's repeat loops, small enough to bound memory.
MAX_TRACKED_MAPS = 64

#: map key -> (worker-count label, per-chunk fingerprint tuple)
_seen: OrderedDict[str, tuple[str, tuple[str, ...]]] = OrderedDict()


def _fingerprint(value: Any) -> str | None:
    """SHA-1 of ``value``'s pickle, or ``None`` when unpicklable."""
    import pickle

    try:
        # repro: noqa[SPILL-PATH] -- fingerprinting only: bytes are hashed and discarded, never persisted or shipped, so the spill-tier ownership rule does not apply
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:  # unpicklable values cannot be fingerprinted
        return None
    return hashlib.sha1(blob).hexdigest()


def record_map(
    task: Callable[..., Any],
    items: Sequence[Any],
    payload: Any,
    results: Sequence[Any],
    *,
    workers: int,
    pruned: bool,
) -> None:
    """Fingerprint one ``parallel_map`` execution and diff against history."""
    if not enabled("det") or pruned:
        return
    task_name = f"{getattr(task, '__module__', '?')}.{getattr(task, '__qualname__', '?')}"
    key = _fingerprint((task_name, tuple(items), payload))
    if key is None:
        return
    prints = tuple(_fingerprint(result) or "<unpicklable>" for result in results)
    label = f"workers={workers}"
    prior = _seen.get(key)
    if prior is None:
        _seen[key] = (label, prints)
        _seen.move_to_end(key)
        while len(_seen) > MAX_TRACKED_MAPS:
            _seen.popitem(last=False)
        return
    prior_label, prior_prints = prior
    if prior_prints == prints:
        return
    index = next(
        (
            position
            for position, (old, new) in enumerate(zip(prior_prints, prints))
            if old != new
        ),
        min(len(prior_prints), len(prints)),
    )
    report_violation(
        "det",
        f"map of {task_name} over {len(items)} chunk(s) diverged at chunk"
        f" {index}: {prior_label} produced {prior_prints[index][:12] if index < len(prior_prints) else '<missing>'}…,"
        f" {label} produced {prints[index][:12] if index < len(prints) else '<missing>'}…"
        " — the determinism contract requires bit-identical chunks at every"
        " worker count",
    )


def verify_context_fingerprints(
    context: Any,
    expected_dataset: str,
    expected_candidates: str,
    origin: str,
) -> None:
    """Cross-check a spill-tier context against the fingerprints that keyed it.

    The disk tier trusts filenames: a context loaded from
    ``<fingerprint>.ctx`` is assumed to *be* that fingerprint's context.
    With DET-SAN on, re-derive both fingerprints from the loaded object and
    report a mismatch (corrupted or cross-wired spill file) instead of
    silently serving wrong-but-plausible cost surfaces.
    """
    if not enabled("det"):
        return
    from ..runtime.store import candidate_fingerprint, dataset_fingerprint

    actual_dataset = dataset_fingerprint(context.dataset)
    actual_candidates = candidate_fingerprint(context.candidates)
    if actual_dataset != expected_dataset or actual_candidates != expected_candidates:
        report_violation(
            "det",
            f"context loaded from {origin} does not match its key:"
            f" dataset {actual_dataset[:12]}… vs expected {expected_dataset[:12]}…,"
            f" candidates {actual_candidates[:12]}… vs expected"
            f" {expected_candidates[:12]}…",
        )


def reset() -> None:
    _seen.clear()


__all__ = [
    "MAX_TRACKED_MAPS",
    "record_map",
    "reset",
    "verify_context_fingerprints",
]
