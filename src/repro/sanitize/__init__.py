"""Opt-in runtime sanitizers: the dynamic half of the PR 7 invariant pair.

``python -m repro lint`` proves invariants *statically*; the sanitizers in
this package verify the same invariants *dynamically*, under real
execution, the way production race detectors pair lint rules with runtime
instrumentation.  They are enabled through the :mod:`repro._env` registry::

    REPRO_SANITIZE=shm,lock,det python -m pytest ...

* ``shm`` — :mod:`.shm_san` wraps segment create/attach/unlink and reports
  leaked or double-unlinked ``/dev/shm`` segments at process exit.
* ``lock`` — :mod:`.lock_san` records the *actual* lock acquisition order
  (incumbent/pool/store locks) per thread and flags order inversions and
  re-acquisition at the first offending acquire.
* ``det`` — :mod:`.det_san` fingerprints per-chunk ``parallel_map``
  results so a ``workers=1`` vs ``workers=N`` divergence is caught at the
  first differing chunk rather than at final-result comparison.

Everything here is **zero-cost when disabled**: every hook begins with an
``enabled(...)`` check against a plain module-level set, and the runtime
modules only ever call tiny trampoline functions.  Violations are recorded
in-process (:func:`violations`, for tests) and printed to stderr by an
``atexit`` reporter; sanitizers never raise into the instrumented code
path, because a watchdog that crashes the patient is worse than none.

Worker processes receive the enabled-sanitizer names through pool
``initargs`` (the same channel PR 5 established for incumbent handles), so
``shm``/``lock`` violations inside a worker are reported on the worker's
own stderr at exit; ``det`` runs entirely in the parent.
"""

from __future__ import annotations

import atexit
import sys
from dataclasses import dataclass

from .._env import env_str

#: Every sanitizer this package ships, in REPRO_SANITIZE spelling.
SANITIZER_NAMES: tuple[str, ...] = ("shm", "lock", "det")

_enabled: set[str] = set()
_violations: list["Violation"] = []


@dataclass(frozen=True)
class Violation:
    """One invariant breach observed at runtime."""

    sanitizer: str
    message: str

    def render(self) -> str:
        return f"{self.sanitizer.upper()}-SAN: {self.message}"


def parse_names(raw: str | None) -> tuple[str, ...]:
    """Parse a ``REPRO_SANITIZE`` value; unknown names are a hard error.

    A typo like ``REPRO_SANITIZE=shmm`` silently running nothing would
    defeat the point of a sanitizer, so unknown names raise.
    """
    if not raw:
        return ()
    names = tuple(part.strip() for part in raw.split(",") if part.strip())
    unknown = [name for name in names if name not in SANITIZER_NAMES]
    if unknown:
        raise ValueError(
            f"unknown sanitizer(s) {unknown!r} in REPRO_SANITIZE;"
            f" valid names: {', '.join(SANITIZER_NAMES)}"
        )
    return names


def set_enabled(names: tuple[str, ...] | list[str]) -> None:
    """Enable exactly ``names`` (validated), clearing previous state."""
    parsed = parse_names(",".join(names)) if names else ()
    _enabled.clear()
    _enabled.update(parsed)
    reset()


def enabled(name: str) -> bool:
    return name in _enabled


def enabled_names() -> tuple[str, ...]:
    """The enabled sanitizers in canonical order (for pool initargs)."""
    return tuple(name for name in SANITIZER_NAMES if name in _enabled)


def report_violation(sanitizer: str, message: str) -> None:
    _violations.append(Violation(sanitizer=sanitizer, message=message))


def violations() -> tuple[Violation, ...]:
    return tuple(_violations)


def reset() -> None:
    """Clear recorded violations and every sanitizer's internal state."""
    from . import det_san, lock_san, shm_san

    _violations.clear()
    shm_san.reset()
    lock_san.reset()
    det_san.reset()


def check_exit() -> tuple[Violation, ...]:
    """Run end-of-process checks (shm leaks) and return all violations."""
    from . import shm_san

    if enabled("shm"):
        shm_san.check_exit()
    return violations()


def _atexit_report() -> None:
    if not _enabled:
        return
    found = check_exit()
    if not found:
        return
    print(
        f"repro.sanitize: {len(found)} violation(s) "
        f"({','.join(enabled_names())} enabled):",
        file=sys.stderr,
    )
    for violation in found:
        print(f"  {violation.render()}", file=sys.stderr)


# Registered at import time, i.e. *before* runtime modules register their
# own atexit cleanups (pool shutdown, publication close): atexit runs LIFO,
# so the leak check observes the tree *after* those cleanups ran — a
# segment they correctly unlinked is not a leak.
atexit.register(_atexit_report)

_initial = env_str("REPRO_SANITIZE")
if _initial is not None:
    set_enabled(parse_names(_initial))


__all__ = [
    "SANITIZER_NAMES",
    "Violation",
    "check_exit",
    "enabled",
    "enabled_names",
    "parse_names",
    "report_violation",
    "reset",
    "set_enabled",
    "violations",
]
