"""SHM-SAN: dynamic shared-memory segment lifecycle checking.

PR 4's invariant — every segment is owned by exactly one
:class:`~repro.runtime.shm.SegmentLease` and unlinked exactly once — is
checked statically by the SHM-LIFECYCLE and SHM-ESCAPE lint rules; this
sanitizer checks the half no static pass can see: what *actually* happens
at runtime.  :mod:`repro.runtime.shm` calls the three record hooks from
its create/attach/unlink paths; at process exit every segment that was
created but never unlinked is reported as a leak, and a second unlink of
the same name (two leases racing on one segment — the bug class behind
the bpo-38119 workaround) is reported at the moment it happens.

State is per-process by design: a worker that creates a segment and hands
it to the parent for cleanup would be a *protocol* violation the lint
layer flags; at runtime each process only vouches for the segments it
created itself.
"""

from __future__ import annotations

from . import enabled, report_violation

#: Segment name -> short provenance label ("pack_arrays", "publish_blob").
_created: dict[str, str] = {}
#: Names this process attached to (diagnostic context for leak reports).
_attached: set[str] = set()
#: Names already unlinked (for double-unlink detection).
_unlinked: set[str] = set()


def record_create(name: str, where: str) -> None:
    """A segment was created (and leased) by this process."""
    if not enabled("shm"):
        return
    _created[name] = where
    _unlinked.discard(name)


def record_attach(name: str) -> None:
    """This process attached to a segment it did not create."""
    if not enabled("shm"):
        return
    _attached.add(name)


def record_unlink(name: str) -> None:
    """A segment name is being unlinked (lease close)."""
    if not enabled("shm"):
        return
    if name in _unlinked:
        report_violation(
            "shm",
            f"segment '{name}' unlinked twice — two leases claimed ownership"
            " of one segment",
        )
        return
    _unlinked.add(name)
    _created.pop(name, None)


def check_exit() -> None:
    """Report every segment this process created but never unlinked."""
    for name, where in sorted(_created.items()):
        report_violation(
            "shm",
            f"segment '{name}' created by {where} was never unlinked"
            " (leaked /dev/shm memory)",
        )


def reset() -> None:
    _created.clear()
    _attached.clear()
    _unlinked.clear()


__all__ = ["check_exit", "record_attach", "record_create", "record_unlink", "reset"]
