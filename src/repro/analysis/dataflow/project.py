"""Project symbol table and call resolution for the whole-program lint pass.

The intra-module rules in :mod:`repro.analysis.rules` see one file at a
time, so a seed that flows through a helper in another module, or a
``SegmentLease`` handed to a caller who drops it, is invisible to them.
This module parses every file of a target tree **once** (reusing the same
:class:`~repro.analysis.core.ModuleContext` objects the per-module rules
already ran on) and derives the project-level indexes the interprocedural
rules in :mod:`repro.analysis.dataflow.rules` need:

* a module table keyed by dotted name (``repro.runtime.shm``), derived
  purely from file paths so fixture trees that mirror the repo layout
  resolve exactly like the real tree;
* per-module symbol tables: top-level functions, methods (stored under
  ``Class.method`` qualnames), classes, and the import alias table with
  absolute and relative ``from``-imports resolved to dotted targets;
* :meth:`Project.resolve_call` — best-effort resolution of a call
  expression to the function/class definition it names, following import
  aliases (including one re-export hop through an ``__init__``) and
  ``self.method()`` calls on the enclosing class.

Resolution is deliberately *unsound but precise*: anything dynamic
(``getattr``, callables in containers, monkeypatching) resolves to
``None`` and the dataflow rules stay silent rather than guess.  That is
the right trade for a lint gate — every reported chain is a real static
path through the code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Mapping

from ..core import ModuleContext

#: Follow at most this many re-export hops (``from .shm import pack_arrays``
#: in an ``__init__``) before giving up; guards against alias cycles.
MAX_ALIAS_HOPS = 5

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef
_FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(path: Path) -> str:
    """Dotted module name derived from a file path.

    ``src/repro/runtime/shm.py`` -> ``src.repro.runtime.shm``; package
    ``__init__`` files collapse onto the package name itself.  Names are
    matched by suffix during resolution, so the leading components
    (``src``, a tmp fixture root, ...) never matter.
    """
    parts = list(path.parts)
    parts[-1] = parts[-1][: -len(".py")] if parts[-1].endswith(".py") else parts[-1]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


@dataclass(eq=False)
class ProjectModule:
    """One module of the project plus its derived symbol tables."""

    name: str
    #: Base package for level-1 relative imports (the module's own name for
    #: ``__init__`` files, its parent package otherwise).
    package: str
    is_package: bool
    context: ModuleContext
    #: Local qualname (``helper`` or ``Class.method``) -> def node.
    functions: dict[str, FunctionNode] = field(default_factory=dict)
    classes: dict[str, ast.ClassDef] = field(default_factory=dict)
    #: Import alias -> absolute dotted target (``pack`` -> ``repro.runtime.shm.pack_arrays``).
    imports: dict[str, str] = field(default_factory=dict)

    def local_symbol(self, name: str) -> FunctionNode | ast.ClassDef | None:
        return self.functions.get(name) or self.classes.get(name)


@dataclass(eq=False)
class Resolved:
    """Where a call landed: the defining module plus the definition node."""

    kind: str  # "function" | "class" | "module"
    module: ProjectModule
    qualname: str
    node: ast.AST | None

    @property
    def key(self) -> tuple[str, str]:
        """Stable identity for memo tables: (module name, qualname)."""
        return (self.module.name, self.qualname)


def _index_module(context: ModuleContext) -> ProjectModule:
    path = context.file
    name = module_name_for(path)
    is_package = path.name == "__init__.py"
    package = name if is_package else name.rpartition(".")[0]
    module = ProjectModule(
        name=name, package=package, is_package=is_package, context=context
    )
    for node in context.tree.body:
        if isinstance(node, _FUNCTION_TYPES):
            module.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            module.classes[node.name] = node
            for item in node.body:
                if isinstance(item, _FUNCTION_TYPES):
                    module.functions[f"{node.name}.{item.name}"] = item
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    # ``import a.b`` binds the *root* name ``a``.
                    root = alias.name.split(".", 1)[0]
                    module.imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = _import_base(module, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                module.imports[local] = f"{base}.{alias.name}" if base else alias.name
    return module


def _import_base(module: ProjectModule, node: ast.ImportFrom) -> str | None:
    """Absolute dotted base for an import-from, or None if it escapes the tree."""
    if node.level == 0:
        return node.module or ""
    package_parts = module.package.split(".") if module.package else []
    drop = node.level - 1
    if drop > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - drop]
    if node.module:
        base_parts.extend(node.module.split("."))
    return ".".join(base_parts)


class Project:
    """All parsed modules of one lint run plus cross-module resolution."""

    def __init__(self, contexts: Mapping[str, ModuleContext]):
        self.modules: dict[str, ProjectModule] = {}
        #: Suffix index: last dotted component -> candidate module names.
        self._by_tail: dict[str, list[str]] = {}
        for context in contexts.values():
            module = _index_module(context)
            self.modules[module.name] = module
            tail = module.name.rpartition(".")[2]
            self._by_tail.setdefault(tail, []).append(module.name)

    def __iter__(self) -> Iterator[ProjectModule]:
        return iter(self.modules.values())

    # -- module lookup -------------------------------------------------------

    def resolve_module(self, dotted: str) -> ProjectModule | None:
        """Find the project module an absolute dotted name refers to.

        Exact match first; otherwise a unique suffix match, so the import
        ``repro.runtime.shm`` finds the module indexed under
        ``src.repro.runtime.shm`` (and tmp-dir fixture trees behave the
        same way).  Ambiguous suffixes resolve to None.
        """
        if not dotted:
            return None
        if dotted in self.modules:
            return self.modules[dotted]
        tail = dotted.rpartition(".")[2]
        matches = [
            name
            for name in self._by_tail.get(tail, ())
            if name.endswith("." + dotted)
        ]
        if len(matches) == 1:
            return self.modules[matches[0]]
        return None

    # -- call resolution -----------------------------------------------------

    def resolve_call(self, module: ProjectModule, call: ast.Call) -> Resolved | None:
        """Resolve a call expression to the definition it names, if static."""
        dotted = module.context.dotted_name(call.func)
        if dotted is None:
            return None
        return self.resolve_name(module, dotted, site=call)

    def resolve_name(
        self, module: ProjectModule, dotted: str, site: ast.AST | None = None
    ) -> Resolved | None:
        parts = dotted.split(".")
        # self.method() resolves on the enclosing class.
        if parts[0] == "self" and len(parts) == 2 and site is not None:
            owner = self._enclosing_class(module, site)
            if owner is not None:
                qualname = f"{owner.name}.{parts[1]}"
                node = module.functions.get(qualname)
                if node is not None:
                    return Resolved("function", module, qualname, node)
            return None
        # Import alias on the first component (aliases are single names).
        if parts[0] in module.imports:
            target = ".".join([module.imports[parts[0]], *parts[1:]])
            return self._resolve_dotted(target, MAX_ALIAS_HOPS)
        # Local symbols: bare function/class, or Class.method.
        if len(parts) == 1:
            return self._local(module, parts[0])
        if len(parts) == 2 and f"{parts[0]}.{parts[1]}" in module.functions:
            qualname = f"{parts[0]}.{parts[1]}"
            return Resolved("function", module, qualname, module.functions[qualname])
        return None

    def _local(self, module: ProjectModule, name: str) -> Resolved | None:
        if name in module.functions:
            return Resolved("function", module, name, module.functions[name])
        if name in module.classes:
            return Resolved("class", module, name, module.classes[name])
        return None

    def _resolve_dotted(self, dotted: str, hops: int) -> Resolved | None:
        """Resolve an absolute dotted path to a definition.

        Tries the longest module prefix first (``repro.runtime.shm`` +
        ``pack_arrays``), falling back through shorter prefixes; a name
        that lands on an import alias (a re-export) is followed for up to
        ``hops`` further hops.
        """
        if hops <= 0:
            return None
        parts = dotted.split(".")
        for split in range(len(parts), 0, -1):
            module = self.resolve_module(".".join(parts[:split]))
            if module is None:
                continue
            rest = parts[split:]
            if not rest:
                return Resolved("module", module, module.name, None)
            if len(rest) == 1:
                local = self._local(module, rest[0])
                if local is not None:
                    return local
            if len(rest) == 2 and f"{rest[0]}.{rest[1]}" in module.functions:
                qualname = f"{rest[0]}.{rest[1]}"
                return Resolved(
                    "function", module, qualname, module.functions[qualname]
                )
            if rest[0] in module.imports:
                target = ".".join([module.imports[rest[0]], *rest[1:]])
                return self._resolve_dotted(target, hops - 1)
            return None
        return None

    @staticmethod
    def _enclosing_class(module: ProjectModule, node: ast.AST) -> ast.ClassDef | None:
        current = module.context.parent(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = module.context.parent(current)
        return None


__all__ = [
    "FunctionNode",
    "MAX_ALIAS_HOPS",
    "Project",
    "ProjectModule",
    "Resolved",
    "module_name_for",
]
