"""Whole-program dataflow pass for ``python -m repro lint``.

Parses the target tree once into a :class:`~.project.Project` (module
table, per-module symbol tables, import-alias resolution, best-effort
call resolution) and runs the interprocedural rules in :mod:`.rules`:
``NONDET-FLOW`` (seeds through call chains), ``SHM-ESCAPE`` (lease escape
analysis) and ``LOCK-ORDER`` (static lock-acquisition-order cycles).

These registries are deliberately separate from
``repro.analysis.rules.RULE_CLASSES`` — the intra-module rule set is a
pinned public contract, and ``--no-dataflow`` must be able to drop this
entire pass without touching it.
"""

from .project import Project, ProjectModule, Resolved, module_name_for
from .rules import (
    DATAFLOW_RULE_CLASSES,
    LockOrderRule,
    NondetFlowRule,
    ShmEscapeRule,
    dataflow_rules,
)

__all__ = [
    "DATAFLOW_RULE_CLASSES",
    "LockOrderRule",
    "NondetFlowRule",
    "Project",
    "ProjectModule",
    "Resolved",
    "ShmEscapeRule",
    "dataflow_rules",
    "module_name_for",
]
