"""Interprocedural upgrades of the highest-value lint rules.

Each rule here is the whole-program sibling of an intra-module rule from
:mod:`repro.analysis.rules` and cites the same motivating incident; the
difference is that these see across module boundaries through the
:class:`~repro.analysis.dataflow.project.Project` call graph:

* :class:`NondetFlowRule` (``NONDET-FLOW``) — PR 6's lint found the
  unseeded-Generator bug in ``algorithms/extensions.py`` only because the
  ``default_rng()`` call sat in the same file; this rule follows call
  chains so a helper module that constructs an unseeded RNG taints every
  solver-path caller, and a function that accepts a seed but drops it on
  the floor is flagged at its definition.
* :class:`ShmEscapeRule` (``SHM-ESCAPE``) — PR 4's leak-on-error window
  was an intra-function bug; the interprocedural version summarises which
  functions *return* leases (``pack_arrays`` returns ``(payload, lease)``)
  and checks every call site for a consumption path, so a caller that
  discards the tuple or binds the lease and never touches it again leaks
  a ``/dev/shm`` segment on every call.
* :class:`LockOrderRule` (``LOCK-ORDER``) — the static half of LOCK-SAN:
  builds the lock-acquisition-order graph over ``runtime/`` (nested
  ``with`` blocks plus locks acquired by resolved callees while a lock is
  held) and reports any cycle, including re-acquisition of the same
  canonical lock, before a deadlock ever needs two racing processes to
  reproduce.

All three stay silent on anything they cannot resolve statically — every
reported chain is a concrete static path (see the soundness note in
:mod:`.project`).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ProjectRule, Severity
from .project import FunctionNode, Project, ProjectModule, Resolved

#: Mirrors ``repro.analysis.rules.determinism.SOLVER_DIRECTORIES`` — the
#: paths whose results must be bit-deterministic at every worker count.
SOLVER_DIRECTORIES = ("algorithms", "baselines", "experiments")

#: Parameter names that carry caller-supplied randomness.
SEED_PARAMETERS = frozenset({"seed", "rng", "random_state", "generator"})

_FUNCTION_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef)
_SCOPE_TYPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _short_location(module: ProjectModule, qualname: str) -> str:
    """Human label for a chain hop: ``runtime/helpers.py:make_rng``."""
    tail = "/".join(module.context.parts[-2:])
    return f"{tail}:{qualname}"


def _is_unseeded_rng_call(module: ProjectModule, call: ast.Call) -> bool:
    """A ``default_rng()`` / ``default_rng(None)`` construction."""
    name = module.context.call_name(call)
    if name is None or not name.split(".")[-1] == "default_rng":
        return False
    if not call.args and not call.keywords:
        return True
    for arg in call.args:
        if isinstance(arg, ast.Constant) and arg.value is None:
            return True
    for keyword in call.keywords:
        if (
            keyword.arg == "seed"
            and isinstance(keyword.value, ast.Constant)
            and keyword.value.value is None
        ):
            return True
    return False


def _function_calls(node: FunctionNode) -> Iterator[ast.Call]:
    """Calls that execute when ``node`` runs (nested defs excluded)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(node))
    while stack:
        current = stack.pop()
        if isinstance(current, _SCOPE_TYPES):
            continue
        if isinstance(current, ast.Call):
            yield current
        stack.extend(ast.iter_child_nodes(current))


def _loaded_names(node: FunctionNode) -> set[str]:
    """Names read anywhere in the function body (nested defs included —
    a closure capturing the seed still *uses* it)."""
    loaded: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Load):
            loaded.add(child.id)
    return loaded


class NondetFlowRule(ProjectRule):
    """Seeds must survive every call chain that ends in an RNG.

    PR 2 made every solver accept ``seed`` and PR 3 promised bit-identical
    results at every worker count; PR 6's intra-module NONDET rule guards
    direct ``default_rng()`` calls in solver directories.  This rule closes
    the cross-module hole: a solver-path call that resolves (through any
    number of hops) to a function constructing an unseeded
    ``default_rng()`` is flagged with the full chain, and a function that
    accepts a seed-like parameter, never reads it, yet builds an unseeded
    RNG is flagged at its definition — the caller's seed demonstrably
    cannot reach the generator.
    """

    id = "NONDET-FLOW"
    severity = Severity.ERROR
    summary = (
        "solver-path call chains must not reach an unseeded default_rng(),"
        " and seed parameters must not be dropped"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        memo: dict[tuple[str, str], tuple[str, ...] | None] = {}
        for module in project:
            yield from self._check_seed_drops(module)
            if not module.context.in_directory(*SOLVER_DIRECTORIES):
                continue
            for call in module.context.walk(ast.Call):
                assert isinstance(call, ast.Call)
                name = module.context.call_name(call)
                if name is not None and name.split(".")[-1] == "default_rng":
                    continue  # direct sites belong to the intra-module NONDET rule
                resolved = project.resolve_call(module, call)
                if resolved is None or resolved.kind != "function":
                    continue
                chain = self._rng_chain(project, resolved, memo, set())
                if chain is None:
                    continue
                yield self.finding(
                    module.context,
                    call,
                    f"call to '{name}' reaches an unseeded default_rng() via "
                    + " -> ".join(chain),
                )

    def _rng_chain(
        self,
        project: Project,
        resolved: Resolved,
        memo: dict[tuple[str, str], tuple[str, ...] | None],
        stack: set[tuple[str, str]],
    ) -> tuple[str, ...] | None:
        """Witness chain from ``resolved`` to an unseeded ``default_rng()``."""
        key = resolved.key
        if key in memo:
            return memo[key]
        if key in stack or not isinstance(resolved.node, _FUNCTION_TYPES):
            return None
        stack.add(key)
        label = _short_location(resolved.module, resolved.qualname)
        chain: tuple[str, ...] | None = None
        for call in _function_calls(resolved.node):
            if _is_unseeded_rng_call(resolved.module, call):
                chain = (label, f"default_rng() at line {call.lineno}")
                break
        if chain is None:
            for call in _function_calls(resolved.node):
                callee = project.resolve_call(resolved.module, call)
                if callee is None or callee.kind != "function":
                    continue
                sub = self._rng_chain(project, callee, memo, stack)
                if sub is not None:
                    chain = (label, *sub)
                    break
        stack.discard(key)
        memo[key] = chain
        return chain

    def _check_seed_drops(self, module: ProjectModule) -> Iterator[Finding]:
        for qualname, node in module.functions.items():
            arguments = node.args
            parameters = [
                arg.arg
                for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
                if arg.arg in SEED_PARAMETERS
            ]
            if not parameters:
                continue
            loaded = _loaded_names(node)
            dropped = [name for name in parameters if name not in loaded]
            if not dropped:
                continue
            for call in _function_calls(node):
                if _is_unseeded_rng_call(module, call):
                    yield self.finding(
                        module.context,
                        node,
                        f"'{qualname}' accepts '{dropped[0]}' but never reads it"
                        f" and constructs an unseeded default_rng()"
                        f" (line {call.lineno}) — the caller's seed cannot"
                        " reach the generator",
                    )
                    break


class ShmEscapeRule(ProjectRule):
    """Leases that escape to a caller must be consumed there.

    PR 4's rule: every shm segment is owned by exactly one
    ``SegmentLease`` and unlinked exactly once.  The intra-module
    SHM-LIFECYCLE rule checks the *creation* site is leased immediately;
    this rule summarises which functions hand leases to their callers
    (``pack_arrays``/``publish_blob`` return ``(payload, lease)``) and
    verifies each call site actually consumes the lease — binds it and
    uses it again (``close()``, a ``finally``, re-return), stores it, or
    forwards it.  A call whose lease-carrying result is discarded, or
    bound to a name that is never read again, leaks a ``/dev/shm``
    segment per call.
    """

    id = "SHM-ESCAPE"
    severity = Severity.ERROR
    summary = "escaped SegmentLease values must be consumed (closed/stored/forwarded) by the caller"

    #: A return value that *is* a lease (not a tuple position).
    WHOLE = -1

    def check_project(self, project: Project) -> Iterator[Finding]:
        memo: dict[tuple[str, str], frozenset[int] | None] = {}
        for module in project:
            for call in module.context.walk(ast.Call):
                assert isinstance(call, ast.Call)
                summary = self._call_lease_summary(project, module, call, memo)
                if summary is None:
                    continue
                yield from self._check_site(module, call, summary)

    # -- summaries -----------------------------------------------------------

    def _is_lease_constructor(
        self, project: Project, module: ProjectModule, call: ast.Call
    ) -> bool:
        name = module.context.call_name(call)
        if name is not None and name.split(".")[-1].endswith("SegmentLease"):
            return True
        resolved = project.resolve_call(module, call)
        return (
            resolved is not None
            and resolved.kind == "class"
            and resolved.qualname.endswith("SegmentLease")
        )

    def _call_lease_summary(
        self,
        project: Project,
        module: ProjectModule,
        call: ast.Call,
        memo: dict[tuple[str, str], frozenset[int] | None],
    ) -> frozenset[int] | None:
        if self._is_lease_constructor(project, module, call):
            return frozenset({self.WHOLE})
        resolved = project.resolve_call(module, call)
        if resolved is None or resolved.kind != "function":
            return None
        return self._function_summary(project, resolved, memo, set())

    def _function_summary(
        self,
        project: Project,
        resolved: Resolved,
        memo: dict[tuple[str, str], frozenset[int] | None],
        stack: set[tuple[str, str]],
    ) -> frozenset[int] | None:
        """Which parts of ``resolved``'s return value are leases.

        ``{WHOLE}`` — the return value is a lease; ``{1}`` — element 1 of
        the returned tuple is (the ``pack_arrays`` shape); ``None`` — no
        lease escapes.  One forward pass over the body in source order
        tracks lease-tainted locals, which covers the straight-line
        create-then-return shape every real producer has.
        """
        key = resolved.key
        if key in memo:
            return memo[key]
        if key in stack or not isinstance(resolved.node, _FUNCTION_TYPES):
            return None
        stack.add(key)
        module = resolved.module
        tainted: set[str] = set()
        escaping: set[int] = set()

        def expression_taint(expr: ast.expr) -> frozenset[int] | None:
            if isinstance(expr, ast.Name) and expr.id in tainted:
                return frozenset({self.WHOLE})
            if isinstance(expr, ast.Call):
                if self._is_lease_constructor(project, module, expr):
                    return frozenset({self.WHOLE})
                callee = project.resolve_call(module, expr)
                if callee is not None and callee.kind == "function":
                    return self._function_summary(project, callee, memo, stack)
                return None
            if isinstance(expr, ast.Tuple):
                positions = {
                    index
                    for index, element in enumerate(expr.elts)
                    if expression_taint(element) == frozenset({self.WHOLE})
                }
                return frozenset(positions) if positions else None
            return None

        def visit(statements: list[ast.stmt]) -> None:
            for statement in statements:
                if isinstance(statement, ast.Assign) and len(statement.targets) == 1:
                    target = statement.targets[0]
                    taint = expression_taint(statement.value)
                    if isinstance(target, ast.Name) and taint == frozenset({self.WHOLE}):
                        tainted.add(target.id)
                    elif (
                        isinstance(target, ast.Tuple)
                        and taint is not None
                        and self.WHOLE not in taint
                    ):
                        for index in taint:
                            if 0 <= index < len(target.elts):
                                element = target.elts[index]
                                if isinstance(element, ast.Name):
                                    tainted.add(element.id)
                elif isinstance(statement, ast.Return) and statement.value is not None:
                    taint = expression_taint(statement.value)
                    if taint is not None:
                        escaping.update(taint)
                for block in self._child_blocks(statement):
                    visit(block)

        visit(list(resolved.node.body))
        stack.discard(key)
        result = frozenset(escaping) if escaping else None
        memo[key] = result
        return result

    @staticmethod
    def _child_blocks(statement: ast.stmt) -> Iterator[list[ast.stmt]]:
        for name in ("body", "orelse", "finalbody"):
            block = getattr(statement, name, None)
            if isinstance(block, list) and block and isinstance(block[0], ast.stmt):
                yield block
        for handler in getattr(statement, "handlers", []) or []:
            yield handler.body

    # -- call sites ----------------------------------------------------------

    def _check_site(
        self, module: ProjectModule, call: ast.Call, summary: frozenset[int]
    ) -> Iterator[Finding]:
        context = module.context
        statement = context.enclosing_statement(call)
        if statement is None:
            return
        if isinstance(statement, ast.Expr) and statement.value is call:
            yield self.finding(
                context,
                call,
                f"result of '{context.call_name(call)}' carries a SegmentLease"
                " but is discarded — the segment can never be unlinked",
            )
            return
        value = getattr(statement, "value", None)
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)) or value is not call:
            # Returned, yielded, nested in a larger expression, used as a
            # with-context, or forwarded as an argument: ownership moved to
            # a consumer this rule checks (or cannot see) — stay silent.
            return
        targets = (
            statement.targets if isinstance(statement, ast.Assign) else [statement.target]
        )
        if len(targets) != 1:
            return
        target = targets[0]
        lease_names: list[tuple[str, ast.AST]] = []
        if isinstance(target, ast.Name) and self.WHOLE in summary:
            lease_names.append((target.id, target))
        elif isinstance(target, ast.Name):
            # Whole tuple bound to one name: any later use keeps it reachable.
            lease_names.append((target.id, target))
        elif isinstance(target, ast.Tuple):
            for index in summary:
                if 0 <= index < len(target.elts) and isinstance(
                    target.elts[index], ast.Name
                ):
                    element = target.elts[index]
                    assert isinstance(element, ast.Name)
                    lease_names.append((element.id, element))
        else:
            return  # stored on an attribute/subscript — lifetime transferred
        scope = context.enclosing_function(call)
        scope_node: ast.AST = scope if scope is not None else context.tree
        for name, _node in lease_names:
            if not self._used_elsewhere(scope_node, statement, name):
                yield self.finding(
                    context,
                    call,
                    f"SegmentLease from '{context.call_name(call)}' is bound to"
                    f" '{name}' but '{name}' is never read afterwards —"
                    " no close/return/store path exists",
                )

    @staticmethod
    def _used_elsewhere(scope: ast.AST, statement: ast.stmt, name: str) -> bool:
        inside = {id(node) for node in ast.walk(statement)}
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Name)
                and node.id == name
                and isinstance(node.ctx, ast.Load)
                and id(node) not in inside
            ):
                return True
        return False


class LockOrderRule(ProjectRule):
    """The runtime's locks must have a cycle-free acquisition order.

    PR 5 added the shared-incumbent lock and PR 6's LOCK-DISCIPLINE rule
    polices *how* each lock is taken (``with``, no bare ``acquire``).
    Neither sees ordering: process A taking ``store.lock`` then
    ``slot.lock`` while process B nests them the other way deadlocks only
    under contention.  This rule builds the static acquisition-order graph
    over ``runtime/`` — an edge for every lock acquired (directly or via a
    resolved callee) while another is held — and reports every cycle,
    including same-lock re-acquisition, with the witness site.
    """

    id = "LOCK-ORDER"
    severity = Severity.ERROR
    summary = "static lock-acquisition-order graph over runtime/ must be acyclic"

    def check_project(self, project: Project) -> Iterator[Finding]:
        edges: dict[tuple[str, str], tuple[ProjectModule, ast.AST]] = {}
        acquires_memo: dict[tuple[str, str], frozenset[str]] = {}
        for module in project:
            if not module.context.in_directory("runtime"):
                continue
            for node in module.functions.values():
                self._collect_edges(project, module, node, edges, acquires_memo)
        yield from self._report_cycles(edges)

    # -- graph construction --------------------------------------------------

    @staticmethod
    def _lock_name(module: ProjectModule, expr: ast.expr) -> str | None:
        dotted = module.context.dotted_name(expr)
        if dotted is None or "lock" not in dotted.lower():
            return None
        if dotted.startswith("self."):
            dotted = dotted[len("self.") :]
        return dotted

    def _direct_and_callee_locks(
        self,
        project: Project,
        resolved: Resolved,
        memo: dict[tuple[str, str], frozenset[str]],
        stack: set[tuple[str, str]],
    ) -> frozenset[str]:
        """Every canonical lock ``resolved`` may acquire, transitively."""
        key = resolved.key
        if key in memo:
            return memo[key]
        if key in stack or not isinstance(resolved.node, _FUNCTION_TYPES):
            return frozenset()
        stack.add(key)
        names: set[str] = set()
        for node in ast.walk(resolved.node):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    name = self._lock_name(resolved.module, item.context_expr)
                    if name is not None:
                        names.add(name)
        for call in _function_calls(resolved.node):
            callee = project.resolve_call(resolved.module, call)
            if callee is not None and callee.kind == "function":
                names |= self._direct_and_callee_locks(project, callee, memo, stack)
        stack.discard(key)
        memo[key] = frozenset(names)
        return memo[key]

    def _collect_edges(
        self,
        project: Project,
        module: ProjectModule,
        function: FunctionNode,
        edges: dict[tuple[str, str], tuple[ProjectModule, ast.AST]],
        acquires_memo: dict[tuple[str, str], frozenset[str]],
    ) -> None:
        def note_call(call: ast.Call, held: list[str]) -> None:
            callee = project.resolve_call(module, call)
            if callee is None or callee.kind != "function":
                return
            for name in self._direct_and_callee_locks(
                project, callee, acquires_memo, set()
            ):
                edges.setdefault((held[-1], name), (module, call))

        def visit(node: ast.AST, held: list[str]) -> None:
            if isinstance(node, _SCOPE_TYPES) and node is not function:
                return  # nested defs run later, not under this lock
            if isinstance(node, (ast.With, ast.AsyncWith)):
                inner = list(held)
                for item in node.items:
                    name = self._lock_name(module, item.context_expr)
                    if name is None:
                        visit(item.context_expr, inner)
                        continue
                    if inner:
                        edges.setdefault((inner[-1], name), (module, item.context_expr))
                    inner.append(name)
                for statement in node.body:
                    visit(statement, inner)
                return
            if isinstance(node, ast.Call) and held:
                note_call(node, held)
            for child in ast.iter_child_nodes(node):
                visit(child, held)

        for statement in function.body:
            visit(statement, [])

    # -- cycle detection -----------------------------------------------------

    def _report_cycles(
        self, edges: dict[tuple[str, str], tuple[ProjectModule, ast.AST]]
    ) -> Iterator[Finding]:
        adjacency: dict[str, set[str]] = {}
        for source, target in edges:
            adjacency.setdefault(source, set()).add(target)
        seen: set[frozenset[str]] = set()
        for (source, target), (module, witness) in sorted(
            edges.items(), key=lambda item: item[0]
        ):
            path = self._path(adjacency, target, source)
            if path is None:
                continue
            cycle = [source, *path]
            key = frozenset(cycle)
            if key in seen:
                continue
            seen.add(key)
            # ``path`` runs target..source inclusive, so ``cycle`` already
            # closes the loop: [a, b, a] for a 2-cycle, [a, a] for a self-edge.
            rendered = " -> ".join(cycle)
            yield self.finding(
                module.context,
                witness,
                f"lock acquisition-order cycle: {rendered}"
                " (a process interleaving these orders can deadlock)",
            )

    @staticmethod
    def _path(
        adjacency: dict[str, set[str]], start: str, goal: str
    ) -> list[str] | None:
        """A path ``start .. goal`` through the edge graph (DFS), or None."""
        stack: list[tuple[str, list[str]]] = [(start, [start])]
        visited: set[str] = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in visited:
                continue
            visited.add(node)
            for successor in sorted(adjacency.get(node, ())):
                stack.append((successor, [*path, successor]))
        return None


#: Interprocedural rules run by the default (dataflow-enabled) lint pass.
DATAFLOW_RULE_CLASSES: tuple[type[ProjectRule], ...] = (
    NondetFlowRule,
    ShmEscapeRule,
    LockOrderRule,
)


def dataflow_rules() -> list[ProjectRule]:
    return [rule_class() for rule_class in DATAFLOW_RULE_CLASSES]


__all__ = [
    "DATAFLOW_RULE_CLASSES",
    "LockOrderRule",
    "NondetFlowRule",
    "SEED_PARAMETERS",
    "SOLVER_DIRECTORIES",
    "ShmEscapeRule",
    "dataflow_rules",
]
