"""Concurrency rules: shm lifecycle, dispatch hygiene, lock discipline."""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, Severity

#: The one module allowed to create shared-memory segments.
SHM_OWNER = "runtime/shm.py"

#: The one module allowed to construct worker pools (its initializer is how
#: synchronized primitives legally reach workers under ``spawn``).
POOL_OWNER = "runtime/pool.py"

#: The one module allowed to create multiprocessing synchronized primitives.
SYNC_OWNER = "runtime/incumbent.py"

#: Constructors that produce multiprocessing synchronized primitives.
SYNC_CONSTRUCTORS = frozenset(
    {"Value", "Lock", "RLock", "Array", "Semaphore", "BoundedSemaphore", "Condition", "Event", "Barrier"}
)

#: Call names that ship work (and therefore pickled arguments) to workers.
DISPATCH_CALLS = frozenset({"parallel_map", "submit", "apply_async", "map_async"})

#: Calls that can block while a lock is held.
BLOCKING_CALLS = frozenset(
    {"sleep", "join", "acquire", "wait", "recv", "result", "communicate", "check_call", "check_output", "run"}
)


def _has_create_true(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "create" and isinstance(keyword.value, ast.Constant):
            return bool(keyword.value.value is True)
    return False


class ShmLifecycleRule(Rule):
    """``SHM-LIFECYCLE`` — every shm segment must be leased, immediately.

    Motivation: PR 4's zero-copy runtime.  ``multiprocessing.shared_memory``
    segments outlive their creator unless unlinked exactly once; Python's
    resource tracker double-unlinks segments it did not create (bpo-38119),
    so the repo routes every create through :class:`repro.runtime.shm`'s
    refcounted ``SegmentLease`` machinery (idempotent close+unlink,
    tracker registration suppressed on attach).  A bare
    ``SharedMemory(create=True)`` anywhere else re-opens the leak the PR 4
    tests closed.  Inside ``runtime/shm.py`` itself the lease must be taken
    **immediately** (same statement or the next one): any statement between
    the create and the lease — a copy loop, a buffer write — can raise and
    orphan the segment in ``/dev/shm`` with nothing holding its name.
    """

    id = "SHM-LIFECYCLE"
    severity = Severity.ERROR
    summary = "SharedMemory(create=True) must be leased by runtime/shm.py immediately"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            if name is None or not name.split(".")[-1] == "SharedMemory":
                continue
            if not _has_create_true(call):
                continue
            if not module.path_endswith(SHM_OWNER):
                yield self.finding(
                    module,
                    call,
                    "bare SharedMemory(create=True) outside runtime/shm.py — create"
                    " segments through repro.runtime.shm so they are refcounted,"
                    " leased and unlinked exactly once (PR 4, bpo-38119)",
                )
                continue
            if not self._leased_immediately(module, call):
                yield self.finding(
                    module,
                    call,
                    "segment is not handed to SegmentLease in the same or the"
                    " immediately following statement — an exception in between"
                    " leaks the segment (no owner to unlink it)",
                )

    def _leased_immediately(self, module: ModuleContext, call: ast.Call) -> bool:
        statement = module.enclosing_statement(call)
        if statement is None:
            return False
        # Same-statement wrap: SegmentLease(SharedMemory(create=True, ...)).
        for other in ast.walk(statement):
            if (
                isinstance(other, ast.Call)
                and module.call_name(other) is not None
                and module.call_name(other).split(".")[-1] == "SegmentLease"
            ):
                return True
        # Next-statement wrap: segment = SharedMemory(...); lease = SegmentLease(segment).
        block = module.statement_block(statement)
        if block is None:
            return False
        index = block.index(statement)
        if index + 1 >= len(block):
            return False
        for other in ast.walk(block[index + 1]):
            if (
                isinstance(other, ast.Call)
                and module.call_name(other) is not None
                and module.call_name(other).split(".")[-1] == "SegmentLease"
            ):
                return True
        return False


class SyncInDispatchRule(Rule):
    """``SYNC-IN-DISPATCH`` — synchronized primitives ride initargs, never dispatch.

    Motivation: PR 5's shared incumbent.  ``multiprocessing.Value/Lock/...``
    objects cannot be pickled into pool dispatch tuples (under ``spawn`` they
    raise; under ``fork`` they silently duplicate state) — the incumbent slot
    had to be threaded through the pool *initializer* (``initargs``) for
    exactly this reason, with a small picklable token in the dispatch tuple.
    This rule flags (a) synchronized primitives (or the slot-handle helpers
    that return them) appearing in arguments of ``parallel_map``/``submit``
    -style dispatch calls, (b) construction of synchronized primitives
    outside ``runtime/incumbent.py`` (the slot owner), and (c) ad-hoc pool
    construction outside ``runtime/pool.py``, because a pool built elsewhere
    bypasses the initializer discipline that makes (a) safe.
    """

    id = "SYNC-IN-DISPATCH"
    severity = Severity.ERROR
    summary = "mp sync primitives must ship via pool initargs, not dispatch tuples"

    #: Functions whose return values contain synchronized primitives.
    _HANDLE_SOURCES = frozenset({"slot_handles", "ensure_slot"})

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        sync_names = self._sync_bound_names(module)
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            tail = name.split(".")[-1] if name else None
            if tail in SYNC_CONSTRUCTORS and self._is_mp_sync_call(module, call):
                if not module.path_endswith(SYNC_OWNER):
                    yield self.finding(
                        module,
                        call,
                        f"multiprocessing.{tail} created outside {SYNC_OWNER} — the"
                        " incumbent slot machinery owns synchronized primitives;"
                        " ad-hoc ones cannot reach pool workers safely (PR 5)",
                    )
            if tail in ("ProcessPoolExecutor", "Pool") and not module.path_endswith(POOL_OWNER):
                yield self.finding(
                    module,
                    call,
                    f"worker pool constructed outside {POOL_OWNER} — pools must"
                    " adopt the incumbent slot through the sanctioned initializer"
                    " (initargs), which ad-hoc pools bypass (PR 5)",
                )
            if tail in DISPATCH_CALLS:
                yield from self._check_dispatch_args(module, call, sync_names)

    def _is_mp_sync_call(self, module: ModuleContext, call: ast.Call) -> bool:
        """Heuristic: constructor reached via multiprocessing/a start-method context."""
        name = module.call_name(call)
        if name is None:
            return False
        parts = name.split(".")
        if len(parts) == 1:
            # Bare ``Lock()``: only multiprocessing-flavored if imported so.
            return self._imported_from_multiprocessing(module, parts[0])
        root = parts[0]
        return root in ("multiprocessing", "mp") or "context" in root or root == "ctx"

    @staticmethod
    def _imported_from_multiprocessing(module: ModuleContext, name: str) -> bool:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and "multiprocessing" in node.module:
                if any(alias.asname == name or alias.name == name for alias in node.names):
                    return True
        return False

    def _sync_bound_names(self, module: ModuleContext) -> set[str]:
        """Names assigned from sync constructors or slot-handle helpers."""
        names: set[str] = set()
        for node in module.walk(ast.Assign):
            if not isinstance(node.value, ast.Call):
                continue
            call_name = module.call_name(node.value)
            tail = call_name.split(".")[-1] if call_name else None
            if (tail in SYNC_CONSTRUCTORS and self._is_mp_sync_call(module, node.value)) or (
                tail in self._HANDLE_SOURCES
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
                    elif isinstance(target, ast.Tuple):
                        names.update(
                            element.id for element in target.elts if isinstance(element, ast.Name)
                        )
        return names

    def _check_dispatch_args(
        self, module: ModuleContext, call: ast.Call, sync_names: set[str]
    ) -> Iterator[Finding]:
        arguments = list(call.args) + [keyword.value for keyword in call.keywords]
        for argument in arguments:
            for node in ast.walk(argument):
                if isinstance(node, ast.Name) and node.id in sync_names:
                    yield self.finding(
                        module,
                        node,
                        f"synchronized primitive {node.id!r} shipped through a"
                        " dispatch call — pass a picklable token and route the"
                        " primitive via pool initargs (PR 5 incumbent protocol)",
                    )
                elif isinstance(node, ast.Call):
                    name = module.call_name(node)
                    tail = name.split(".")[-1] if name else None
                    if tail in self._HANDLE_SOURCES or (
                        tail in SYNC_CONSTRUCTORS and self._is_mp_sync_call(module, node)
                    ):
                        yield self.finding(
                            module,
                            node,
                            f"{name}() result shipped through a dispatch call —"
                            " synchronized primitives must travel via pool"
                            " initargs, not dispatch tuples (PR 5)",
                        )


class LockDisciplineRule(Rule):
    """``LOCK-DISCIPLINE`` — torn-read and held-lock rules for shared state.

    Motivation: PR 5's incumbent slot.  The pruning threshold is a C double
    shared across processes; an unlocked read can tear and fabricate a value
    *below* the optimum, silently over-pruning — so reads used for pruning
    decisions go through ``get_obj()`` under the slot lock (and
    ``Synchronized.value`` re-acquires its own non-reentrant lock, which is
    why held-lock sections use ``get_obj()`` directly).  This rule flags
    (a) ``.get_obj()`` access outside a ``with <lock>:`` block — the
    deliberate lock-light CAS peek in ``propose()`` carries a justified
    suppression, which is exactly the review trail we want — and (b) calls
    that can block (``sleep``, ``join``, ``acquire``, ``result``, ...)
    inside a held-lock block, because the slot lock sits on every reader's
    path and a blocked holder stalls the whole pool.
    """

    id = "LOCK-DISCIPLINE"
    severity = Severity.ERROR
    summary = "shared-state reads under the lock; no blocking calls while held"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        lock_withs = [
            node
            for node in module.walk(ast.With)
            if any(self._is_lock_expr(module, item.context_expr) for item in node.items)
        ]

        def under_lock(node: ast.AST) -> bool:
            current = module.parent(node)
            while current is not None:
                if current in lock_withs:
                    return True
                current = module.parent(current)
            return False

        for call in module.walk(ast.Call):
            name = module.call_name(call)
            tail = name.split(".")[-1] if name else None
            if tail == "get_obj" and not under_lock(call):
                yield self.finding(
                    module,
                    call,
                    "get_obj() outside a `with <lock>:` block — unlocked reads of"
                    " shared doubles can tear and over-prune; read under the slot"
                    " lock (PR 5 torn-read rule)",
                )
            elif tail in BLOCKING_CALLS and under_lock(call):
                yield self.finding(
                    module,
                    call,
                    f"potentially blocking call {name}() inside a held-lock block —"
                    " the slot lock is on every reader's path; move the blocking"
                    " work outside the critical section (PR 5)",
                )

    @staticmethod
    def _is_lock_expr(module: ModuleContext, expression: ast.AST) -> bool:
        name = module.dotted_name(expression)
        if name is None and isinstance(expression, ast.Call):
            name = module.call_name(expression)
        return name is not None and "lock" in name.lower()
