"""Anytime-contract rule: gap-targeted solvers must emit certificates."""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, Severity

#: The result type whose construction marks a solver entry point.
RESULT_TYPE = "UncertainKCenterResult"


class GapCertificateRule(Rule):
    """``GAP-CERTIFICATE`` — gap-targeted solvers must build a certificate.

    Motivation: PR 10's ``gap_target`` stop is only *sound* because every
    early-stopped solve ships a ``(cost, lower_bound, gap)`` certificate
    derived from the admissible bounds of the work it skipped — the
    certificate is the proof the caller paid for when it traded exactness
    for speed.  A solver that accepts ``gap_target`` but returns a bare
    result would silently downgrade "certified within 1%" to "trust me",
    and nothing at runtime would catch it (the result object carries no
    mandatory certificate field precisely so exact solves stay lean).
    This rule closes that hole statically: any function taking a
    ``gap_target`` parameter that constructs an ``UncertainKCenterResult``
    must also reference a ``*certificate*``-named callable — the shared
    certificate fold, not an ad-hoc metadata dict, so the exactness
    argument stays in one reviewed place.
    """

    id = "GAP-CERTIFICATE"
    severity = Severity.ERROR
    summary = "gap_target solvers constructing results must call a *certificate* fold"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk(ast.FunctionDef, ast.AsyncFunctionDef):
            if not self._takes_gap_target(node):
                continue
            if not self._constructs_result(module, node):
                continue
            if not self._references_certificate(module, node):
                yield self.finding(
                    module,
                    node,
                    f"{node.name}() takes gap_target and constructs an"
                    f" {RESULT_TYPE} but never references a *certificate*"
                    " helper — an early-stopped solve without a (cost,"
                    " lower_bound, gap) certificate is an unverifiable"
                    " answer (PR 10 anytime contract)",
                )

    # -- helpers ------------------------------------------------------------

    @staticmethod
    def _takes_gap_target(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        arguments = node.args
        return any(
            argument.arg == "gap_target"
            for argument in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            )
        )

    @staticmethod
    def _constructs_result(
        module: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = module.call_name(sub)
            if name is not None and name.split(".")[-1] == RESULT_TYPE:
                return True
        return False

    @staticmethod
    def _references_certificate(
        module: ModuleContext, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> bool:
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call):
                continue
            name = module.call_name(sub)
            if name is not None and "certificate" in name.split(".")[-1].lower():
                return True
        return False
