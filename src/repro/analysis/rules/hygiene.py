"""Hygiene rules: env registry, bound docstring citations, spill boundary."""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, Severity

#: The one module allowed to read the process environment.
ENV_OWNER = "repro/_env.py"

#: Modules that legitimately serialize runtime payloads/spill files.
SERIALIZATION_OWNERS = (
    "runtime/store.py",
    "runtime/shm.py",
    "runtime/pool.py",
    "runtime/parallel.py",
)

#: The one module allowed to touch spill files (``*.ctx``) directly.
SPILL_OWNER = "runtime/store.py"

#: What counts as a lemma citation in a bound docstring.
_CITATION_PATTERN = re.compile(r"Lemma\s+\d+\.\d+|[Aa]dmissib")


class EnvRegistryRule(Rule):
    """``ENV-REGISTRY`` — environment reads go through ``repro._env``.

    Motivation: by PR 5 the runtime honored five ``REPRO_*`` variables whose
    only inventory was a hand-maintained README table — the classic setup
    for doc drift and for knobs nobody remembers shipping.  Every read now
    goes through the typed accessors in :mod:`repro._env`, which refuse
    undeclared names; the README table is *generated* from the registry and
    a tier-1 test pins it.  This rule flags any direct ``os.environ`` /
    ``os.getenv`` access outside ``_env.py`` — including reads of variables
    that *are* registered, because the accessor is what keeps the registry
    complete.  Whole-environment copies for subprocess spawning
    (``dict(os.environ)``) are the one legitimate pattern; they carry a
    justified suppression rather than an exemption so each one stays
    visible in review.
    """

    id = "ENV-REGISTRY"
    severity = Severity.ERROR
    summary = "os.environ/os.getenv outside repro/_env.py"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path_endswith(ENV_OWNER):
            return
        bare_imports = self._bare_os_imports(module)
        message = (
            "direct environment access outside repro._env — declare the"
            " variable in the registry and read it through env_flag/env_str/"
            "env_number so the README table cannot drift"
        )
        for node in module.walk(ast.Attribute, ast.Name):
            if isinstance(node, ast.Attribute):
                if module.dotted_name(node) in ("os.environ", "os.getenv"):
                    yield self.finding(module, node, message)
            elif node.id in bare_imports and isinstance(node.ctx, ast.Load):
                yield self.finding(module, node, message)

    @staticmethod
    def _bare_os_imports(module: ModuleContext) -> frozenset[str]:
        """Names bound by ``from os import environ`` / ``getenv``."""
        names: set[str] = set()
        for node in module.walk(ast.ImportFrom):
            if node.module == "os":
                names.update(
                    alias.asname or alias.name
                    for alias in node.names
                    if alias.name in ("environ", "getenv")
                )
        return frozenset(names)


class BoundAdmissibleDocRule(Rule):
    """``BOUND-ADMISSIBLE-DOC`` — bound kernels must cite their lemma.

    Motivation: PR 5's exactness argument rests entirely on the bounds being
    *admissible* — every function ``bounds/lower_bounds.py`` exports is a
    load-bearing piece of a proof, and the reviewer's only defense against a
    plausible-looking inadmissible "bound" sneaking in is the docstring
    stating which lemma makes it one (the Lemma 3.2 subset-wise argument,
    the ``E[min]``-not-``min E`` distinction, the prune-margin slack).  This
    rule requires every public function defined in ``bounds/lower_bounds.py``
    to carry a docstring containing a lemma citation (``Lemma <n>.<m>``) or
    an explicit admissibility statement.

    Since PR 10 the bound *kernels* live on :class:`~repro.cost.context.
    CostContext` (the ``bounds`` module delegates so the bound can read the
    context's cached tables), so the same requirement applies to every
    public ``*_lower_bounds``-named method in ``cost/context.py`` — moving
    a bound behind a method must not move it out from under review.
    """

    id = "BOUND-ADMISSIBLE-DOC"
    severity = Severity.ERROR
    summary = "exported bounds (lower_bounds.py functions, context *_lower_bounds methods) need lemma citations"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path_endswith("bounds/lower_bounds.py"):
            yield from self._check_functions(module, self._top_level_functions(module))
        elif module.path_endswith("cost/context.py"):
            yield from self._check_functions(module, self._bound_methods(module))

    @staticmethod
    def _top_level_functions(module: ModuleContext):
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _bound_methods(module: ModuleContext):
        for node in module.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            for child in node.body:
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if child.name.endswith("_lower_bounds"):
                        yield child

    def _check_functions(self, module: ModuleContext, nodes) -> Iterator[Finding]:
        for node in nodes:
            if node.name.startswith("_"):
                continue
            docstring = ast.get_docstring(node)
            if docstring is None:
                yield self.finding(
                    module,
                    node,
                    f"bound function {node.name}() has no docstring — every"
                    " exported bound must state the lemma that makes it"
                    " admissible (PR 5 exactness contract)",
                )
            elif _CITATION_PATTERN.search(docstring) is None:
                yield self.finding(
                    module,
                    node,
                    f"bound function {node.name}() docstring lacks a lemma"
                    " citation ('Lemma <n>.<m>') or admissibility statement —"
                    " reviewers cannot check exactness without it (PR 5)",
                )


class SpillPathRule(Rule):
    """``SPILL-PATH`` — spill files and payload pickles have one owner each.

    Motivation: PR 4/PR 5's disk-spill tier.  Spill files are version-tagged
    pickles with a strict read protocol (tag check, ``SPILL_FORMAT`` check,
    corrupt-file tolerance, bounded-directory eviction) that lives in
    ``runtime/store.py``; a direct ``open()``/``pickle.load`` on a ``*.ctx``
    path anywhere else bypasses every one of those guards and will break
    silently on the next format bump.  More broadly, pickle is the repo's
    *transport* layer (dispatch payloads, shm blobs, spill files) and its
    use is confined to the runtime modules that own those protocols —
    ``pickle.load``/``dump`` anywhere else is either a new ad-hoc
    persistence format (use the store) or a measurement (justify the
    suppression).
    """

    id = "SPILL-PATH"
    severity = Severity.ERROR
    summary = "*.ctx access outside runtime/store.py; pickle outside the runtime"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.path_endswith(SPILL_OWNER):
            for node in module.walk(ast.Constant):
                # repro: noqa[SPILL-PATH] -- the rule's own pattern literal, not a spill-file access
                if isinstance(node.value, str) and node.value.endswith(".ctx"):
                    yield self.finding(
                        module,
                        node,
                        "spill-file path ('*.ctx') referenced outside"
                        " runtime/store.py — go through ContextStore so the"
                        " version-tag and eviction protocol applies (PR 5)",
                    )
        if any(module.path_endswith(owner) for owner in SERIALIZATION_OWNERS):
            return
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            if name in ("pickle.load", "pickle.loads", "pickle.dump", "pickle.dumps"):
                yield self.finding(
                    module,
                    call,
                    f"{name}() outside the runtime serialization owners"
                    f" ({', '.join(SERIALIZATION_OWNERS)}) — pickle is the"
                    " runtime's transport/spill format, not a general"
                    " persistence API (PR 4)",
                )
