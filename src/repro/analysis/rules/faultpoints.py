"""Fault-injection site rule: registered kinds, runtime-owned, reachable."""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, Severity

#: The registered fault kinds, mirrored from :mod:`repro.faults`.  The
#: linter must stay importable with nothing but the stdlib (it runs before
#: the numpy-heavy package in CI), so the kinds are pinned here and a tier-1
#: test asserts this tuple equals ``repro.faults.FAULT_KINDS`` — drift fails
#: the suite, not the lint run.
FAULT_KINDS = ("crash", "slow", "shm_attach", "spill_corrupt", "serve_reject")

#: The module that owns the injection machinery (its own ``inject`` calls
#: are the implementation, not injection sites).
FAULTS_OWNER = "repro/faults.py"

#: Directories allowed to carry injection sites: the runtime tier the fault
#: harness models (worker dispatch, shm attach, spill writes) and — since
#: PR 9 — the serve tier (admission-path rejections driving client retry).
FAULT_TIERS = ("runtime", "serve")


class FaultPointRule(Rule):
    """``FAULT-POINT`` — ``faults.inject()`` sites are audited chaos hooks.

    Motivation: PR 8's crash-recovery guarantees are only as good as the
    fault-injection points that exercise them.  An injection site naming an
    unregistered kind silently never fires (``inject`` looks the kind up in
    the armed table), so the chaos CI job would green-light a path it never
    actually perturbed; a site buried in dead code is the same lie in a
    different place.  This rule keeps every ``faults.inject(...)`` call
    honest: the kind must be a string literal drawn from the registered
    :data:`FAULT_KINDS`, the site must live in one of the :data:`FAULT_TIERS`
    directories the fault harness models (``runtime/`` — worker dispatch,
    shm attach, spill writes — and, since PR 9, ``serve/`` for the
    admission-path rejection fault), and the enclosing function must be
    reachable — through the module's own call graph — from a public entry
    point of its module, so armed faults provably sit on live paths.
    """

    id = "FAULT-POINT"
    severity = Severity.ERROR
    summary = "faults.inject() sites: registered kind, runtime/serve-owned, reachable"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.path_endswith(FAULTS_OWNER):
            return
        inject_calls = list(self._inject_calls(module))
        if not inject_calls:
            return
        reachable = self._reachable_functions(module)
        in_fault_tier = any(module.in_directory(tier) for tier in FAULT_TIERS)
        for call in inject_calls:
            kind = call.args[0] if call.args else None
            if not (isinstance(kind, ast.Constant) and isinstance(kind.value, str)):
                yield self.finding(
                    module,
                    call,
                    "faults.inject() kind must be a string literal so the"
                    " site is statically auditable (PR 8)",
                )
            elif kind.value not in FAULT_KINDS:
                yield self.finding(
                    module,
                    call,
                    f"faults.inject({kind.value!r}) names an unregistered"
                    f" fault kind — registered kinds: {', '.join(FAULT_KINDS)}."
                    " An unknown kind never fires, so the chaos job would"
                    " exercise nothing here (PR 8)",
                )
            if not in_fault_tier:
                yield self.finding(
                    module,
                    call,
                    "fault injection outside repro/runtime and repro/serve —"
                    " the fault harness models runtime and admission failures"
                    " (worker crashes, shm attach, spill corruption, serve"
                    " rejects); inject at those tier boundaries instead"
                    " (PR 8/PR 9)",
                )
            function = self._outermost_function(module, call)
            if function is not None and function.name not in reachable:
                yield self.finding(
                    module,
                    call,
                    f"faults.inject() inside {function.name}(), which is not"
                    " reachable from any public entry point of this module —"
                    " an injection site on dead code exercises nothing"
                    " (PR 8)",
                )

    # -- helpers ------------------------------------------------------------

    def _inject_calls(self, module: ModuleContext) -> Iterator[ast.Call]:
        """``faults.inject(...)`` calls (and bare ``inject`` imported from it)."""
        bare_aliases = {
            alias.asname or alias.name
            for node in module.walk(ast.ImportFrom)
            if node.module is not None and node.module.split(".")[-1] == "faults"
            for alias in node.names
            if alias.name == "inject"
        }
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            if name is None:
                continue
            if name.split(".")[-2:] == ["faults", "inject"] or name in bare_aliases:
                yield call

    @staticmethod
    def _outermost_function(
        module: ModuleContext, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        function = module.enclosing_function(node)
        outermost = function
        while function is not None:
            outermost = function
            function = module.enclosing_function(function)
        return outermost

    @staticmethod
    def _reachable_functions(module: ModuleContext) -> frozenset[str]:
        """Function/method names reachable from the module's public surface.

        Roots are the public top-level functions, the public methods of
        top-level classes, and every definition referenced from module-level
        code.  Edges follow simple name loads and attribute accesses
        (``executor.submit(_dispatch, ...)``, ``self._write_spill(...)``)
        whose name matches a known definition — an over-approximation, which
        is the right direction for a reachability *requirement*.
        """
        definitions: dict[str, ast.AST] = {}
        public: list[str] = []
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                definitions[node.name] = node
                if not node.name.startswith("_"):
                    public.append(node.name)
            elif isinstance(node, ast.ClassDef):
                for child in node.body:
                    if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        definitions.setdefault(child.name, child)
                        if not child.name.startswith("_") or child.name.startswith("__"):
                            public.append(child.name)

        def references(node: ast.AST) -> set[str]:
            names: set[str] = set()
            for sub in ast.walk(node):
                if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                    if sub.id in definitions:
                        names.add(sub.id)
                elif isinstance(sub, ast.Attribute) and sub.attr in definitions:
                    names.add(sub.attr)
            return names

        queue = list(public)
        for statement in module.tree.body:
            if isinstance(
                statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                continue
            queue.extend(references(statement))
        reachable: set[str] = set()
        while queue:
            name = queue.pop()
            if name in reachable:
                continue
            reachable.add(name)
            queue.extend(references(definitions[name]) - reachable)
        return frozenset(reachable)
