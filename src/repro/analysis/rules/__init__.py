"""The shipped rule set, one plugin module per invariant family.

* :mod:`.concurrency` — shared-memory lifecycle, dispatch hygiene and lock
  discipline (the PR 4/PR 5 runtime invariants);
* :mod:`.determinism` — bit-determinism of solver paths and the hot-path
  no-float-sort rule;
* :mod:`.hygiene` — env-var registry routing, bound-docstring citations and
  the spill-tier access boundary;
* :mod:`.faultpoints` — fault-injection sites (PR 8/PR 9): registered kinds
  only, owned by the runtime or serve tier, reachable from a public entry
  point;
* :mod:`.anytime` — the PR 10 anytime contract: solvers accepting
  ``gap_target`` must fold a ``(cost, lower_bound, gap)`` certificate into
  the results they construct.

:func:`all_rules` instantiates one of each in stable (report) order; the
engine treats rules as plugins, so a new invariant is one subclass plus a
registry entry here.
"""

from __future__ import annotations

from ..core import Rule
from .anytime import GapCertificateRule
from .concurrency import LockDisciplineRule, ShmLifecycleRule, SyncInDispatchRule
from .determinism import FloatSortHotpathRule, NondetRule
from .faultpoints import FaultPointRule
from .hygiene import BoundAdmissibleDocRule, EnvRegistryRule, SpillPathRule

RULE_CLASSES: tuple[type[Rule], ...] = (
    ShmLifecycleRule,
    SyncInDispatchRule,
    LockDisciplineRule,
    FloatSortHotpathRule,
    NondetRule,
    EnvRegistryRule,
    BoundAdmissibleDocRule,
    SpillPathRule,
    FaultPointRule,
    GapCertificateRule,
)


def all_rules() -> list[Rule]:
    """Fresh instances of every shipped rule, in report order."""
    return [rule_class() for rule_class in RULE_CLASSES]
