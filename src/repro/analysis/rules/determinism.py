"""Determinism rules: bit-identical solver paths, no hot-path float sorts."""

from __future__ import annotations

import ast
from typing import Iterator

from ..core import Finding, ModuleContext, Rule, Severity

#: Directories whose modules feed solver results (the determinism contract:
#: bit-identical output at every worker count, every shm setting).
SOLVER_DIRECTORIES = ("algorithms", "baselines", "experiments")

#: Directories on the hot path (PR 4's rank-merge work removed the last
#: float sort from these; new ones need a reference twin or a waiver).
HOT_DIRECTORIES = ("cost", "runtime", "bounds")

#: The measurement/reporting harness inside ``runtime/`` — it renders tables
#: and sorts case names, never solver data; exempt from the sort rule.
HOT_EXEMPT_FILES = ("runtime/bench.py",)

#: Legacy ``numpy.random`` global-state functions (unseeded by definition).
NUMPY_LEGACY_RANDOM = frozenset(
    {"rand", "randn", "randint", "random", "random_sample", "seed", "choice", "shuffle", "permutation", "uniform", "normal"}
)

#: Order-insensitive consumers: a set flowing straight into these is fine.
ORDER_INSENSITIVE = frozenset({"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"})


class NondetRule(Rule):
    """``NONDET`` — solver paths must stay bit-deterministic.

    Motivation: the PR 3 determinism contract (results identical at every
    worker count) and PR 5's exactness proofs both assume solver modules are
    pure functions of their inputs and seeds.  Wall-clock reads
    (``time.time``), global/unseeded RNGs (stdlib ``random``, legacy
    ``np.random.*`` globals, ``np.random.default_rng()`` with a possibly-
    ``None`` seed), entropy sources (``os.urandom``, ``uuid.uuid4``) and
    iteration over ``set``/``frozenset`` (hash order leaks into results)
    inside ``algorithms/``, ``baselines/`` or ``experiments/`` all break
    that silently.  The pre-fix tree had a live instance: passing a
    ``Generator`` as ``seed`` to the k-median/k-means extensions constructed
    ``default_rng(None)`` — a fresh *unseeded* generator — instead of using
    the one supplied.  ``time.perf_counter`` is allowed (monotonic timing is
    what the scaling experiments measure); ``sorted(set(...))`` is allowed
    (the sort restores a canonical order).
    """

    id = "NONDET"
    severity = Severity.ERROR
    summary = "no wall clock, unseeded RNGs, entropy or set-order iteration in solvers"

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_directory(*SOLVER_DIRECTORIES):
            return
        random_imports = self._stdlib_random_imports(module)
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            if name is None:
                continue
            parts = name.split(".")
            tail = parts[-1]
            if name in ("time.time", "os.urandom", "uuid.uuid4") or (
                parts[0] == "secrets" and len(parts) > 1
            ):
                yield self.finding(
                    module,
                    call,
                    f"{name}() in a solver path — wall clock/entropy breaks the"
                    " bit-determinism contract (PR 3); derive values from inputs"
                    " and explicit seeds",
                )
            elif parts[0] == "random" and len(parts) == 2:
                yield self.finding(
                    module,
                    call,
                    f"stdlib global-state {name}() in a solver path — use a"
                    " seeded np.random.Generator threaded through settings",
                )
            elif tail in NUMPY_LEGACY_RANDOM and len(parts) >= 3 and parts[-2] == "random":
                yield self.finding(
                    module,
                    call,
                    f"legacy global-state {name}() in a solver path — use a"
                    " seeded np.random.default_rng(seed) generator instead",
                )
            elif len(parts) == 1 and tail in random_imports:
                yield self.finding(
                    module,
                    call,
                    f"stdlib global-state random.{tail}() (imported bare) in a"
                    " solver path — use a seeded np.random.Generator",
                )
            elif tail == "default_rng" and self._seed_may_be_none(call):
                yield self.finding(
                    module,
                    call,
                    "np.random.default_rng(...) whose seed may be None constructs"
                    " an UNSEEDED generator — pass the seed (or the caller's"
                    " Generator) through explicitly",
                )
        yield from self._check_set_iteration(module)

    @staticmethod
    def _stdlib_random_imports(module: ModuleContext) -> frozenset[str]:
        names: set[str] = set()
        for node in module.walk(ast.ImportFrom):
            if node.module == "random":
                names.update(alias.asname or alias.name for alias in node.names)
        return frozenset(names)

    @staticmethod
    def _seed_may_be_none(call: ast.Call) -> bool:
        if not call.args and not call.keywords:
            return True
        candidates = list(call.args) + [keyword.value for keyword in call.keywords]
        for argument in candidates:
            for node in ast.walk(argument):
                if isinstance(node, ast.Constant) and node.value is None:
                    return True
        return False

    def _check_set_iteration(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, (ast.Set, ast.SetComp)):
                set_node: ast.AST = node
            elif (
                isinstance(node, ast.Call)
                and module.call_name(node) in ("set", "frozenset")
            ):
                set_node = node
            else:
                continue
            parent = module.parent(set_node)
            message = (
                "iteration over a set feeds hash order into solver results —"
                " wrap it in sorted(...) to restore a canonical order (PR 3"
                " determinism contract)"
            )
            if isinstance(parent, (ast.For, ast.comprehension)) and parent.iter is set_node:
                yield self.finding(module, set_node, message)
            elif (
                isinstance(parent, ast.Call)
                and module.call_name(parent) in ("list", "tuple", "enumerate", "iter", "zip")
                and set_node in parent.args
            ):
                yield self.finding(module, set_node, message)


class FloatSortHotpathRule(Rule):
    """``FLOAT-SORT-HOTPATH`` — no new float sorts on the hot path.

    Motivation: PR 4's rank-merge sweep.  The last hot-path float sort
    (per-row ``np.sort`` over candidate distance columns) was replaced by an
    integer rank-merge (bit-packed global ranks + one unstable integer
    argsort) for a ~2.2x win, with the float sort retained only as the
    ``_unassigned_costs_float_sort`` differential reference.  A ``sorted``
    /``np.sort``/``.sort()`` call appearing in ``cost/``, ``runtime/`` or
    ``bounds/`` is therefore either a regression in the making or needs the
    same treatment: implement the integer/rank form, keep the float sort as
    a ``*_reference`` twin, or carry a justified suppression explaining why
    the call is not on a solve path.  Functions whose names contain
    ``_reference`` or ``_float_sort`` are exempt (they ARE the reference
    twins); so is ``runtime/bench.py`` (a reporting harness that sorts case
    names, not solver data).
    """

    id = "FLOAT-SORT-HOTPATH"
    severity = Severity.ERROR
    summary = "sorted()/np.sort()/.sort() in cost/, runtime/, bounds/ needs a waiver"

    _EXEMPT_FUNCTION_MARKERS = ("_reference", "_float_sort")

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not module.in_directory(*HOT_DIRECTORIES):
            return
        if any(module.path_endswith(exempt) for exempt in HOT_EXEMPT_FILES):
            return
        for call in module.walk(ast.Call):
            name = module.call_name(call)
            tail = name.split(".")[-1] if name else None
            if tail not in ("sort", "sorted"):
                continue
            function = module.enclosing_function(call)
            if function is not None and any(
                marker in function.name for marker in self._EXEMPT_FUNCTION_MARKERS
            ):
                continue
            yield self.finding(
                module,
                call,
                f"{name}() on the hot path ({'/'.join(HOT_DIRECTORIES)}) — hot"
                " sweeps use integer rank merges (PR 4); keep float sorts to"
                " *_reference twins or justify the suppression",
            )
