"""Rule engine for the repo-aware static checker (``python -m repro lint``).

Five PRs of runtime growth produced invariants that lived only in
docstrings: shm segments must be leased and unlinked exactly once (PR 4's
bpo-38119 workaround), synchronized primitives must ship through pool
initargs rather than dispatch tuples (PR 5), hot paths must not fall back to
float sorts (PR 4's rank-merge win), solver paths must stay bit-deterministic
at every worker count.  This package machine-checks them.

Architecture
------------
* :class:`ModuleContext` — one parsed source file: path, source lines, AST,
  a child→parent node map and small query helpers rules share.
* :class:`Rule` — a check over one module.  Rules are plain classes with an
  ``id``, a default :class:`Severity` and a ``check(module)`` generator;
  the shipped rules live in :mod:`repro.analysis.rules` and each cites the
  PR/incident that motivated it in its docstring.
* :func:`lint_paths` — the driver: walk the target paths, parse each
  ``.py`` file once, run every rule, then apply suppressions.

Suppressions
------------
A finding is suppressed by a ``# repro: noqa[RULE-ID]`` comment on the
flagged line (or on a pure-comment line immediately above it, for long
statements), and **must** carry a justification after ``--``::

    packed.sort(axis=2)  # repro: noqa[FLOAT-SORT-HOTPATH] -- integer rank keys

A bare ``noqa`` without justification text does not suppress anything — the
finding stays active with a note, so reviewers never meet an unexplained
waiver.  Suppressions are per-rule; there is deliberately no blanket form.

Exit codes (CI gating)
----------------------
``0`` — no active findings (suppressed ones are fine);
``1`` — at least one active :attr:`Severity.ERROR` finding (or any finding
under ``--strict``);
``2`` — usage/internal error (unreadable target, no files).
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable, Iterator, Mapping, Sequence

if TYPE_CHECKING:
    from .dataflow.project import Project


class Severity(enum.Enum):
    """How a finding gates CI: errors always fail, warnings only in strict."""

    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: Severity
    path: str
    line: int
    col: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.severity.value}] {self.message}"


@dataclass(frozen=True)
class SuppressedFinding:
    """A finding waived by a justified ``# repro: noqa[...]`` comment."""

    finding: Finding
    justification: str


_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa\[(?P<rules>[A-Z0-9\-]+(?:\s*,\s*[A-Z0-9\-]+)*)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: noqa[...]`` comment."""

    rules: tuple[str, ...]
    justification: str | None
    line: int


class ModuleContext:
    """One parsed module plus the derived indexes every rule wants.

    ``path`` is the file's POSIX-style path; rules scope themselves by path
    *parts* (``"cost" in module.parts``) or suffixes
    (``module.path_endswith("runtime/shm.py")``) so fixture trees that
    mirror the repo layout exercise the same logic as the real tree.
    """

    def __init__(self, path: Path, source: str, tree: ast.Module):
        self.file = path
        self.path = path.as_posix()
        self.parts = path.parts
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        self.suppressions = _parse_suppressions(self.lines)

    # -- path scoping -------------------------------------------------------

    def path_endswith(self, suffix: str) -> bool:
        return self.path.endswith(suffix)

    def in_directory(self, *names: str) -> bool:
        """Whether any ancestor directory has one of ``names``."""
        return any(part in names for part in self.parts[:-1])

    # -- AST queries --------------------------------------------------------

    def walk(self, *types: type) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if not types or isinstance(node, types):
                yield node

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self.parents.get(node)

    def dotted_name(self, node: ast.AST) -> str | None:
        """Best-effort dotted name of an expression (``np.random.default_rng``)."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.dotted_name(node.value)
            return f"{base}.{node.attr}" if base is not None else None
        return None

    def call_name(self, call: ast.Call) -> str | None:
        return self.dotted_name(call.func)

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current
            current = self.parents.get(current)
        return None

    def enclosing_statement(self, node: ast.AST) -> ast.stmt | None:
        """The innermost statement containing ``node``."""
        current: ast.AST | None = node
        while current is not None and not isinstance(current, ast.stmt):
            current = self.parents.get(current)
        return current

    def statement_block(self, statement: ast.stmt) -> list[ast.stmt] | None:
        """The statement list that directly contains ``statement``."""
        parent = self.parents.get(statement)
        if parent is None:
            return None
        for field_name in ("body", "orelse", "finalbody", "handlers"):
            block = getattr(parent, field_name, None)
            if isinstance(block, list) and statement in block:
                return block
        for handler in getattr(parent, "handlers", []) or []:
            if statement in getattr(handler, "body", []):
                return handler.body
        return None


def _parse_suppressions(lines: Sequence[str]) -> dict[int, Suppression]:
    """Map *effective* line number -> suppression.

    A suppression on a pure-comment line applies to the next line (so long
    calls can carry their waiver above); otherwise it applies to its own
    line.
    """
    table: dict[int, Suppression] = {}
    for index, text in enumerate(lines, start=1):
        match = _NOQA_PATTERN.search(text)
        if match is None:
            continue
        rules = tuple(part.strip() for part in match.group("rules").split(","))
        effective = index + 1 if text.lstrip().startswith("#") else index
        table[effective] = Suppression(
            rules=rules, justification=match.group("why"), line=index
        )
    return table


class Rule:
    """Base class for one repo invariant check.

    Subclasses set ``id`` (the ``RULE-ID`` used in reports and ``noqa``
    comments), ``severity`` and ``summary``, and implement
    :meth:`check` yielding :class:`Finding` objects.  The class docstring
    documents the motivating PR/incident and is surfaced by
    ``python -m repro lint --list-rules``.
    """

    id: str = ""
    severity: Severity = Severity.ERROR
    summary: str = ""

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleContext, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=module.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule(Rule):
    """Base class for whole-program (interprocedural) checks.

    Project rules run once per lint invocation over the
    :class:`~repro.analysis.dataflow.project.Project` built from every
    parsed module, instead of once per module.  They share the ``Finding``
    schema, suppression comments and exit-code contract with per-module
    rules; ``--no-dataflow`` skips them for the fast intra-module mode.
    """

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Project rules contribute nothing during the per-module pass."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        raise NotImplementedError


@dataclass
class LintReport:
    """Everything one lint run produced, ready for a reporter."""

    targets: list[str]
    files: int = 0
    findings: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    #: Findings matched by ``--baseline`` — reported but never gating.
    baselined: list[Finding] = field(default_factory=list)
    errors: list[str] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        return {
            "error": sum(1 for f in self.findings if f.severity is Severity.ERROR),
            "warning": sum(1 for f in self.findings if f.severity is Severity.WARNING),
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
        }

    def exit_code(self, *, strict: bool = False) -> int:
        if self.errors:
            return 2
        if strict and self.findings:
            return 1
        if any(finding.severity is Severity.ERROR for finding in self.findings):
            return 1
        return 0


def iter_python_files(targets: Iterable[Path]) -> Iterator[Path]:
    for target in targets:
        if target.is_dir():
            yield from sorted(
                path
                for path in target.rglob("*.py")
                if "__pycache__" not in path.parts
            )
        elif target.suffix == ".py":
            yield target


def parse_module(path: Path) -> ModuleContext:
    source = path.read_text(encoding="utf-8")
    return ModuleContext(path, source, ast.parse(source, filename=str(path)))


def _apply_one_suppression(
    module: ModuleContext, finding: Finding, report: LintReport
) -> None:
    suppression = module.suppressions.get(finding.line)
    if suppression is None or finding.rule not in suppression.rules:
        report.findings.append(finding)
    elif not suppression.justification:
        report.findings.append(
            Finding(
                rule=finding.rule,
                severity=finding.severity,
                path=finding.path,
                line=finding.line,
                col=finding.col,
                message=finding.message
                + " (suppression comment present but missing the required"
                " '-- justification' text, so it does not apply)",
            )
        )
    else:
        report.suppressed.append(
            SuppressedFinding(finding=finding, justification=suppression.justification)
        )


def _apply_suppressions(
    module: ModuleContext, findings: Iterable[Finding], report: LintReport
) -> None:
    for finding in findings:
        _apply_one_suppression(module, finding, report)


def apply_baseline(report: LintReport, baseline: Mapping[str, Any]) -> None:
    """Move findings matched by a checked-in baseline to ``report.baselined``.

    ``baseline`` is a previously written ``--format json`` document (or any
    mapping with a ``findings`` list of ``{"rule", "path", ...}`` entries).
    Matching is by ``(rule, path)`` occurrence count, **not** line number,
    so unrelated edits that shift a known finding up or down a file do not
    resurrect it; a *new* finding of an already-baselined rule in the same
    file only gates once the baseline's count for that pair is used up.
    Baselined findings never affect :meth:`LintReport.exit_code` — that is
    the warn-first landing path for new rules.
    """
    budget: dict[tuple[str, str], int] = {}
    for entry in baseline.get("findings", []):
        key = (str(entry.get("rule", "")), str(entry.get("path", "")))
        budget[key] = budget.get(key, 0) + 1
    remaining: list[Finding] = []
    for finding in report.findings:
        key = (finding.rule, finding.path)
        if budget.get(key, 0) > 0:
            budget[key] -= 1
            report.baselined.append(finding)
        else:
            remaining.append(finding)
    report.findings = remaining


def lint_paths(
    targets: Sequence[str | Path],
    rules: Sequence[Rule] | None = None,
    *,
    dataflow: bool = True,
) -> LintReport:
    """Run ``rules`` (default: every shipped rule) over ``targets``.

    With ``dataflow=True`` (the default) the parsed modules are additionally
    assembled into a :class:`~repro.analysis.dataflow.project.Project` and
    the interprocedural rules from :mod:`repro.analysis.dataflow` run over
    it; ``dataflow=False`` preserves the fast intra-module-only mode
    (``--no-dataflow`` on the CLI).  Explicitly passed ``rules`` are split
    by kind: :class:`ProjectRule` instances run in the project pass, the
    rest per module.
    """
    from .dataflow import dataflow_rules

    if rules is None:
        from .rules import all_rules

        rules = list(all_rules())
        if dataflow:
            rules = rules + list(dataflow_rules())
    module_rules = [rule for rule in rules if not isinstance(rule, ProjectRule)]
    project_rules = [rule for rule in rules if isinstance(rule, ProjectRule)]
    paths = [Path(target) for target in targets]
    report = LintReport(targets=[path.as_posix() for path in paths])
    missing = [path for path in paths if not path.exists()]
    if missing:
        report.errors.extend(f"no such file or directory: {path}" for path in missing)
        return report
    parsed: dict[str, ModuleContext] = {}
    for file_path in iter_python_files(paths):
        try:
            module = parse_module(file_path)
        except (SyntaxError, UnicodeDecodeError, OSError) as error:
            report.errors.append(f"cannot parse {file_path}: {error}")
            continue
        report.files += 1
        parsed[module.path] = module
        collected: list[Finding] = []
        for rule in module_rules:
            collected.extend(rule.check(module))
        collected.sort(key=lambda finding: (finding.line, finding.col, finding.rule))
        _apply_suppressions(module, collected, report)
    if dataflow and project_rules and parsed:
        from .dataflow.project import Project

        project = Project(parsed)
        for project_rule in project_rules:
            for finding in project_rule.check_project(project):
                owner = parsed.get(finding.path)
                if owner is None:
                    report.findings.append(finding)
                else:
                    _apply_one_suppression(owner, finding, report)
    report.findings.sort(key=lambda finding: (finding.path, finding.line, finding.col))
    return report
