"""Repo-aware static analysis: ``python -m repro lint``.

An AST-based rule engine (:mod:`.core`) plus ~8 repo-specific rules
(:mod:`.rules`) that machine-check the runtime's load-bearing invariants —
shm lifecycle, dispatch hygiene, lock discipline, solver determinism,
hot-path sort policy, env-var registry routing, bound-docstring citations
and the spill-tier boundary.  Each rule's docstring cites the PR/incident
that motivated it; ``python -m repro lint --list-rules`` prints them.

Since PR 7 the default run also assembles every parsed module into a
project symbol table + call graph (:mod:`.dataflow`) and runs three
interprocedural rules — NONDET-FLOW (seeds through call chains),
SHM-ESCAPE (lease escape analysis), LOCK-ORDER (lock-acquisition-order
cycles); ``--no-dataflow`` preserves the fast intra-module mode and
``--baseline FILE`` lets new rules land warn-first.

Findings are suppressed per-rule with ``# repro: noqa[RULE-ID] -- why``
comments; the justification text is mandatory.  Exit codes gate CI: 0
clean, 1 findings, 2 usage error.
"""

from .core import (
    Finding,
    LintReport,
    ModuleContext,
    ProjectRule,
    Rule,
    Severity,
    apply_baseline,
    lint_paths,
)
from .dataflow import DATAFLOW_RULE_CLASSES, dataflow_rules
from .reporters import render_json, render_rule_table, render_text
from .rules import RULE_CLASSES, all_rules

__all__ = [
    "DATAFLOW_RULE_CLASSES",
    "Finding",
    "LintReport",
    "ModuleContext",
    "ProjectRule",
    "Rule",
    "RULE_CLASSES",
    "Severity",
    "all_rules",
    "apply_baseline",
    "dataflow_rules",
    "lint_paths",
    "render_json",
    "render_rule_table",
    "render_text",
]
