"""Render a :class:`~repro.analysis.core.LintReport` as text or JSON.

The text form is for humans and CI logs; the JSON form
(``python -m repro lint --format json``) is schema-tagged
(``repro-lint/1``) the same way the bench documents are
(``repro-bench/1``), so tooling can consume findings without scraping.
"""

from __future__ import annotations

import json

from .core import LintReport

#: Schema tag written into every JSON report.
JSON_SCHEMA = "repro-lint/1"


def render_text(report: LintReport, *, strict: bool = False, verbose: bool = False) -> str:
    """Human-readable report: findings, then suppressions, then the tally."""
    lines: list[str] = []
    for error in report.errors:
        lines.append(f"error: {error}")
    for finding in report.findings:
        lines.append(finding.render())
    if verbose and report.suppressed:
        lines.append("")
        lines.append(f"{len(report.suppressed)} suppressed finding(s):")
        for suppressed in report.suppressed:
            lines.append(f"  {suppressed.finding.render()}")
            lines.append(f"    justification: {suppressed.justification}")
    if report.baselined:
        lines.append("")
        lines.append(
            f"{len(report.baselined)} baselined finding(s) (known, not gating):"
        )
        for finding in report.baselined:
            lines.append(f"  {finding.render()}")
    counts = report.counts()
    tally = (
        f"checked {report.files} file(s): "
        f"{counts['error']} error(s), {counts['warning']} warning(s), "
        f"{counts['suppressed']} suppressed"
    )
    if counts["baselined"]:
        tally += f", {counts['baselined']} baselined"
    lines.append(tally)
    code = report.exit_code(strict=strict)
    if code == 0:
        lines.append("clean.")
    return "\n".join(lines)


def render_json(report: LintReport, *, strict: bool = False) -> str:
    """Machine-readable report (schema ``repro-lint/1``)."""
    document = {
        "schema": JSON_SCHEMA,
        "targets": report.targets,
        "files": report.files,
        "counts": report.counts(),
        "exit_code": report.exit_code(strict=strict),
        "strict": bool(strict),
        "errors": list(report.errors),
        "findings": [
            {
                "rule": finding.rule,
                "severity": finding.severity.value,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in report.findings
        ],
        "suppressed": [
            {
                "rule": suppressed.finding.rule,
                "severity": suppressed.finding.severity.value,
                "path": suppressed.finding.path,
                "line": suppressed.finding.line,
                "col": suppressed.finding.col,
                "message": suppressed.finding.message,
                "justification": suppressed.justification,
            }
            for suppressed in report.suppressed
        ],
        "baselined": [
            {
                "rule": finding.rule,
                "severity": finding.severity.value,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in report.baselined
        ],
    }
    return json.dumps(document, indent=2)


def render_rule_table() -> str:
    """The ``--list-rules`` listing: id, severity, summary, motivation.

    Intra-module rules first, then the interprocedural (dataflow) rules,
    marked as such because ``--no-dataflow`` skips them.
    """
    from .dataflow import dataflow_rules
    from .rules import all_rules

    lines: list[str] = []
    for rule in all_rules():
        lines.append(f"{rule.id}  [{rule.severity.value}]")
        lines.append(f"  {rule.summary}")
        doc = (rule.__class__.__doc__ or "").strip().splitlines()
        for line in doc:
            lines.append(f"    {line.strip()}")
        lines.append("")
    for rule in dataflow_rules():
        lines.append(f"{rule.id}  [{rule.severity.value}]  (dataflow)")
        lines.append(f"  {rule.summary}")
        doc = (rule.__class__.__doc__ or "").strip().splitlines()
        for line in doc:
            lines.append(f"    {line.strip()}")
        lines.append("")
    return "\n".join(lines).rstrip()


__all__ = ["JSON_SCHEMA", "render_text", "render_json", "render_rule_table"]
