"""General-metric (graph) workload generators.

The paper's general-metric theorems (2.6/2.7) need instances whose metric is
not Euclidean.  Weighted graphs are the natural database-flavoured source
(road networks, sensor network topologies, data-center fabrics); uncertain
points live on the nodes and their possible locations are nearby nodes.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .._validation import as_rng, check_positive_int
from ..metrics.graph import GraphMetric
from ..uncertain.dataset import UncertainDataset
from ..uncertain.point import UncertainPoint
from .synthetic import WorkloadSpec


def random_graph_metric(
    node_count: int = 60,
    *,
    model: str = "watts-strogatz",
    seed: int = 0,
) -> GraphMetric:
    """A connected random weighted graph's shortest-path metric.

    Models: ``"watts-strogatz"`` (small world), ``"grid"`` (2-D lattice),
    ``"geometric"`` (random geometric graph, re-sampled until connected).
    Edge weights are drawn uniformly from [0.5, 1.5].
    """
    check_positive_int(node_count, name="node_count")
    rng = as_rng(seed)
    if model == "watts-strogatz":
        graph = nx.connected_watts_strogatz_graph(node_count, k=4, p=0.3, seed=int(rng.integers(0, 2**31)))
    elif model == "grid":
        side = int(np.ceil(np.sqrt(node_count)))
        graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(side, side))
        graph = graph.subgraph(range(node_count)).copy()
        if not nx.is_connected(graph):
            graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(side, side))
    elif model == "geometric":
        radius = np.sqrt(4.0 / node_count)
        graph = nx.random_geometric_graph(node_count, radius, seed=int(rng.integers(0, 2**31)))
        while not nx.is_connected(graph):
            radius *= 1.3
            graph = nx.random_geometric_graph(node_count, radius, seed=int(rng.integers(0, 2**31)))
    else:
        raise ValueError(f"unknown graph model {model!r}")
    for _, _, data in graph.edges(data=True):
        data["weight"] = float(rng.uniform(0.5, 1.5))
    return GraphMetric(graph)


def graph_uncertain_workload(
    n: int = 30,
    z: int = 4,
    *,
    node_count: int = 60,
    model: str = "watts-strogatz",
    locality: int = 2,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """Uncertain points on a random graph metric.

    Each uncertain point picks a home node and its ``z`` possible locations
    uniformly from the nodes within ``locality`` hops of home (an object
    whose position is known up to a small neighbourhood).
    """
    check_positive_int(n, name="n")
    check_positive_int(z, name="z")
    rng = as_rng(seed)
    metric = random_graph_metric(node_count, model=model, seed=seed)
    adjacency = metric.matrix

    points = []
    for index in range(n):
        home = int(rng.integers(0, metric.size))
        # Nodes within `locality` hops: approximate via the `locality` nearest
        # nodes by shortest-path distance (robust to weighting).
        order = np.argsort(adjacency[home])
        neighbourhood = order[: max(z, locality * 4)]
        chosen = rng.choice(neighbourhood, size=min(z, neighbourhood.shape[0]), replace=False)
        locations = chosen.astype(float).reshape(-1, 1)
        probabilities = rng.dirichlet(np.ones(locations.shape[0]))
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=metric)
    spec = WorkloadSpec(
        name=f"graph-{model}",
        n=n,
        z=z,
        dimension=1,
        seed=seed,
        parameters={"node_count": node_count, "model": model, "locality": locality},
    )
    return dataset, spec
