"""Synthetic uncertain-data workload generators.

The paper evaluates nothing empirically (its evaluation is the theory summary
in Table 1), so the reproduction needs workloads that exercise every regime
Table 1 covers: Euclidean spaces of several dimensions, the line (R^1) and
general (graph) metrics, with varying numbers of uncertain points ``n``,
support sizes ``z`` and cluster structure.  All generators are deterministic
given their seed.

The database framing of the paper's introduction (sensor readings, data
integration, imprecise measurements) motivates the generator shapes:

* :func:`gaussian_clusters` — ``k_true`` well-separated Gaussian clusters;
  each uncertain point's locations jitter around a true position (a sensor
  reporting noisy readings).
* :func:`uniform_cloud` — no cluster structure, uniform positions and
  uniform location noise (adversarial for reductions).
* :func:`heavy_tailed` — a small fraction of the locations are far outliers
  with small probability (exercises the difference between expected points
  and 1-center representatives).
* :func:`line_workload` — one-dimensional instances for the R^1 experiments.
* :func:`anisotropic_clusters` — elongated clusters (stress for SEB-based
  refinement).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from .._validation import as_rng, check_positive_int
from ..metrics.euclidean import EuclideanMetric
from ..uncertain.dataset import UncertainDataset
from ..uncertain.point import UncertainPoint


@dataclass(frozen=True)
class WorkloadSpec:
    """Reproducible description of a generated workload."""

    name: str
    n: int
    z: int
    dimension: int
    seed: int
    parameters: dict

    def describe(self) -> str:
        """Compact one-line description used in experiment reports."""
        return f"{self.name}(n={self.n}, z={self.z}, d={self.dimension}, seed={self.seed})"


def _dirichlet_probabilities(rng: np.random.Generator, z: int, concentration: float) -> np.ndarray:
    if z == 1:
        return np.array([1.0])
    return rng.dirichlet(np.full(z, concentration))


def gaussian_clusters(
    n: int = 60,
    z: int = 5,
    dimension: int = 2,
    *,
    k_true: int = 4,
    cluster_spread: float = 10.0,
    location_jitter: float = 0.5,
    concentration: float = 1.0,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """Uncertain points whose locations jitter around clustered true positions."""
    check_positive_int(n, name="n")
    check_positive_int(z, name="z")
    check_positive_int(dimension, name="dimension")
    check_positive_int(k_true, name="k_true")
    rng = as_rng(seed)
    cluster_centers = rng.normal(scale=cluster_spread, size=(k_true, dimension))
    points = []
    for index in range(n):
        cluster = int(rng.integers(0, k_true))
        true_position = cluster_centers[cluster] + rng.normal(scale=1.0, size=dimension)
        locations = true_position + rng.normal(scale=location_jitter, size=(z, dimension))
        probabilities = _dirichlet_probabilities(rng, z, concentration)
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=EuclideanMetric())
    spec = WorkloadSpec(
        name="gaussian-clusters",
        n=n,
        z=z,
        dimension=dimension,
        seed=seed,
        parameters={
            "k_true": k_true,
            "cluster_spread": cluster_spread,
            "location_jitter": location_jitter,
            "concentration": concentration,
        },
    )
    return dataset, spec


def uniform_cloud(
    n: int = 60,
    z: int = 5,
    dimension: int = 2,
    *,
    extent: float = 10.0,
    location_jitter: float = 1.0,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """Uncertain points scattered uniformly with uniform location noise."""
    rng = as_rng(seed)
    points = []
    for index in range(n):
        true_position = rng.uniform(-extent, extent, size=dimension)
        locations = true_position + rng.uniform(-location_jitter, location_jitter, size=(z, dimension))
        probabilities = _dirichlet_probabilities(rng, z, 1.0)
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=EuclideanMetric())
    spec = WorkloadSpec(
        name="uniform-cloud",
        n=n,
        z=z,
        dimension=dimension,
        seed=seed,
        parameters={"extent": extent, "location_jitter": location_jitter},
    )
    return dataset, spec


def heavy_tailed(
    n: int = 60,
    z: int = 5,
    dimension: int = 2,
    *,
    outlier_probability: float = 0.1,
    outlier_scale: float = 30.0,
    base_scale: float = 5.0,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """Each point has a low-probability far-away location (sensor glitches).

    This is the regime where the expected point and the 1-center/median
    representatives genuinely differ, driving the E12 ablation.
    """
    rng = as_rng(seed)
    points = []
    for index in range(n):
        true_position = rng.normal(scale=base_scale, size=dimension)
        locations = true_position + rng.normal(scale=0.3, size=(z, dimension))
        probabilities = _dirichlet_probabilities(rng, z, 2.0)
        # Turn the least likely location into a far outlier with the given
        # total probability mass.
        outlier_index = int(np.argmin(probabilities))
        direction = rng.normal(size=dimension)
        direction /= max(np.linalg.norm(direction), 1e-12)
        locations[outlier_index] = true_position + direction * outlier_scale
        probabilities = probabilities * (1.0 - outlier_probability) / probabilities.sum()
        probabilities[outlier_index] += outlier_probability
        probabilities /= probabilities.sum()
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=EuclideanMetric())
    spec = WorkloadSpec(
        name="heavy-tailed",
        n=n,
        z=z,
        dimension=dimension,
        seed=seed,
        parameters={
            "outlier_probability": outlier_probability,
            "outlier_scale": outlier_scale,
            "base_scale": base_scale,
        },
    )
    return dataset, spec


def line_workload(
    n: int = 40,
    z: int = 4,
    *,
    segment_count: int = 3,
    segment_length: float = 10.0,
    gap: float = 25.0,
    location_jitter: float = 0.8,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """One-dimensional workload: points on well separated segments of a line."""
    rng = as_rng(seed)
    points = []
    for index in range(n):
        segment = int(rng.integers(0, segment_count))
        offset = segment * (segment_length + gap)
        true_position = offset + rng.uniform(0.0, segment_length)
        locations = true_position + rng.normal(scale=location_jitter, size=(z, 1))
        probabilities = _dirichlet_probabilities(rng, z, 1.0)
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=EuclideanMetric())
    spec = WorkloadSpec(
        name="line",
        n=n,
        z=z,
        dimension=1,
        seed=seed,
        parameters={"segment_count": segment_count, "segment_length": segment_length, "gap": gap},
    )
    return dataset, spec


def anisotropic_clusters(
    n: int = 60,
    z: int = 5,
    dimension: int = 2,
    *,
    k_true: int = 3,
    elongation: float = 6.0,
    seed: int = 0,
) -> tuple[UncertainDataset, WorkloadSpec]:
    """Elongated clusters: location noise stretched along a random direction."""
    rng = as_rng(seed)
    cluster_centers = rng.normal(scale=12.0, size=(k_true, dimension))
    directions = rng.normal(size=(k_true, dimension))
    directions /= np.linalg.norm(directions, axis=1, keepdims=True)
    points = []
    for index in range(n):
        cluster = int(rng.integers(0, k_true))
        along = rng.normal(scale=elongation)
        across = rng.normal(scale=0.5, size=dimension)
        true_position = cluster_centers[cluster] + along * directions[cluster] + across
        locations = true_position + rng.normal(scale=0.4, size=(z, dimension))
        probabilities = _dirichlet_probabilities(rng, z, 1.5)
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=f"P{index}"))
    dataset = UncertainDataset(points=tuple(points), metric=EuclideanMetric())
    spec = WorkloadSpec(
        name="anisotropic-clusters",
        n=n,
        z=z,
        dimension=dimension,
        seed=seed,
        parameters={"k_true": k_true, "elongation": elongation},
    )
    return dataset, spec


#: Registry used by the CLI and the experiment harness.
EUCLIDEAN_WORKLOADS: dict[str, Callable[..., tuple[UncertainDataset, WorkloadSpec]]] = {
    "gaussian-clusters": gaussian_clusters,
    "uniform-cloud": uniform_cloud,
    "heavy-tailed": heavy_tailed,
    "line": line_workload,
    "anisotropic-clusters": anisotropic_clusters,
}
