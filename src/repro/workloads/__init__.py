"""Synthetic workload generators for the experiments and examples."""

from .graphs import graph_uncertain_workload, random_graph_metric
from .synthetic import (
    EUCLIDEAN_WORKLOADS,
    WorkloadSpec,
    anisotropic_clusters,
    gaussian_clusters,
    heavy_tailed,
    line_workload,
    uniform_cloud,
)

__all__ = [
    "WorkloadSpec",
    "gaussian_clusters",
    "uniform_cloud",
    "heavy_tailed",
    "line_workload",
    "anisotropic_clusters",
    "EUCLIDEAN_WORKLOADS",
    "graph_uncertain_workload",
    "random_graph_metric",
]
