"""Provable lower bounds used as ratio denominators in the experiments."""

from .lower_bounds import (
    assigned_cost_lower_bound,
    expected_point_lower_bound,
    one_center_representative_lower_bound,
    per_point_lower_bound,
)

__all__ = [
    "per_point_lower_bound",
    "expected_point_lower_bound",
    "one_center_representative_lower_bound",
    "assigned_cost_lower_bound",
]
