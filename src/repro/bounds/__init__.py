"""Provable lower bounds: ratio denominators and branch-and-bound kernels."""

from .lower_bounds import (
    PRUNE_SLACK,
    assigned_cost_lower_bound,
    assignment_lower_bounds,
    expected_point_lower_bound,
    one_center_representative_lower_bound,
    per_point_lower_bound,
    prune_margin,
    subset_assigned_lower_bounds,
    subset_unassigned_lower_bounds,
)

__all__ = [
    "per_point_lower_bound",
    "expected_point_lower_bound",
    "one_center_representative_lower_bound",
    "assigned_cost_lower_bound",
    "PRUNE_SLACK",
    "prune_margin",
    "subset_assigned_lower_bounds",
    "subset_unassigned_lower_bounds",
    "assignment_lower_bounds",
]
