"""Lower bounds on the optimal expected cost.

Empirical approximation ratios need a denominator.  Using a *heuristic* "best
found" solution would under-state the ratio, so the experiment harness
divides by provable lower bounds instead; any measured ratio is then an
upper bound on the true ratio and can be compared honestly against the
theorems' guarantees.

The bounds all come from the paper's own lemmas:

* **per-point bound** (Lemma 3.2): for any centers and assignment,
  ``EcostA >= sum_j p_ij d(P_ij, A(P_i)) >= min_q E[d(P_i, q)]`` — the best
  expected distance any single point can achieve, maximised over points.
* **expected-point bound** (Lemma 3.4): ``cost_{P̄}(C) <= EcostA(C)`` for any
  centers/assignment, so the optimal deterministic k-center value of the
  expected points lower-bounds the optimal unrestricted assigned cost.
* **1-center bound** (Lemma 3.6): ``cost_{P̃}(C) <= 2 EcostA(C)``, so half the
  optimal deterministic k-center value of the per-point 1-centers is a lower
  bound in any metric space.

The deterministic optima themselves are lower-bounded by ``r_G / 2`` (the
Gonzalez guarantee) or computed exactly for small instances, keeping the
whole chain a valid bound.

Branch-and-bound subset bounds
------------------------------
The same Lemma 3.2 argument, applied *per candidate subset* instead of per
instance, is what drives the pruned brute-force enumerations
(:mod:`repro.baselines.brute_force`): for any assignment into subset ``S``,
``EcostA(S) >= max_i min_{c in S} E[d(P_i, c)]``, and for the unassigned
objective ``Ecost(S) >= max_i E[min_{c in S} d(P_i, c)]``.  The vectorized
chunk kernels live on :class:`~repro.cost.context.CostContext` (they read
its cached expected matrix / pinned supports); this module re-exports them
under their lemma-facing names together with :func:`prune_margin`, the
floating-point slack every incumbent comparison applies.  A subset (or
assignment row) is pruned only when its bound exceeds the incumbent by more
than the margin, so bound-kernel rounding can only ever *reduce* pruning,
never change a result.
"""

from __future__ import annotations

import numpy as np

from ..cost.context import CostContext

from ..deterministic.exact import (
    MAX_EXACT_PARTITION_POINTS,
    exact_euclidean_kcenter,
)
from ..deterministic.gonzalez import gonzalez_kcenter
from ..geometry.median import geometric_median, median_objective
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import one_center_reduction


def per_point_lower_bound(dataset: UncertainDataset) -> float:
    """``max_i min_q E[d(P_i, q)]`` — Lemma 3.2 applied point-wise.

    For Euclidean-style metrics the inner minimum is the weighted
    Fermat–Weber value (computed by Weiszfeld); for finite metrics it is the
    minimum over all elements.
    """
    metric = dataset.metric
    best = 0.0
    if metric.supports_expected_point:
        for point in dataset.points:
            median = geometric_median(point.locations, point.probabilities)
            value = float(median_objective(point.locations, median, point.probabilities))
            best = max(best, value)
        return best
    candidates = metric.candidate_centers(dataset.all_locations())
    for point in dataset.points:
        expected = point.expected_distances_to_many(candidates, metric)
        best = max(best, float(expected.min()))
    return best


def _deterministic_lower_bound(points: np.ndarray, k: int, dataset: UncertainDataset) -> float:
    """A lower bound on the deterministic k-center optimum of ``points``."""
    metric = dataset.metric
    if k >= points.shape[0]:
        return 0.0
    if metric.supports_expected_point and points.shape[0] <= MAX_EXACT_PARTITION_POINTS:
        return exact_euclidean_kcenter(points, k).radius
    # Gonzalez guarantee: its radius is at most twice the optimum.
    return gonzalez_kcenter(points, k, metric).radius / 2.0


def expected_point_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Lemma 3.4 bound: deterministic k-center optimum of the expected points."""
    if not dataset.metric.supports_expected_point:
        return 0.0
    return _deterministic_lower_bound(dataset.expected_points(), k, dataset)


def one_center_representative_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Lemma 3.6 bound: half the k-center optimum of the per-point 1-centers."""
    representatives = one_center_reduction(dataset)
    return _deterministic_lower_bound(representatives, k, dataset) / 2.0


def assigned_cost_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Best available lower bound on the optimal unrestricted assigned cost.

    The max of the Lemma 3.2 per-point bound, the Lemma 3.6 1-center bound
    and (for Euclidean-style metrics) the Lemma 3.4 expected-point bound —
    each individually a valid lower bound, so their maximum is too.
    """
    bounds = [per_point_lower_bound(dataset), one_center_representative_lower_bound(dataset, k)]
    if dataset.metric.supports_expected_point:
        bounds.append(expected_point_lower_bound(dataset, k))
    return max(bounds)


# ---------------------------------------------------------------------------
# Per-subset bounds for branch-and-bound pruning
# ---------------------------------------------------------------------------

#: Relative floating-point slack applied to every incumbent comparison.  The
#: bounds are admissible in real arithmetic, but they are computed by
#: different kernels (a gather/min/max over the expected matrix) than the
#: costs they bound (the sorted-sweep ``E[max]`` kernel), so the two may
#: round apart by a few ulps.  Comparing against ``incumbent * (1 + slack)``
#: keeps a pruned row's true cost strictly above the incumbent even under
#: worst-case rounding; the slack is ~1e6 ulps wide — astronomically larger
#: than kernel rounding — while pruning essentially nothing extra.
PRUNE_SLACK = 1e-9

#: Relative slack for comparisons involving *float32* kernel output (the
#: opt-in ``REPRO_CONTEXT_DTYPE=float32`` context layout).  float32 carries
#: ~1.2e-7 relative rounding per operation and the sweep kernels accumulate a
#: few of those, so the float64 slack above is far too tight; 1e-5 is ~100x
#: wider than the worst observed float32 drift (pinned by the differential
#: tests in ``tests/test_best_first.py``) while still pruning essentially
#: everything the exact bound would.  Admissibility is preserved the same way
#: as with :data:`PRUNE_SLACK`: a row is dropped only when its float32 bound
#: exceeds the incumbent by more than the margin, and every float32 *winner*
#: is re-scored through the exact float64 kernels before it can become a
#: result, so the wider margin can only reduce pruning, never change output.
FLOAT32_SLACK = 1e-5


def prune_margin(threshold: float, slack: float = PRUNE_SLACK) -> float:
    """The absolute slack added to ``threshold`` before pruning against it.

    The bounds are admissible in *real* arithmetic; this relative slack
    (:data:`PRUNE_SLACK` by default, :data:`FLOAT32_SLACK` when the float32
    context layout computed the bound) absorbs cross-kernel floating-point
    rounding so a row is pruned only when its bound exceeds the incumbent by
    more than any rounding could explain — widening the margin can only
    reduce pruning, never change a result.
    """
    return slack * max(1.0, abs(threshold))


def subset_assigned_lower_bounds(context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
    """Lemma 3.2 subset-wise: admissible bounds for any restricted assignment.

    ``EcostA(S) >= max_i min_{c in S} E[d(P_i, c)]`` for every assignment
    rule, so one kernel serves ED, EP, OC, nearest-mode and black-box
    policies alike.  Delegates to
    :meth:`~repro.cost.context.CostContext.subset_assigned_lower_bounds`.
    """
    return context.subset_assigned_lower_bounds(subset_rows)


def subset_unassigned_lower_bounds(context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
    """Admissible per-subset bounds on the unassigned objective.

    ``Ecost(S) >= max_i E[min_{c in S} d(P_i, c)]`` — note ``E[min]``, not
    ``min E``: the assigned-style bound would overshoot here.  Delegates to
    :meth:`~repro.cost.context.CostContext.subset_unassigned_lower_bounds`.
    """
    return context.subset_unassigned_lower_bounds(subset_rows)


def subset_pair_lower_bounds(context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
    """Second-level subset bound: the two-point max of per-point minima.

    Admissible for both objectives because any solution over subset ``S``
    must cover *both* points of any pair: with ``m_i(x) = min_{c in S}
    d(x, c)`` the realized cost is at least ``max(m_i(X_i), m_j(X_j))``
    pointwise — for the unassigned objective directly, and for any
    restricted assignment because ``d(P_i, A(P_i)) >= m_i`` realization-wise
    — so by monotonicity of expectation ``cost(S) >= E[max(m_i(X_i),
    m_j(X_j))]`` for every pair ``(i, j)``.  The kernel evaluates the pair of
    points with the two largest ``E[m_i]`` values (any pair is admissible;
    that one is the strongest candidate) using the exact product-distribution
    expectation under point independence.  Strictly at least the single-point
    ``E[min]`` bound is *not* implied (``E[m_i] <=  min_c E[d(P_i, c)]``),
    which is why :func:`subset_two_level_lower_bounds` maxes the two levels.
    Delegates to
    :meth:`~repro.cost.context.CostContext.subset_pair_lower_bounds`.
    """
    return context.subset_pair_lower_bounds(subset_rows)


def subset_two_level_lower_bounds(
    context: CostContext, subset_rows: np.ndarray, *, objective: str = "assigned"
) -> np.ndarray:
    """Elementwise max of the Lemma 3.2 first-level and pair bounds.

    Each level is individually admissible (the first level is
    :func:`subset_assigned_lower_bounds` or
    :func:`subset_unassigned_lower_bounds` per ``objective``, the second is
    :func:`subset_pair_lower_bounds`), so their pointwise maximum is an
    admissible bound too — this is what the best-first scheduler orders
    chunks by and what the enumerators prune with.  Delegates to
    :meth:`~repro.cost.context.CostContext.subset_two_level_lower_bounds`.
    """
    return context.subset_two_level_lower_bounds(subset_rows, objective=objective)


def assignment_lower_bounds(context: CostContext, candidate_index_rows: np.ndarray) -> np.ndarray:
    """Per-assignment-row bounds for the exhaustive enumeration stage.

    Admissible by the row-wise Lemma 3.2 argument: an assignment's cost
    ``E[max_i d(P_i, c_i)]`` is at least ``max_i E[d(P_i, c_i)]`` (Jensen on
    the max), a gather-max over the cached expected matrix.  Delegates to
    :meth:`~repro.cost.context.CostContext.assignment_lower_bounds`.
    """
    return context.assignment_lower_bounds(candidate_index_rows)
