"""Lower bounds on the optimal expected cost.

Empirical approximation ratios need a denominator.  Using a *heuristic* "best
found" solution would under-state the ratio, so the experiment harness
divides by provable lower bounds instead; any measured ratio is then an
upper bound on the true ratio and can be compared honestly against the
theorems' guarantees.

The bounds all come from the paper's own lemmas:

* **per-point bound** (Lemma 3.2): for any centers and assignment,
  ``EcostA >= sum_j p_ij d(P_ij, A(P_i)) >= min_q E[d(P_i, q)]`` — the best
  expected distance any single point can achieve, maximised over points.
* **expected-point bound** (Lemma 3.4): ``cost_{P̄}(C) <= EcostA(C)`` for any
  centers/assignment, so the optimal deterministic k-center value of the
  expected points lower-bounds the optimal unrestricted assigned cost.
* **1-center bound** (Lemma 3.6): ``cost_{P̃}(C) <= 2 EcostA(C)``, so half the
  optimal deterministic k-center value of the per-point 1-centers is a lower
  bound in any metric space.

The deterministic optima themselves are lower-bounded by ``r_G / 2`` (the
Gonzalez guarantee) or computed exactly for small instances, keeping the
whole chain a valid bound.

Branch-and-bound subset bounds
------------------------------
The same Lemma 3.2 argument, applied *per candidate subset* instead of per
instance, is what drives the pruned brute-force enumerations
(:mod:`repro.baselines.brute_force`): for any assignment into subset ``S``,
``EcostA(S) >= max_i min_{c in S} E[d(P_i, c)]``, and for the unassigned
objective ``Ecost(S) >= max_i E[min_{c in S} d(P_i, c)]``.  The vectorized
chunk kernels live on :class:`~repro.cost.context.CostContext` (they read
its cached expected matrix / pinned supports); this module re-exports them
under their lemma-facing names together with :func:`prune_margin`, the
floating-point slack every incumbent comparison applies.  A subset (or
assignment row) is pruned only when its bound exceeds the incumbent by more
than the margin, so bound-kernel rounding can only ever *reduce* pruning,
never change a result.
"""

from __future__ import annotations

import numpy as np

from ..cost.context import CostContext

from ..deterministic.exact import (
    MAX_EXACT_PARTITION_POINTS,
    exact_euclidean_kcenter,
)
from ..deterministic.gonzalez import gonzalez_kcenter
from ..geometry.median import geometric_median, median_objective
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import one_center_reduction


def per_point_lower_bound(dataset: UncertainDataset) -> float:
    """``max_i min_q E[d(P_i, q)]`` — Lemma 3.2 applied point-wise.

    For Euclidean-style metrics the inner minimum is the weighted
    Fermat–Weber value (computed by Weiszfeld); for finite metrics it is the
    minimum over all elements.
    """
    metric = dataset.metric
    best = 0.0
    if metric.supports_expected_point:
        for point in dataset.points:
            median = geometric_median(point.locations, point.probabilities)
            value = float(median_objective(point.locations, median, point.probabilities))
            best = max(best, value)
        return best
    candidates = metric.candidate_centers(dataset.all_locations())
    for point in dataset.points:
        expected = point.expected_distances_to_many(candidates, metric)
        best = max(best, float(expected.min()))
    return best


def _deterministic_lower_bound(points: np.ndarray, k: int, dataset: UncertainDataset) -> float:
    """A lower bound on the deterministic k-center optimum of ``points``."""
    metric = dataset.metric
    if k >= points.shape[0]:
        return 0.0
    if metric.supports_expected_point and points.shape[0] <= MAX_EXACT_PARTITION_POINTS:
        return exact_euclidean_kcenter(points, k).radius
    # Gonzalez guarantee: its radius is at most twice the optimum.
    return gonzalez_kcenter(points, k, metric).radius / 2.0


def expected_point_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Lemma 3.4 bound: deterministic k-center optimum of the expected points."""
    if not dataset.metric.supports_expected_point:
        return 0.0
    return _deterministic_lower_bound(dataset.expected_points(), k, dataset)


def one_center_representative_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Lemma 3.6 bound: half the k-center optimum of the per-point 1-centers."""
    representatives = one_center_reduction(dataset)
    return _deterministic_lower_bound(representatives, k, dataset) / 2.0


def assigned_cost_lower_bound(dataset: UncertainDataset, k: int) -> float:
    """Best available lower bound on the optimal unrestricted assigned cost.

    The max of the Lemma 3.2 per-point bound, the Lemma 3.6 1-center bound
    and (for Euclidean-style metrics) the Lemma 3.4 expected-point bound —
    each individually a valid lower bound, so their maximum is too.
    """
    bounds = [per_point_lower_bound(dataset), one_center_representative_lower_bound(dataset, k)]
    if dataset.metric.supports_expected_point:
        bounds.append(expected_point_lower_bound(dataset, k))
    return max(bounds)


# ---------------------------------------------------------------------------
# Per-subset bounds for branch-and-bound pruning
# ---------------------------------------------------------------------------

#: Relative floating-point slack applied to every incumbent comparison.  The
#: bounds are admissible in real arithmetic, but they are computed by
#: different kernels (a gather/min/max over the expected matrix) than the
#: costs they bound (the sorted-sweep ``E[max]`` kernel), so the two may
#: round apart by a few ulps.  Comparing against ``incumbent * (1 + slack)``
#: keeps a pruned row's true cost strictly above the incumbent even under
#: worst-case rounding; the slack is ~1e6 ulps wide — astronomically larger
#: than kernel rounding — while pruning essentially nothing extra.
PRUNE_SLACK = 1e-9


def prune_margin(threshold: float) -> float:
    """The absolute slack added to ``threshold`` before pruning against it.

    The bounds are admissible in *real* arithmetic; this relative slack
    (:data:`PRUNE_SLACK`) absorbs cross-kernel floating-point rounding so a
    row is pruned only when its bound exceeds the incumbent by more than any
    rounding could explain — widening the margin can only reduce pruning,
    never change a result.
    """
    return PRUNE_SLACK * max(1.0, abs(threshold))


def subset_assigned_lower_bounds(context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
    """Lemma 3.2 subset-wise: admissible bounds for any restricted assignment.

    ``EcostA(S) >= max_i min_{c in S} E[d(P_i, c)]`` for every assignment
    rule, so one kernel serves ED, EP, OC, nearest-mode and black-box
    policies alike.  Delegates to
    :meth:`~repro.cost.context.CostContext.subset_assigned_lower_bounds`.
    """
    return context.subset_assigned_lower_bounds(subset_rows)


def subset_unassigned_lower_bounds(context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
    """Admissible per-subset bounds on the unassigned objective.

    ``Ecost(S) >= max_i E[min_{c in S} d(P_i, c)]`` — note ``E[min]``, not
    ``min E``: the assigned-style bound would overshoot here.  Delegates to
    :meth:`~repro.cost.context.CostContext.subset_unassigned_lower_bounds`.
    """
    return context.subset_unassigned_lower_bounds(subset_rows)


def assignment_lower_bounds(context: CostContext, candidate_index_rows: np.ndarray) -> np.ndarray:
    """Per-assignment-row bounds for the exhaustive enumeration stage.

    Admissible by the row-wise Lemma 3.2 argument: an assignment's cost
    ``E[max_i d(P_i, c_i)]`` is at least ``max_i E[d(P_i, c_i)]`` (Jensen on
    the max), a gather-max over the cached expected matrix.  Delegates to
    :meth:`~repro.cost.context.CostContext.assignment_lower_bounds`.
    """
    return context.assignment_lower_bounds(candidate_index_rows)
