"""Configuration for the solve/score server (:mod:`repro.serve`).

Every knob has a conservative default, an optional environment override
(declared in :mod:`repro._env` like every other variable the package
reads), and a CLI flag on ``python -m repro serve``.  Precedence is
CLI > environment > default, implemented by building the config through
:meth:`ServeConfig.from_env` and then :func:`dataclasses.replace`-ing the
explicit flags in — the server itself only ever sees a frozen config.

The admission bounds exist so that an oversized or over-concurrent request
is rejected *before* the server commits memory or pool time to it:

* ``max_inflight`` / ``queue_limit`` bound concurrency (429 + Retry-After
  past them);
* ``max_body_bytes`` bounds the raw request body (413 before the body is
  even read, judged on ``Content-Length``);
* ``max_cells`` bounds the parsed instance (total support locations x
  dimension — proportional to every pinned array a context build would
  allocate) and ``max_enumeration_rows`` bounds the subset enumeration a
  solve would schedule; both reject with 413 **before any context build**.
"""

from __future__ import annotations

from dataclasses import dataclass

from .._env import env_number

#: Fallback concurrency cap when neither flag nor env var names one.
DEFAULT_MAX_INFLIGHT = 4

#: Fallback request-body bound (8 MiB of JSON is a very large instance).
DEFAULT_MAX_BODY_BYTES = 8 * 1024 * 1024

#: Fallback drain budget after SIGTERM/SIGINT.
DEFAULT_DRAIN_SECONDS = 10.0


@dataclass(frozen=True)
class ServeConfig:
    """Frozen server configuration (see module docstring for precedence)."""

    host: str = "127.0.0.1"
    #: TCP port; ``0`` binds an ephemeral port (tests, benchmarks).
    port: int = 0

    # -- admission control ---------------------------------------------------
    #: Requests allowed to execute concurrently; excess waits in the bounded
    #: queue and is rejected with 429 past it.
    max_inflight: int = DEFAULT_MAX_INFLIGHT
    #: Requests allowed to *wait* for an execution slot (``None`` =
    #: ``2 * max_inflight``); beyond it admission rejects immediately.
    queue_limit: int | None = None
    #: Longest a queued request waits for a slot before giving up with 429.
    queue_wait_seconds: float = 2.0
    #: Raw body bound, enforced on ``Content-Length`` before reading.
    max_body_bytes: int = DEFAULT_MAX_BODY_BYTES
    #: Parsed-instance bound: total support locations x dimension.
    max_cells: int = 250_000
    #: Candidate-center bound for solve requests.
    max_candidates: int = 64
    #: Subset-enumeration bound (``C(m, k)`` rows) for solve requests.
    max_enumeration_rows: int = 2_000_000

    # -- execution -----------------------------------------------------------
    #: Worker processes a solve may use (1 = serial; the pool is shared, so
    #: concurrent solves that miss the pool gate run serially instead).
    workers: int = 1
    #: Cost contexts kept hot in the shared store.
    store_size: int = 16

    # -- lifecycle -----------------------------------------------------------
    #: Budget for draining in-flight requests on SIGTERM/SIGINT.
    drain_seconds: float = DEFAULT_DRAIN_SECONDS

    # -- circuit breaker -----------------------------------------------------
    #: Sliding window the breaker counts degradation events over.
    breaker_window_seconds: float = 30.0
    #: Degradation events within the window that trip the breaker.
    breaker_threshold: int = 3
    #: How long the breaker stays open before a half-open probe.
    breaker_cooldown_seconds: float = 5.0

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ValueError("max_inflight must be at least 1")
        if self.queue_limit is not None and self.queue_limit < 0:
            raise ValueError("queue_limit must be non-negative")
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        if self.drain_seconds < 0:
            raise ValueError("drain_seconds must be non-negative")
        if self.breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")

    @property
    def effective_queue_limit(self) -> int:
        return 2 * self.max_inflight if self.queue_limit is None else self.queue_limit

    @classmethod
    def from_env(cls, **overrides: object) -> "ServeConfig":
        """A config with environment defaults applied, then ``overrides``.

        Only overrides actually provided (not ``None``) win, so CLI code can
        pass its argparse namespace straight through without re-implementing
        the precedence rule.
        """
        values: dict[str, object] = {}
        max_inflight = env_number("REPRO_SERVE_MAX_INFLIGHT", int)
        if max_inflight is not None:
            values["max_inflight"] = max_inflight
        max_bytes = env_number("REPRO_SERVE_MAX_BYTES", int)
        if max_bytes is not None:
            values["max_body_bytes"] = max_bytes
        drain = env_number("REPRO_SERVE_DRAIN_SECONDS", float)
        if drain is not None:
            values["drain_seconds"] = drain
        values.update({key: value for key, value in overrides.items() if value is not None})
        return cls(**values)  # type: ignore[arg-type]


__all__ = [
    "DEFAULT_DRAIN_SECONDS",
    "DEFAULT_MAX_BODY_BYTES",
    "DEFAULT_MAX_INFLIGHT",
    "ServeConfig",
]
