"""Shared mutable state behind the server: admission, breaker, contexts.

Everything here is the *robustness architecture* of ``repro serve``,
factored out of the HTTP handler so each mechanism is testable without a
socket:

* :class:`AdmissionGate` — the bounded request queue.  ``max_inflight``
  requests execute concurrently; up to ``queue_limit`` more wait (at most
  ``queue_wait_seconds``); everything past that is rejected immediately.
  Backpressure is therefore *explicit*: an overloaded server answers 429
  with a Retry-After derived from the observed p50 service time instead of
  letting latency grow without bound.
* :class:`LatencyWindow` — a bounded reservoir of recent per-endpoint
  service times; p50/p95 for ``/stats`` and the Retry-After estimate.
* :class:`CircuitBreaker` — a sliding-window breaker over runtime
  degradation events (pool rebuilds, serial fallbacks — the
  :mod:`repro.runtime.health` counters PR 8 added).  Tripping flips
  ``/readyz`` to 503 and forces solves into serial-only degraded mode;
  after a cooldown one half-open probe gets the pool back, and a clean
  probe closes the breaker.  Results are bit-identical either way (the
  runtime's determinism contract) — the breaker trades wall clock for not
  hammering a crashing pool.
* :class:`SingleFlightContexts` — one
  :class:`~repro.runtime.store.ContextStore` shared by every request, with
  per-fingerprint single-flight builds: N concurrent requests over the
  same dataset cost **one** context build; the N-1 followers wait for the
  builder instead of duplicating the work (the store alone cannot promise
  that — two threads can both miss before either finishes building).

Thread-safety: the HTTP server handles each request on its own thread, so
every structure here guards its state with a lock; the runtime health
counters are process-global, which is why degradation observation runs
through one :meth:`ServerState.observe_runtime` choke point holding the
state lock (per-request attribution is impossible with concurrent maps,
and the breaker only needs "degradation happened in the window").
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING

from ..runtime import health
from ..runtime.store import ContextStore, candidate_fingerprint, dataset_fingerprint

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from ..cost.context import CostContext
    from ..uncertain.dataset import UncertainDataset
    from .config import ServeConfig

#: Service times kept per endpoint for the percentile estimates.
LATENCY_WINDOW = 512

#: Retry-After fallback (seconds) before any service time is observed.
DEFAULT_RETRY_AFTER = 1.0


class LatencyWindow:
    """Bounded reservoir of recent service times for one endpoint."""

    def __init__(self, maxlen: int = LATENCY_WINDOW) -> None:
        self._samples: deque[float] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        self.count = 0
        self.errors = 0
        self.rejected = 0

    def record(self, seconds: float, *, error: bool = False) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self.count += 1
            if error:
                self.errors += 1

    def record_rejection(self) -> None:
        with self._lock:
            self.rejected += 1

    def percentile(self, fraction: float) -> float | None:
        """The ``fraction`` percentile of the window (``None`` when empty)."""
        with self._lock:
            samples = sorted(self._samples)  # monitoring window, never on a solve path
        if not samples:
            return None
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]

    def as_dict(self) -> dict[str, object]:
        p50 = self.percentile(0.50)
        p95 = self.percentile(0.95)
        return {
            "count": self.count,
            "errors": self.errors,
            "rejected": self.rejected,
            "p50_ms": None if p50 is None else round(p50 * 1000.0, 3),
            "p95_ms": None if p95 is None else round(p95 * 1000.0, 3),
        }


class AdmissionGate:
    """Bounded concurrency + bounded wait queue (the 429 source)."""

    def __init__(self, max_inflight: int, queue_limit: int, queue_wait_seconds: float) -> None:
        self.max_inflight = max(1, int(max_inflight))
        self.queue_limit = max(0, int(queue_limit))
        self.queue_wait_seconds = max(0.0, float(queue_wait_seconds))
        self._lock = threading.Lock()
        self._slot_freed = threading.Condition(self._lock)
        self.inflight = 0
        self.waiting = 0

    def try_enter(self) -> bool:
        """Take an execution slot, waiting briefly in the bounded queue.

        Returns ``False`` (reject with 429) when the queue is full or the
        wait budget expires without a slot.
        """
        deadline = time.monotonic() + self.queue_wait_seconds
        with self._lock:
            if self.inflight < self.max_inflight:
                self.inflight += 1
                return True
            if self.waiting >= self.queue_limit:
                return False
            self.waiting += 1
            try:
                while self.inflight >= self.max_inflight:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._slot_freed.wait(timeout=remaining):  # repro: noqa[LOCK-DISCIPLINE] -- Condition.wait releases the lock while blocking; this IS the queue
                        if self.inflight >= self.max_inflight:
                            return False
                self.inflight += 1
                return True
            finally:
                self.waiting -= 1

    def exit(self) -> None:
        with self._lock:
            self.inflight = max(0, self.inflight - 1)
            self._slot_freed.notify()

    def wait_idle(self, timeout: float) -> bool:
        """Block until nothing is in flight (the drain path); True on idle."""
        deadline = time.monotonic() + max(0.0, timeout)
        with self._lock:
            while self.inflight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0 or not self._slot_freed.wait(timeout=remaining):  # repro: noqa[LOCK-DISCIPLINE] -- Condition.wait releases the lock while draining waits
                    if self.inflight > 0 and deadline - time.monotonic() <= 0:
                        return False
            return True

    def as_dict(self) -> dict[str, int]:
        with self._lock:
            return {
                "inflight": self.inflight,
                "waiting": self.waiting,
                "max_inflight": self.max_inflight,
                "queue_limit": self.queue_limit,
            }


class CircuitBreaker:
    """Sliding-window breaker over runtime degradation events.

    States: ``closed`` (healthy, parallel allowed) → ``open`` (tripped:
    ``/readyz`` 503, serial-only) after ``threshold`` events inside
    ``window_seconds`` → ``half-open`` after ``cooldown_seconds`` (one
    probe runs parallel again) → ``closed`` on a clean probe, back to
    ``open`` on a degraded one.
    """

    def __init__(self, window_seconds: float, threshold: int, cooldown_seconds: float) -> None:
        self.window_seconds = float(window_seconds)
        self.threshold = max(1, int(threshold))
        self.cooldown_seconds = float(cooldown_seconds)
        self._lock = threading.Lock()
        self._events: deque[float] = deque()
        self._opened_at: float | None = None
        self._probing = False
        self.trips = 0

    def _prune(self, now: float) -> None:
        while self._events and now - self._events[0] > self.window_seconds:
            self._events.popleft()

    def record_degradation(self, events: int, now: float | None = None) -> None:
        """Count ``events`` degradation events at ``now``; may trip the breaker."""
        if events <= 0:
            return
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._probing:
                # The half-open probe degraded: straight back to open.
                self._probing = False
                self._opened_at = now
                self.trips += 1
                return
            self._prune(now)
            self._events.extend([now] * int(events))
            if self._opened_at is None and len(self._events) >= self.threshold:
                self._opened_at = now
                self.trips += 1

    def allow_parallel(self, now: float | None = None) -> bool:
        """Whether a solve may use the worker pool right now.

        Closed: yes.  Open: no — until the cooldown elapses, when exactly
        one caller becomes the half-open probe (and must report back via
        :meth:`record_degradation` / :meth:`record_probe_success`).
        """
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._opened_at is None:
                return True
            if self._probing:
                return False  # someone else is already probing
            if now - self._opened_at >= self.cooldown_seconds:
                self._probing = True
                return True
            return False

    def record_probe_success(self, now: float | None = None) -> None:
        """A clean parallel run: closes the breaker if it was half-open."""
        with self._lock:
            if self._probing:
                self._probing = False
                self._opened_at = None
                self._events.clear()

    def state(self, now: float | None = None) -> str:
        now = time.monotonic() if now is None else now
        with self._lock:
            if self._opened_at is None:
                return "closed"
            if self._probing or now - self._opened_at >= self.cooldown_seconds:
                return "half-open"
            return "open"

    def as_dict(self) -> dict[str, object]:
        now = time.monotonic()
        with self._lock:
            self._prune(now)
            window_events = len(self._events)
        return {
            "state": self.state(now),
            "window_events": window_events,
            "threshold": self.threshold,
            "window_seconds": self.window_seconds,
            "cooldown_seconds": self.cooldown_seconds,
            "trips": self.trips,
        }


class SingleFlightContexts:
    """Per-fingerprint single-flight builds over one shared context store.

    ``get`` collapses N concurrent builds of the same (dataset, candidates)
    pair into one: the first caller builds through the store (write-through
    to the spill tier and the in-memory LRU as usual), the rest wait on the
    builder's event and then hit the store.  ``builds`` counts actual
    context constructions — the single-flight bench asserts it stays at 1
    for N concurrent same-fingerprint requests.
    """

    def __init__(self, store: ContextStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self._inflight: dict[tuple[str, str], threading.Event] = {}
        self.builds = 0
        self.waits = 0

    def get(self, dataset: "UncertainDataset", candidates: "np.ndarray") -> "CostContext":
        key = (dataset_fingerprint(dataset), candidate_fingerprint(candidates))
        while True:
            with self._lock:
                waiter = self._inflight.get(key)
                if waiter is None:
                    event = threading.Event()
                    self._inflight[key] = event
                    break
            self.waits += 1
            waiter.wait()
        try:
            misses_before = self.store.misses
            context = self.store.get(dataset, candidates)
            with self._lock:
                if self.store.misses > misses_before:
                    self.builds += 1
            return context
        finally:
            with self._lock:
                self._inflight.pop(key, None)
            event.set()

    def as_dict(self) -> dict[str, int]:
        return {
            "builds": self.builds,
            "single_flight_waits": self.waits,
            "hits": self.store.hits,
            "misses": self.store.misses,
            "disk_hits": self.store.disk_hits,
        }


class ServerState:
    """Everything the handler threads share, composed per server instance."""

    def __init__(self, config: "ServeConfig") -> None:
        self.config = config
        self.started_monotonic = time.monotonic()
        self.gate = AdmissionGate(
            config.max_inflight, config.effective_queue_limit, config.queue_wait_seconds
        )
        self.breaker = CircuitBreaker(
            config.breaker_window_seconds,
            config.breaker_threshold,
            config.breaker_cooldown_seconds,
        )
        self.contexts = SingleFlightContexts(ContextStore(maxsize=config.store_size))
        self.latency: dict[str, LatencyWindow] = {}
        #: At most one request at a time drives the shared worker pool; the
        #: others run serially instead of waiting (identical results, and no
        #: concurrent rebuild races inside PersistentPool).
        self.pool_gate = threading.Lock()
        self.draining = False
        self._lock = threading.Lock()
        self._sequence = 0
        #: Baselines for the lifetime window (/healthz, /stats) and for the
        #: breaker's incremental observation — generation-tagged snapshots,
        #: so a test calling ``health.reset()`` mid-flight re-baselines
        #: instead of producing negative windows.
        self.health_baseline = health.snapshot()
        self._last_observed = health.snapshot()
        self.faults_rejected = 0

    def next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence

    def endpoint_latency(self, endpoint: str) -> LatencyWindow:
        with self._lock:
            window = self.latency.get(endpoint)
            if window is None:
                window = self.latency[endpoint] = LatencyWindow()
            return window

    def observe_runtime(self) -> int:
        """Fold runtime health movement since the last observation into the breaker.

        Pool rebuilds and serial fallbacks are the "the pool is crashing
        under me" signals; transport fallbacks and deadline hits are
        expected degradations that must *not* trip the breaker.  Returns the
        number of degradation events observed (0 = this window was clean).
        """
        with self._lock:
            moved = health.delta(self._last_observed)
            self._last_observed = health.snapshot()
        degradations = moved.pool_rebuilds + moved.serial_fallbacks
        self.breaker.record_degradation(degradations)
        return degradations

    def retry_after_seconds(self) -> float:
        """Backpressure hint: observed p50 solve service time x queue depth."""
        p50 = self.endpoint_latency("/v1/solve").percentile(0.50)
        if p50 is None:
            return DEFAULT_RETRY_AFTER
        depth = max(1, self.gate.as_dict()["waiting"] + 1)
        return max(DEFAULT_RETRY_AFTER, p50 * depth)

    def uptime_seconds(self) -> float:
        return time.monotonic() - self.started_monotonic


__all__ = [
    "AdmissionGate",
    "CircuitBreaker",
    "DEFAULT_RETRY_AFTER",
    "LATENCY_WINDOW",
    "LatencyWindow",
    "ServerState",
    "SingleFlightContexts",
]
