"""Retrying JSON client for ``repro serve`` (stdlib :mod:`urllib` only).

The server's admission control is designed around clients that back off:
a 429 or 503 means the request was rejected *before execution* (the
admission path answers before the body is even parsed), so retrying it is
always safe — the retry budget and backoff here exist to spread those
retries out rather than hammering a loaded server.  The two retryable
situations are deliberately distinct:

* **Rejections (429/503)** — side-effect-free by the server's contract;
  retried for every method, sleeping the server's ``Retry-After`` hint
  when present, otherwise exponential backoff with jitter.
* **Transport errors** (connection refused/reset, timeouts) — the request
  *may* have executed, so only idempotent requests are retried.  Every
  ``GET`` is idempotent; the solve/score/assign ``POST`` bodies are pure
  functions of their payload (the runtime's determinism contract), so they
  are idempotent too and marked as such — but a custom caller posting to a
  hypothetical mutating endpoint must pass ``idempotent=False``.

Jitter is drawn from a client-owned ``random.Random`` seeded at
construction, keeping retry schedules reproducible in tests without
touching global random state.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from ..uncertain.dataset import UncertainDataset

#: Statuses that mean "rejected before execution; retry is always safe".
RETRYABLE_STATUSES = frozenset({429, 503})

#: Default retry budget (initial attempt + this many retries).
DEFAULT_MAX_RETRIES = 4


class ServeError(RuntimeError):
    """A server response that survived the retry budget, or a hard failure."""

    def __init__(self, message: str, *, status: int | None = None, payload: Any = None) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class ServeClient:
    """Client for one server, carrying the retry/backoff policy."""

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 60.0,
        max_retries: int = DEFAULT_MAX_RETRIES,
        backoff_seconds: float = 0.1,
        backoff_cap_seconds: float = 5.0,
        jitter: float = 0.25,
        seed: int = 0,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_retries = max(0, int(max_retries))
        self.backoff_seconds = float(backoff_seconds)
        self.backoff_cap_seconds = float(backoff_cap_seconds)
        self.jitter = max(0.0, float(jitter))
        self._rng = random.Random(seed)
        #: Attempts beyond the first, across the client's lifetime (tests
        #: assert the serve_reject chaos run actually exercised retries).
        self.retries_used = 0

    # -- endpoints ----------------------------------------------------------

    def healthz(self) -> dict:
        return self.request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness payload; a 503 (draining/breaker-open) is *returned*,
        not raised and not retried — callers poll readiness, they don't
        back off on it."""
        try:
            return self.request("GET", "/readyz", retry_rejections=False)
        except ServeError as error:
            if error.status == 503 and isinstance(error.payload, dict):
                return error.payload
            raise

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def solve(
        self,
        dataset: UncertainDataset | Mapping[str, Any],
        k: int,
        *,
        objective: str = "unassigned",
        assignment: str | None = None,
        candidates: Any = None,
        deadline_ms: float | None = None,
        gap_target: float | None = None,
    ) -> dict:
        payload: dict[str, Any] = {"dataset": _dataset_payload(dataset), "k": k, "objective": objective}
        if assignment is not None:
            payload["assignment"] = assignment
        if candidates is not None:
            payload["candidates"] = _listify(candidates)
        if deadline_ms is not None:
            payload["deadline_ms"] = deadline_ms
        if gap_target is not None:
            payload["gap_target"] = gap_target
        return self.request("POST", "/v1/solve", payload)

    def score(
        self,
        dataset: UncertainDataset | Mapping[str, Any],
        centers: Any,
        *,
        objective: str = "unassigned",
        assignment: Any = None,
    ) -> dict:
        payload: dict[str, Any] = {
            "dataset": _dataset_payload(dataset),
            "centers": _listify(centers),
            "objective": objective,
        }
        if assignment is not None:
            payload["assignment"] = _listify(assignment)
        return self.request("POST", "/v1/score", payload)

    def assign(self, dataset: UncertainDataset | Mapping[str, Any], centers: Any) -> dict:
        payload = {"dataset": _dataset_payload(dataset), "centers": _listify(centers)}
        return self.request("POST", "/v1/assign", payload)

    # -- transport ----------------------------------------------------------

    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        *,
        idempotent: bool | None = None,
        retry_rejections: bool = True,
    ) -> dict:
        """One logical request, retried per the policy in the module docstring.

        ``idempotent`` defaults to ``True`` (every shipped endpoint is a pure
        function of its payload); pass ``False`` to disable transport-error
        retries for a request that may have side effects.
        """
        if idempotent is None:
            idempotent = True
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        last_error: ServeError | None = None
        for attempt in range(self.max_retries + 1):
            if attempt:
                self.retries_used += 1
            try:
                return self._once(method, path, body)
            except ServeError as error:
                last_error = error
                retryable = (
                    retry_rejections and error.status in RETRYABLE_STATUSES
                    if error.status is not None
                    else idempotent
                )
                if not retryable or attempt >= self.max_retries:
                    raise
                time.sleep(self._delay(attempt, error.retry_after))
        raise last_error if last_error is not None else ServeError("retry budget exhausted")

    def _once(self, method: str, path: str, body: bytes | None) -> dict:
        request = urllib.request.Request(
            f"{self.base_url}{path}",
            data=body,
            method=method,
            headers={"Content-Type": "application/json"} if body is not None else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return _decode(response.read())
        except urllib.error.HTTPError as error:
            payload = _decode(error.read())
            message = payload.get("error") if isinstance(payload, dict) else None
            failure = ServeError(
                f"{method} {path} -> {error.code}: {message or error.reason}",
                status=error.code,
                payload=payload,
            )
            failure.retry_after = _parse_retry_after(error.headers.get("Retry-After"))
            raise failure from None
        except (urllib.error.URLError, ConnectionError, TimeoutError) as error:
            failure = ServeError(f"{method} {path} failed: {error}")
            failure.retry_after = None
            raise failure from None

    def _delay(self, attempt: int, retry_after: float | None) -> float:
        """Server hint when offered, else capped exponential backoff; both
        spread by multiplicative jitter so synchronized clients desync."""
        if retry_after is not None:
            base = retry_after
        else:
            base = min(self.backoff_cap_seconds, self.backoff_seconds * (2**attempt))
        return base * (1.0 + self.jitter * self._rng.random())


def _dataset_payload(dataset: UncertainDataset | Mapping[str, Any]) -> Mapping[str, Any]:
    if isinstance(dataset, UncertainDataset):
        return dataset.to_dict()
    return dataset


def _listify(value: Any) -> Any:
    return value.tolist() if hasattr(value, "tolist") else value


def _decode(raw: bytes) -> dict:
    try:
        decoded = json.loads(raw)
    except (json.JSONDecodeError, UnicodeDecodeError):
        return {"error": raw.decode("utf-8", errors="replace")}
    return decoded if isinstance(decoded, dict) else {"value": decoded}


def _parse_retry_after(raw: str | None) -> float | None:
    if raw is None:
        return None
    try:
        value = float(raw)
    except ValueError:
        return None
    return value if value >= 0 else None


__all__ = [
    "DEFAULT_MAX_RETRIES",
    "RETRYABLE_STATUSES",
    "ServeClient",
    "ServeError",
]
