"""The crash-tolerant solve/score HTTP server (``python -m repro serve``).

Stdlib only (:mod:`http.server` + :mod:`socketserver`): one thread per
connection, JSON in / JSON out.  Endpoints:

========================  ====================================================
``POST /v1/solve``        Exact brute-force solve over a candidate set, with
                          an optional ``deadline_ms`` mapped onto the anytime
                          ``time_budget`` (a timed-out solve still answers 200
                          with a sound ``(cost, lower_bound, gap)``
                          certificate and ``deadline_hit: true``) and an
                          optional ``gap_target`` — the precision analogue:
                          the best-first enumeration stops once the certified
                          relative gap reaches the target, answering 200 with
                          the same certificate and ``gap_target_hit: true``.
``POST /v1/score``        Exact expected cost of given centers (assigned or
                          unassigned objective).
``POST /v1/assign``       Expected-distance assignment of every uncertain
                          point to the nearest given center.
``GET /healthz``          Liveness + runtime health counters + the audit
                          identity ``submitted == completed + retries`` over
                          the server's lifetime window.
``GET /readyz``           Readiness: 503 while draining or while the circuit
                          breaker is open (serial-only degraded mode).
``GET /stats``            Admission gate, per-endpoint p50/p95, breaker,
                          context-store and fault counters.
========================  ====================================================

**Handler rules** (see CONTRIBUTING): handlers *report, never raise*.  Every
failure an endpoint can hit — malformed JSON, oversized instance, a worker
pool crashing mid-map — becomes a JSON response with the right status code;
an exception escaping a handler thread would kill the connection without a
response and show up as exactly the kind of unexplained 5xx the chaos suite
forbids.  Rejections that happen *before* the request body is read (413 on
``Content-Length``, 429 from admission, 503 from drain/fault) answer with
``Connection: close``, because leaving an unread body on a keep-alive socket
desynchronizes the next request.
"""

from __future__ import annotations

import json
import math
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

import numpy as np

from .. import faults
from ..assignments import ASSIGNMENT_POLICIES
from ..assignments.policies import ExpectedDistanceAssignment
from ..baselines.brute_force import (
    brute_force_restricted_assigned,
    brute_force_unassigned,
    default_candidates,
)
from ..cost.expected import expected_cost_assigned, expected_cost_unassigned
from ..exceptions import ValidationError
from ..experiments.records import runtime_health_summary
from ..runtime import health, shutdown_runtime
from ..uncertain.dataset import UncertainDataset
from .config import ServeConfig
from .state import ServerState


class _Reject(Exception):
    """A request refused by admission/validation: status + JSON error body."""

    def __init__(self, status: int, error: str, *, retry_after: float | None = None) -> None:
        super().__init__(error)
        self.status = status
        self.error = error
        self.retry_after = retry_after


def _require(payload: Mapping[str, Any], key: str) -> Any:
    if key not in payload:
        raise _Reject(400, f"request body is missing required field {key!r}")
    return payload[key]


def _parse_dataset(state: ServerState, payload: Mapping[str, Any]) -> UncertainDataset:
    """Parse and bound-check the instance **before any context build**."""
    raw = _require(payload, "dataset")
    if not isinstance(raw, Mapping):
        raise _Reject(400, "dataset must be a JSON object (UncertainDataset.to_dict form)")
    dataset = UncertainDataset.from_dict(raw)
    cells = sum(point.support_size for point in dataset.points) * dataset.dimension
    if cells > state.config.max_cells:
        raise _Reject(
            413,
            f"instance too large: {cells} support cells exceeds the server bound"
            f" {state.config.max_cells}",
        )
    return dataset


def _parse_points(raw: Any, *, field: str, dimension: int) -> np.ndarray:
    array = np.asarray(raw, dtype=float)
    if array.ndim != 2 or array.shape[0] == 0 or array.shape[1] != dimension:
        raise _Reject(
            400,
            f"{field} must be a non-empty list of {dimension}-dimensional points",
        )
    if not np.isfinite(array).all():
        raise _Reject(400, f"{field} contains non-finite coordinates")
    return array


def _parse_deadline(payload: Mapping[str, Any]) -> float | None:
    """``deadline_ms`` → ``time_budget`` seconds (0 for already-expired)."""
    raw = payload.get("deadline_ms")
    if raw is None:
        return None
    try:
        deadline_ms = float(raw)
    except (TypeError, ValueError):
        raise _Reject(400, "deadline_ms must be a number of milliseconds") from None
    if not np.isfinite(deadline_ms):
        raise _Reject(400, "deadline_ms must be finite")
    # Zero and negative both mean "budget already spent": the solve returns
    # the greedy seed with a certificate instead of hanging or erroring.
    return max(0.0, deadline_ms) / 1000.0


def _parse_gap_target(payload: Mapping[str, Any]) -> float | None:
    """``gap_target`` → certified relative gap at which the solve may stop.

    ``0`` is legal and means "never stop early" (the certified gap stays
    strictly positive while anything is outstanding), so it is the
    bit-identity spelling rather than an error.
    """
    raw = payload.get("gap_target")
    if raw is None:
        return None
    if isinstance(raw, bool):
        raise _Reject(400, "gap_target must be a number (a relative gap, e.g. 0.01)")
    try:
        gap_target = float(raw)
    except (TypeError, ValueError):
        raise _Reject(400, "gap_target must be a number (a relative gap, e.g. 0.01)") from None
    if not np.isfinite(gap_target) or gap_target < 0.0:
        raise _Reject(400, "gap_target must be a finite non-negative relative gap")
    return gap_target


def _subset_count(candidate_count: int, k: int) -> int:
    return math.comb(candidate_count, k) if candidate_count >= k else 0


def _handle_solve(state: ServerState, payload: Mapping[str, Any], request_id: int) -> dict:
    dataset = _parse_dataset(state, payload)
    k = _require(payload, "k")
    if not isinstance(k, int) or isinstance(k, bool) or k < 1:
        raise _Reject(400, "k must be a positive integer")
    objective = payload.get("objective", "unassigned")
    if objective not in ("unassigned", "restricted"):
        raise _Reject(400, f"unknown objective {objective!r}: use 'unassigned' or 'restricted'")
    if payload.get("candidates") is not None:
        candidates = _parse_points(
            payload["candidates"], field="candidates", dimension=dataset.dimension
        )
    else:
        candidates = default_candidates(dataset)
    config = state.config
    if candidates.shape[0] > config.max_candidates:
        raise _Reject(
            413,
            f"candidate set too large: {candidates.shape[0]} exceeds the server bound"
            f" {config.max_candidates}",
        )
    if k > candidates.shape[0]:
        raise _Reject(400, f"k={k} exceeds the candidate count {candidates.shape[0]}")
    rows = _subset_count(candidates.shape[0], k)
    if rows > config.max_enumeration_rows:
        raise _Reject(
            413,
            f"solve would enumerate {rows} subsets, over the server bound"
            f" {config.max_enumeration_rows}",
        )
    policy = None
    if objective == "restricted":
        name = payload.get("assignment", "expected-distance")
        if name not in ASSIGNMENT_POLICIES:
            raise _Reject(
                400,
                f"unknown assignment {name!r}: choose one of {sorted(ASSIGNMENT_POLICIES)}",
            )
        policy = ASSIGNMENT_POLICIES[name]()
    time_budget = _parse_deadline(payload)
    gap_target = _parse_gap_target(payload)

    # Single-flight context warm-up: N concurrent requests over the same
    # (dataset, candidates) fingerprints cost one build; the solve below then
    # hits the store.
    state.contexts.get(dataset, candidates)

    # Pool discipline: the worker pool is process-global and not safe for
    # concurrent maps, so at most one request drives it (non-blocking gate);
    # the breaker decides whether parallel execution is allowed at all.
    # Either way the result is bit-identical — serial is a latency fallback,
    # not an approximation.
    workers = 1
    gated = False
    if config.workers > 1 and state.pool_gate.acquire(blocking=False):
        gated = True
        if state.breaker.allow_parallel():
            workers = config.workers
        else:
            state.pool_gate.release()
            gated = False
    try:
        if objective == "restricted":
            result = brute_force_restricted_assigned(
                dataset,
                k,
                assignment=policy,
                candidates=candidates,
                workers=workers,
                store=state.contexts.store,
                time_budget=time_budget,
                gap_target=gap_target,
            )
        else:
            result = brute_force_unassigned(
                dataset,
                k,
                candidates=candidates,
                workers=workers,
                store=state.contexts.store,
                time_budget=time_budget,
                gap_target=gap_target,
            )
    finally:
        if gated:
            state.pool_gate.release()
    degradations = state.observe_runtime()
    if workers > 1 and degradations == 0:
        state.breaker.record_probe_success()
    return {
        "request_id": request_id,
        "objective": result.objective,
        "expected_cost": result.expected_cost,
        "centers": result.centers.tolist(),
        "assignment": None if result.assignment is None else result.assignment.tolist(),
        "assignment_policy": result.assignment_policy,
        "deadline_hit": bool(result.metadata.get("deadline_hit", False)),
        "gap_target_hit": bool(result.metadata.get("gap_target_hit", False)),
        "certificate": result.metadata.get("certificate"),
        "degraded": bool(config.workers > 1 and workers == 1),
        "workers": workers,
        "metadata": result.metadata,
    }


def _handle_score(state: ServerState, payload: Mapping[str, Any], request_id: int) -> dict:
    dataset = _parse_dataset(state, payload)
    centers = _parse_points(
        _require(payload, "centers"), field="centers", dimension=dataset.dimension
    )
    objective = payload.get("objective", "unassigned")
    if objective == "unassigned":
        cost = expected_cost_unassigned(dataset, centers)
        assignment = None
    elif objective == "assigned":
        raw_assignment = payload.get("assignment")
        if raw_assignment is None:
            assignment = ExpectedDistanceAssignment().assign(dataset, centers)
        else:
            assignment = np.asarray(raw_assignment, dtype=int)
            if assignment.shape != (dataset.size,):
                raise _Reject(
                    400, f"assignment must list one center index per point ({dataset.size})"
                )
            if assignment.min() < 0 or assignment.max() >= centers.shape[0]:
                raise _Reject(400, "assignment indexes a center that does not exist")
        cost = expected_cost_assigned(dataset, centers, assignment)
    else:
        raise _Reject(400, f"unknown objective {objective!r}: use 'unassigned' or 'assigned'")
    return {
        "request_id": request_id,
        "objective": objective,
        "expected_cost": float(cost),
        "assignment": None if assignment is None else assignment.tolist(),
    }


def _handle_assign(state: ServerState, payload: Mapping[str, Any], request_id: int) -> dict:
    dataset = _parse_dataset(state, payload)
    centers = _parse_points(
        _require(payload, "centers"), field="centers", dimension=dataset.dimension
    )
    assignment = ExpectedDistanceAssignment().assign(dataset, centers)
    cost = expected_cost_assigned(dataset, centers, assignment)
    return {
        "request_id": request_id,
        "assignment": assignment.tolist(),
        "assignment_policy": ExpectedDistanceAssignment.name,
        "expected_cost": float(cost),
    }


#: POST routes; each handler takes ``(state, payload, request_id)``.
POST_ROUTES: dict[str, Callable[[ServerState, Mapping[str, Any], int], dict]] = {
    "/v1/solve": _handle_solve,
    "/v1/score": _handle_score,
    "/v1/assign": _handle_assign,
}


def _healthz(state: ServerState) -> tuple[int, dict]:
    window = health.delta(state.health_baseline)
    return 200, {
        "status": "ok",
        "uptime_seconds": round(state.uptime_seconds(), 3),
        "draining": state.draining,
        "breaker": state.breaker.as_dict(),
        "runtime_health": runtime_health_summary(state.health_baseline, always=True),
        "audit_ok": window.audit_ok(),
    }


def _readyz(state: ServerState) -> tuple[int, dict]:
    breaker_state = state.breaker.state()
    if state.draining:
        return 503, {"ready": False, "reason": "draining"}
    if breaker_state == "open":
        return 503, {
            "ready": False,
            "reason": "circuit breaker open: worker pool degraded, serial-only mode",
            "breaker": state.breaker.as_dict(),
        }
    return 200, {"ready": True, "breaker": breaker_state}


def _stats(state: ServerState) -> tuple[int, dict]:
    return 200, {
        "uptime_seconds": round(state.uptime_seconds(), 3),
        "draining": state.draining,
        "admission": state.gate.as_dict(),
        "breaker": state.breaker.as_dict(),
        "contexts": state.contexts.as_dict(),
        "endpoints": {
            endpoint: window.as_dict()
            for endpoint, window in sorted(state.latency.items())
        },
        "runtime_health": runtime_health_summary(state.health_baseline, always=True),
        # Goal-fulfilment counter, surfaced on its own: a gap-target early
        # stop is the requested precision being *reached*, not degradation
        # (the breaker's observe_runtime never folds it in).
        "gap_target_stops": health.delta(state.health_baseline).gap_target_hits,
        "faults_rejected": state.faults_rejected,
        "retry_after_seconds": round(state.retry_after_seconds(), 3),
        "config": {
            "max_inflight": state.config.max_inflight,
            "queue_limit": state.config.effective_queue_limit,
            "max_body_bytes": state.config.max_body_bytes,
            "workers": state.config.workers,
        },
    }


GET_ROUTES: dict[str, Callable[[ServerState], tuple[int, dict]]] = {
    "/healthz": _healthz,
    "/readyz": _readyz,
    "/stats": _stats,
}


class _Handler(BaseHTTPRequestHandler):
    """Request handler: admission first, then parse, then execute."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    server: "_Server"

    # -- plumbing -----------------------------------------------------------

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002 - stdlib signature
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _send_json(
        self,
        status: int,
        payload: Mapping[str, Any],
        *,
        retry_after: float | None = None,
        close: bool = False,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", f"{max(retry_after, 0.0):.3f}")
        if close:
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        try:
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):  # client went away: report, never raise
            self.close_connection = True

    # -- GET ----------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        route = GET_ROUTES.get(self.path)
        if route is None:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            status, payload = route(self.server.state)
        except Exception as error:  # report, never raise
            status, payload = 500, {"error": f"{type(error).__name__}: {error}"}
        self._send_json(status, payload)

    # -- POST ---------------------------------------------------------------

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        state = self.server.state
        route = POST_ROUTES.get(self.path)
        if route is None:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        window = state.endpoint_latency(self.path)
        request_id = state.next_sequence()

        # -- admission: everything below answers before the body is read, so
        # every rejection closes the connection.
        if state.draining:
            window.record_rejection()
            self._send_json(
                503, {"error": "server is draining", "request_id": request_id}, close=True
            )
            return
        if faults.inject("serve_reject", "serve.admission", request_id):
            # Chaos hook: a deterministic, probabilistic admission rejection
            # (the retrying client's backoff path).  The token is the request
            # sequence number, so a retried request re-rolls the draw.
            state.faults_rejected += 1
            window.record_rejection()
            self._send_json(
                503,
                {"error": "fault-injected rejection", "request_id": request_id},
                retry_after=state.retry_after_seconds(),
                close=True,
            )
            return
        try:
            content_length = int(self.headers.get("Content-Length", ""))
        except ValueError:
            self._send_json(
                411, {"error": "Content-Length required", "request_id": request_id}, close=True
            )
            return
        if content_length > state.config.max_body_bytes:
            window.record_rejection()
            self._send_json(
                413,
                {
                    "error": f"request body of {content_length} bytes exceeds the server"
                    f" bound {state.config.max_body_bytes}",
                    "request_id": request_id,
                },
                close=True,
            )
            return
        if not state.gate.try_enter():
            window.record_rejection()
            self._send_json(
                429,
                {"error": "server at capacity", "request_id": request_id},
                retry_after=state.retry_after_seconds(),
                close=True,
            )
            return

        # -- admitted: read, parse, execute.
        started = time.monotonic()
        try:
            try:
                payload = json.loads(self.rfile.read(content_length))
            except (json.JSONDecodeError, UnicodeDecodeError) as error:
                raise _Reject(400, f"request body is not valid JSON: {error}") from None
            if not isinstance(payload, dict):
                raise _Reject(400, "request body must be a JSON object")
            response = route(state, payload, request_id)
        except _Reject as reject:
            window.record(time.monotonic() - started, error=True)
            self._send_json(
                reject.status,
                {"error": reject.error, "request_id": request_id},
                retry_after=reject.retry_after,
            )
            return
        except ValidationError as error:
            window.record(time.monotonic() - started, error=True)
            self._send_json(400, {"error": str(error), "request_id": request_id})
            return
        except Exception as error:  # report, never raise
            window.record(time.monotonic() - started, error=True)
            self._send_json(
                500, {"error": f"{type(error).__name__}: {error}", "request_id": request_id}
            )
            return
        finally:
            state.gate.exit()
        window.record(time.monotonic() - started)
        self._send_json(200, response)


class _Server(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the shared :class:`ServerState`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, config: ServeConfig, *, verbose: bool = False) -> None:
        super().__init__((config.host, config.port), _Handler)
        self.state = ServerState(config)
        self.verbose = verbose


class ReproServer:
    """Lifecycle wrapper: bind, serve, pre-warm, drain, shut down.

    ``start()``/``stop()`` give tests and benchmarks an in-process server on
    an ephemeral port; ``run()`` is the CLI foreground mode with
    SIGTERM/SIGINT mapped to drain-then-shutdown.
    """

    def __init__(self, config: ServeConfig | None = None, *, verbose: bool = False) -> None:
        self.config = config or ServeConfig.from_env()
        self._httpd = _Server(self.config, verbose=verbose)
        self._thread: threading.Thread | None = None

    @property
    def state(self) -> ServerState:
        return self._httpd.state

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def prewarm(self, datasets: "list[UncertainDataset]") -> int:
        """Build (single-flight) the default-candidate context per dataset.

        Each dataset is canonicalized through the same ``to_dict`` /
        ``from_dict`` round trip a request body takes — ``UncertainPoint``
        renormalizes probabilities on construction, so warming the in-memory
        original could fingerprint one ulp away from what requests actually
        carry, building a context no request would ever hit.  Returns the
        number of context builds that actually ran — repeated fingerprints
        and store hits cost nothing.
        """
        before = self.state.contexts.builds
        for dataset in datasets:
            canonical = UncertainDataset.from_dict(dataset.to_dict(), metric=dataset.metric)
            self.state.contexts.get(canonical, default_candidates(canonical))
        return self.state.contexts.builds - before

    def start(self) -> None:
        """Serve on a background thread (returns once accepting)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._thread.start()

    def drain(self, timeout: float | None = None) -> bool:
        """Stop admitting, wait for in-flight requests; True when idle."""
        self.state.draining = True
        budget = self.config.drain_seconds if timeout is None else timeout
        return self.state.gate.wait_idle(budget)

    def stop(self, *, drain: bool = True) -> bool:
        """Drain (optionally), close the listener, shut the runtime down."""
        drained = self.drain() if drain else True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        shutdown_runtime()
        return drained

    def run(self) -> int:
        """Foreground mode: serve until SIGTERM/SIGINT, then drain and exit.

        Prints one JSON "ready" line (host, port, pid) to stdout so parent
        processes can discover the bound port when ``--port 0`` was used.
        """
        stop = threading.Event()

        def _on_signal(signum: int, frame: object) -> None:
            stop.set()

        previous = {
            signal.SIGTERM: signal.signal(signal.SIGTERM, _on_signal),
            signal.SIGINT: signal.signal(signal.SIGINT, _on_signal),
        }
        try:
            self.start()
            print(
                json.dumps(
                    {"event": "ready", "host": self.host, "port": self.port, "pid": os.getpid()}
                ),
                flush=True,
            )
            stop.wait()
            drained = self.stop()
            print(
                json.dumps({"event": "stopped", "drained": drained}),
                flush=True,
            )
            return 0 if drained else 1
        finally:
            for signum, handler in previous.items():
                signal.signal(signum, handler)


__all__ = [
    "GET_ROUTES",
    "POST_ROUTES",
    "ReproServer",
]
