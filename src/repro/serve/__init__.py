"""Crash-tolerant solve/score HTTP server (PR 9).

``python -m repro serve`` runs a long-lived process exposing the exact
solvers over JSON endpoints, built on the PR 8 crash-tolerant runtime:

* admission control and backpressure (bounded queue, 429 + Retry-After,
  413 before any context build) — :mod:`.state`, :mod:`.config`;
* per-request deadlines mapped onto the anytime ``time_budget`` (timed-out
  solves answer 200 with a sound certificate) — :mod:`.server`;
* a circuit breaker over runtime degradation events (pool rebuilds,
  serial fallbacks) flipping ``/readyz`` while the pool is crashing —
  :mod:`.state`;
* graceful drain on SIGTERM/SIGINT ending in
  :func:`repro.runtime.shutdown_runtime` — :class:`.server.ReproServer`;
* a retrying client honoring Retry-After — :mod:`.client`.
"""

from .client import ServeClient, ServeError
from .config import ServeConfig
from .server import ReproServer

__all__ = [
    "ReproServer",
    "ServeClient",
    "ServeConfig",
    "ServeError",
]
