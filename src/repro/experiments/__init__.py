"""Experiment harness reproducing the paper's Table 1 plus ablations."""

from .ablation import AblationSettings, run_assignment_ablation, run_representative_ablation
from .harness import render_full_report, run_everything, run_quick
from .records import ExperimentRecord, ExperimentRow
from .report import format_table, render_record, render_records
from .scaling import ScalingSettings, fit_exponent, run_scaling
from .sensitivity import (
    SensitivitySettings,
    run_outlier_sensitivity,
    run_support_size_sensitivity,
)
from .table1 import (
    Table1Settings,
    run_all_table1,
    run_e1_one_center,
    run_e2_e3_restricted_expected_distance,
    run_e4_e5_restricted_expected_point,
    run_e6_e7_unrestricted_euclidean,
    run_e8_one_dimensional,
    run_e9_general_metric,
    run_e10_baseline_comparison,
)

__all__ = [
    "ExperimentRecord",
    "ExperimentRow",
    "Table1Settings",
    "ScalingSettings",
    "AblationSettings",
    "run_e1_one_center",
    "run_e2_e3_restricted_expected_distance",
    "run_e4_e5_restricted_expected_point",
    "run_e6_e7_unrestricted_euclidean",
    "run_e8_one_dimensional",
    "run_e9_general_metric",
    "run_e10_baseline_comparison",
    "run_all_table1",
    "run_scaling",
    "fit_exponent",
    "SensitivitySettings",
    "run_outlier_sensitivity",
    "run_support_size_sensitivity",
    "run_representative_ablation",
    "run_assignment_ablation",
    "run_everything",
    "run_quick",
    "render_full_report",
    "format_table",
    "render_record",
    "render_records",
]
