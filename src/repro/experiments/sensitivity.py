"""Sensitivity experiments (E13): how the solution quality degrades with noise.

The paper proves worst-case factors but says nothing about how the pipeline
behaves as the *amount* of uncertainty grows.  These experiments produce the
figure-like series a practitioner would want next to Table 1:

* **E13a — outlier probability sweep**: heavy-tailed workloads with the
  per-point outlier mass swept from 0 to 0.3; reports the expected cost of
  the paper's pipeline (EP assignment) against the per-point lower bound.
* **E13b — support-size sweep**: Gaussian workloads with ``z`` swept over
  powers of two; verifies the cost converges (more locations per point do not
  blow up the objective once the distribution is fixed in scale) and that the
  running time stays near-linear in ``z``.

Independent (noise level, trial) cases of the E13a sweep map over
:func:`repro.runtime.parallel.parallel_map` (through the runtime's shared
persistent pool, with the requested count clamped to the available CPUs);
``SensitivitySettings.workers`` shards them across processes, and every
field of the record is identical at any worker count.  The E13b sweep
*always runs serially* regardless of ``workers`` — its ``seconds``
measurements feed the ``time_growth`` / ``time_subquadratic_in_z`` verdict,
and concurrently contended cases would skew exactly the quantity the
experiment reports (the same reason the E11 scaling experiment is never
sharded).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..algorithms.unrestricted import solve_unrestricted_assigned
from ..assignments.policies import ExpectedPointAssignment
from ..bounds.lower_bounds import assigned_cost_lower_bound
from ..cost.context import CostContext
from ..runtime.parallel import parallel_map
from ..workloads.synthetic import gaussian_clusters, heavy_tailed
from .records import ExperimentRecord, ExperimentRow


@dataclass(frozen=True)
class SensitivitySettings:
    """Knobs for the sensitivity sweeps.

    ``workers`` shards the sweep cases across processes (1 = serial).
    """

    n: int = 40
    k: int = 3
    trials: int = 2
    outlier_probabilities: tuple[float, ...] = (0.0, 0.05, 0.1, 0.2, 0.3)
    support_sizes: tuple[int, ...] = (2, 4, 8, 16)
    seed: int = 0
    workers: int = 1

    @classmethod
    def quick(cls) -> "SensitivitySettings":
        """Smaller preset for the benchmark harness."""
        return cls(n=25, trials=1, outlier_probabilities=(0.0, 0.1, 0.3), support_sizes=(2, 4, 8))


def _outlier_case(settings: SensitivitySettings, item) -> tuple[float, float | None, float]:
    """One (outlier probability, trial) case: cost, bound ratio, ED-EP gap."""
    probability, trial = item
    dataset, spec = heavy_tailed(
        n=settings.n,
        z=5,
        dimension=2,
        outlier_probability=max(probability, 1e-9),
        seed=settings.seed + trial,
    )
    result = solve_unrestricted_assigned(dataset, settings.k, solver="epsilon")
    lower_bound = assigned_cost_lower_bound(dataset, settings.k)
    bound_ratio = result.expected_cost / lower_bound if lower_bound > 0 else None
    # How much the EP assignment buys over ED on the solved centers, both
    # scored in one batched call against the shared context.
    context = CostContext(dataset, result.centers)
    label_rows = np.vstack(
        [
            context.expected.argmin(axis=1),
            ExpectedPointAssignment()(dataset, result.centers),
        ]
    )
    ed_cost, ep_cost = context.assigned_costs(label_rows)
    return result.expected_cost, bound_ratio, float(ed_cost - ep_cost)


def run_outlier_sensitivity(settings: SensitivitySettings | None = None) -> ExperimentRecord:
    """E13a — expected cost and ratio-to-lower-bound vs outlier probability."""
    settings = settings or SensitivitySettings()
    items = [
        (probability, trial)
        for probability in settings.outlier_probabilities
        for trial in range(settings.trials)
    ]
    cases = parallel_map(_outlier_case, items, payload=settings, workers=settings.workers)
    rows = []
    ratios: list[float] = []
    for start in range(0, len(items), settings.trials):
        probability = items[start][0]
        block = cases[start : start + settings.trials]
        costs = [cost for cost, _, _ in block]
        bound_ratios = [ratio for _, ratio, _ in block if ratio is not None]
        assignment_gaps = [gap for _, _, gap in block]
        mean_cost = float(np.mean(costs))
        mean_ratio = float(np.mean(bound_ratios)) if bound_ratios else float("nan")
        ratios.extend(bound_ratios)
        rows.append(
            ExperimentRow(
                configuration=f"outlier_probability={probability:g}",
                measured={
                    "mean_cost": mean_cost,
                    "mean_ratio_vs_lower_bound": mean_ratio,
                    "mean_ed_minus_ep_cost": float(np.mean(assignment_gaps)),
                },
            )
        )
    worst_ratio = max(ratios) if ratios else float("nan")
    # The denominator is a *lower bound* on the optimum, which becomes loose
    # under heavy-tailed noise (a rare far outlier inflates the expected max
    # but no single point's Fermat value captures it).  The ratio therefore
    # over-states the true approximation ratio; what the sweep checks is that
    # it stays bounded as noise grows rather than the exact (2+f) constant.
    return ExperimentRecord(
        experiment_id="E13a",
        paper_artifact="sensitivity extension (no paper artifact)",
        paper_claim="cost ratio to the lower bound stays bounded across noise levels",
        rows=tuple(rows),
        summary={"worst_ratio_vs_lower_bound": worst_ratio, "ratio_bounded": worst_ratio <= 8.0 + 1e-9},
    )


def _support_size_case(settings: SensitivitySettings, z: int) -> tuple[float, float, float]:
    """One support-size case: solver cost, elapsed seconds, ED-EP gap."""
    dataset, spec = gaussian_clusters(
        n=settings.n, z=z, dimension=2, k_true=settings.k, seed=settings.seed
    )
    start = time.perf_counter()
    result = solve_unrestricted_assigned(dataset, settings.k, solver="gonzalez")
    elapsed = time.perf_counter() - start
    # Outside the timed region: batched ED-vs-EP gap on the solved centers
    # through the shared context, tracking how the assignment rules drift
    # apart as the support grows.
    context = CostContext(dataset, result.centers)
    label_rows = np.vstack(
        [
            context.expected.argmin(axis=1),
            ExpectedPointAssignment()(dataset, result.centers),
        ]
    )
    ed_cost, ep_cost = context.assigned_costs(label_rows)
    return result.expected_cost, float(elapsed), float(ed_cost - ep_cost)


def run_support_size_sensitivity(settings: SensitivitySettings | None = None) -> ExperimentRecord:
    """E13b — cost stability and runtime growth as ``z`` increases.

    Always serial (``settings.workers`` is ignored): the per-case wall
    clocks feed the ``time_growth`` verdict, which concurrent execution
    would skew.
    """
    settings = settings or SensitivitySettings()
    cases = parallel_map(
        _support_size_case,
        list(settings.support_sizes),
        payload=settings,
        workers=1,
    )
    rows = []
    times = []
    costs = []
    for z, (cost, elapsed, gap) in zip(settings.support_sizes, cases):
        times.append(elapsed)
        costs.append(cost)
        rows.append(
            ExperimentRow(
                configuration=f"z={z}",
                measured={"cost": cost, "seconds": elapsed, "ed_minus_ep_cost": gap},
            )
        )
    cost_spread = float(max(costs) / max(min(costs), 1e-12))
    time_growth = float(times[-1] / max(times[0], 1e-12))
    z_growth = settings.support_sizes[-1] / settings.support_sizes[0]
    return ExperimentRecord(
        experiment_id="E13b",
        paper_artifact="sensitivity extension (no paper artifact)",
        paper_claim="cost stable in z; time roughly linear in z (O(nz + n log k))",
        rows=tuple(rows),
        summary={
            "cost_spread": cost_spread,
            "time_growth": time_growth,
            "z_growth": float(z_growth),
            "time_subquadratic_in_z": time_growth <= z_growth**2,
        },
    )
