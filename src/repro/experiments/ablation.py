"""Ablation experiments for the design choices DESIGN.md calls out.

E12 — representative choice: the paper replaces each uncertain point by its
expected point (Euclidean) or its 1-center (general metric).  The ablation
runs the same pipeline (deterministic solver + assignment + exact cost) with
three different representatives — expected point, per-point 1-center
(weighted geometric median) and medoid — on workloads with and without
heavy-tailed location noise, where the choice actually matters.

A second ablation compares the assignment rules (ED / EP / OC / naive
nearest-mode) on fixed centers, isolating the effect Theorems 2.2 vs 2.5
attribute to the assignment.

Per-(trial, workload) cases are independent, seeded, and mapped over
:func:`repro.runtime.parallel.parallel_map`; ``AblationSettings.workers``
shards them across processes with identical records at every worker count.
The runtime's persistent pool is shared with every other experiment of the
run, and requested counts clamp to the available CPUs — ``--workers 8`` on
a laptop never runs slower than serial.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..assignments.policies import (
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
)
from ..cost.context import CostContext
from ..deterministic.gonzalez import gonzalez_kcenter
from ..runtime.parallel import parallel_map
from ..uncertain.reduction import reduce_dataset
from ..workloads.synthetic import gaussian_clusters, heavy_tailed
from .records import ExperimentRecord, ExperimentRow


@dataclass(frozen=True)
class AblationSettings:
    """Knobs for the ablation experiments.

    ``workers`` shards the trial cases across processes (1 = serial).
    """

    trials: int = 3
    n: int = 40
    z: int = 5
    k: int = 3
    seed: int = 0
    workers: int = 1

    @classmethod
    def quick(cls) -> "AblationSettings":
        """Smaller preset for the benchmark harness."""
        return cls(trials=2, n=25, z=4, k=3)


_REPRESENTATIVE_KINDS = ("expected-point", "one-center", "medoid")


def _representative_case(settings: AblationSettings, item) -> tuple[ExperimentRow, dict[str, float]]:
    trial, maker = item
    dataset, spec = maker(n=settings.n, z=settings.z, dimension=2, seed=settings.seed + trial)
    # One shared context over the union of all representatives' center sets
    # scores every configuration in a single batched call, instead of one
    # scratch engine invocation per kind.
    center_sets = []
    for kind in _REPRESENTATIVE_KINDS:
        representatives = reduce_dataset(dataset, kind)
        center_sets.append(gonzalez_kcenter(representatives, settings.k, dataset.metric).centers)
    context = CostContext(dataset, np.vstack(center_sets))
    offsets = np.cumsum([0] + [centers.shape[0] for centers in center_sets])
    candidate_index_rows = np.vstack(
        [
            context.ed_assignment(np.arange(offsets[j], offsets[j + 1]))
            for j in range(len(_REPRESENTATIVE_KINDS))
        ]
    )
    batched_costs = context.assigned_costs(candidate_index_rows)
    costs = {kind: float(cost) for kind, cost in zip(_REPRESENTATIVE_KINDS, batched_costs)}
    row = ExperimentRow(
        configuration=f"{spec.describe()}",
        measured={f"cost_{kind.replace('-', '_')}": cost for kind, cost in costs.items()},
    )
    return row, costs


def run_representative_ablation(settings: AblationSettings | None = None) -> ExperimentRecord:
    """E12a — expected point vs 1-center vs medoid representatives."""
    settings = settings or AblationSettings()
    items = [
        (trial, maker)
        for trial in range(settings.trials)
        for maker in (gaussian_clusters, heavy_tailed)
    ]
    cases = parallel_map(_representative_case, items, payload=settings, workers=settings.workers)
    rows = [row for row, _ in cases]
    aggregates: dict[str, list[float]] = {kind: [] for kind in _REPRESENTATIVE_KINDS}
    for _, costs in cases:
        for kind in _REPRESENTATIVE_KINDS:
            aggregates[kind].append(costs[kind])
    means = {kind: float(np.mean(values)) for kind, values in aggregates.items()}
    return ExperimentRecord(
        experiment_id="E12a",
        paper_artifact="Section 2 design choice: representative construction",
        paper_claim="expected point (Euclidean) / 1-center (metric) representatives suffice",
        rows=tuple(rows),
        summary={f"mean_cost_{kind.replace('-', '_')}": value for kind, value in means.items()},
    )


def _assignment_case(settings: AblationSettings, item) -> tuple[ExperimentRow, dict[str, float]]:
    trial, maker = item
    policies = (
        ExpectedDistanceAssignment(),
        ExpectedPointAssignment(),
        OneCenterAssignment(),
        NearestLocationAssignment(),
    )
    dataset, spec = maker(n=settings.n, z=settings.z, dimension=2, seed=settings.seed + 50 + trial)
    representatives = reduce_dataset(dataset, "expected-point")
    centers = gonzalez_kcenter(representatives, settings.k, dataset.metric).centers
    # Fixed centers, four assignment rules: one context, one batched exact
    # scoring of all four label vectors.
    context = CostContext(dataset, centers)
    label_rows = np.vstack([policy(dataset, centers) for policy in policies])
    batched_costs = context.assigned_costs(label_rows)
    measured = {}
    costs = {}
    for policy, cost in zip(policies, batched_costs):
        measured[f"cost_{policy.name.replace('-', '_')}"] = float(cost)
        costs[policy.name] = float(cost)
    return ExperimentRow(configuration=f"{spec.describe()}", measured=measured), costs


def run_assignment_ablation(settings: AblationSettings | None = None) -> ExperimentRecord:
    """E12b — assignment rules compared on identical centers."""
    settings = settings or AblationSettings()
    policy_names = (
        ExpectedDistanceAssignment.name,
        ExpectedPointAssignment.name,
        OneCenterAssignment.name,
        NearestLocationAssignment.name,
    )
    items = [
        (trial, maker)
        for trial in range(settings.trials)
        for maker in (gaussian_clusters, heavy_tailed)
    ]
    cases = parallel_map(_assignment_case, items, payload=settings, workers=settings.workers)
    rows = [row for row, _ in cases]
    aggregates: dict[str, list[float]] = {name: [] for name in policy_names}
    for _, costs in cases:
        for name in policy_names:
            aggregates[name].append(costs[name])
    means = {name: float(np.mean(values)) for name, values in aggregates.items()}
    return ExperimentRecord(
        experiment_id="E12b",
        paper_artifact="Section 1/2 design choice: assignment rule",
        paper_claim="EP/OC assignments improve on ED (better constants)",
        rows=tuple(rows),
        summary={f"mean_cost_{name.replace('-', '_')}": value for name, value in means.items()},
    )
