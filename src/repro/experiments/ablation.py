"""Ablation experiments for the design choices DESIGN.md calls out.

E12 — representative choice: the paper replaces each uncertain point by its
expected point (Euclidean) or its 1-center (general metric).  The ablation
runs the same pipeline (deterministic solver + assignment + exact cost) with
three different representatives — expected point, per-point 1-center
(weighted geometric median) and medoid — on workloads with and without
heavy-tailed location noise, where the choice actually matters.

A second ablation compares the assignment rules (ED / EP / OC / naive
nearest-mode) on fixed centers, isolating the effect Theorems 2.2 vs 2.5
attribute to the assignment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..assignments.policies import (
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
)
from ..cost.context import CostContext
from ..deterministic.gonzalez import gonzalez_kcenter
from ..uncertain.reduction import reduce_dataset
from ..workloads.synthetic import gaussian_clusters, heavy_tailed
from .records import ExperimentRecord, ExperimentRow


@dataclass(frozen=True)
class AblationSettings:
    """Knobs for the ablation experiments."""

    trials: int = 3
    n: int = 40
    z: int = 5
    k: int = 3
    seed: int = 0

    @classmethod
    def quick(cls) -> "AblationSettings":
        """Smaller preset for the benchmark harness."""
        return cls(trials=2, n=25, z=4, k=3)


def run_representative_ablation(settings: AblationSettings | None = None) -> ExperimentRecord:
    """E12a — expected point vs 1-center vs medoid representatives."""
    settings = settings or AblationSettings()
    rows = []
    aggregates: dict[str, list[float]] = {"expected-point": [], "one-center": [], "medoid": []}
    kinds = ("expected-point", "one-center", "medoid")
    for trial in range(settings.trials):
        for maker, name in ((gaussian_clusters, "gaussian"), (heavy_tailed, "heavy-tailed")):
            dataset, spec = maker(n=settings.n, z=settings.z, dimension=2, seed=settings.seed + trial)
            # One shared context over the union of all representatives'
            # center sets scores every configuration in a single batched
            # call, instead of one scratch engine invocation per kind.
            center_sets = []
            for kind in kinds:
                representatives = reduce_dataset(dataset, kind)
                center_sets.append(gonzalez_kcenter(representatives, settings.k, dataset.metric).centers)
            context = CostContext(dataset, np.vstack(center_sets))
            offsets = np.cumsum([0] + [centers.shape[0] for centers in center_sets])
            candidate_index_rows = np.vstack(
                [
                    context.ed_assignment(np.arange(offsets[j], offsets[j + 1]))
                    for j in range(len(kinds))
                ]
            )
            batched_costs = context.assigned_costs(candidate_index_rows)
            costs = {kind: float(cost) for kind, cost in zip(kinds, batched_costs)}
            for kind in kinds:
                aggregates[kind].append(costs[kind])
            rows.append(
                ExperimentRow(
                    configuration=f"{spec.describe()}",
                    measured={f"cost_{kind.replace('-', '_')}": cost for kind, cost in costs.items()},
                )
            )
    means = {kind: float(np.mean(values)) for kind, values in aggregates.items()}
    return ExperimentRecord(
        experiment_id="E12a",
        paper_artifact="Section 2 design choice: representative construction",
        paper_claim="expected point (Euclidean) / 1-center (metric) representatives suffice",
        rows=tuple(rows),
        summary={f"mean_cost_{kind.replace('-', '_')}": value for kind, value in means.items()},
    )


def run_assignment_ablation(settings: AblationSettings | None = None) -> ExperimentRecord:
    """E12b — assignment rules compared on identical centers."""
    settings = settings or AblationSettings()
    policies = (
        ExpectedDistanceAssignment(),
        ExpectedPointAssignment(),
        OneCenterAssignment(),
        NearestLocationAssignment(),
    )
    rows = []
    aggregates: dict[str, list[float]] = {policy.name: [] for policy in policies}
    for trial in range(settings.trials):
        for maker, name in ((gaussian_clusters, "gaussian"), (heavy_tailed, "heavy-tailed")):
            dataset, spec = maker(n=settings.n, z=settings.z, dimension=2, seed=settings.seed + 50 + trial)
            representatives = reduce_dataset(dataset, "expected-point")
            centers = gonzalez_kcenter(representatives, settings.k, dataset.metric).centers
            # Fixed centers, four assignment rules: one context, one batched
            # exact scoring of all four label vectors.
            context = CostContext(dataset, centers)
            label_rows = np.vstack([policy(dataset, centers) for policy in policies])
            batched_costs = context.assigned_costs(label_rows)
            measured = {}
            for policy, cost in zip(policies, batched_costs):
                measured[f"cost_{policy.name.replace('-', '_')}"] = float(cost)
                aggregates[policy.name].append(float(cost))
            rows.append(ExperimentRow(configuration=f"{spec.describe()}", measured=measured))
    means = {name: float(np.mean(values)) for name, values in aggregates.items()}
    return ExperimentRecord(
        experiment_id="E12b",
        paper_artifact="Section 1/2 design choice: assignment rule",
        paper_claim="EP/OC assignments improve on ED (better constants)",
        rows=tuple(rows),
        summary={f"mean_cost_{name.replace('-', '_')}": value for name, value in means.items()},
    )
