"""Top-level experiment harness: run every experiment and render the report.

``python -m repro table1`` (or the installed ``uncertain-kcenter`` script)
drives this module.  ``run_everything`` executes all experiments from
DESIGN.md's index and returns the records; ``render_full_report`` turns them
into the text EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import Sequence

from .ablation import AblationSettings, run_assignment_ablation, run_representative_ablation
from .records import ExperimentRecord
from .report import render_records
from .scaling import ScalingSettings, run_scaling
from .table1 import Table1Settings, run_all_table1


def run_everything(
    *,
    table1_settings: Table1Settings | None = None,
    scaling_settings: ScalingSettings | None = None,
    ablation_settings: AblationSettings | None = None,
    include_scaling: bool = True,
    include_ablation: bool = True,
) -> Sequence[ExperimentRecord]:
    """Run every experiment in DESIGN.md's index (E1..E12)."""
    records = list(run_all_table1(table1_settings))
    if include_scaling:
        records.append(run_scaling(scaling_settings))
    if include_ablation:
        records.append(run_representative_ablation(ablation_settings))
        records.append(run_assignment_ablation(ablation_settings))
    return tuple(records)


def run_quick() -> Sequence[ExperimentRecord]:
    """Lightweight run used by the CLI's ``--quick`` flag and smoke tests."""
    return run_everything(
        table1_settings=Table1Settings.quick(),
        scaling_settings=ScalingSettings.quick(),
        ablation_settings=AblationSettings.quick(),
    )


def render_full_report(records: Sequence[ExperimentRecord]) -> str:
    """Render all records as the plain-text report EXPERIMENTS.md embeds."""
    return render_records(records)
