"""Top-level experiment harness: run every experiment and render the report.

``python -m repro table1`` (or the installed ``uncertain-kcenter`` script)
drives this module.  ``run_everything`` executes all experiments from
DESIGN.md's index — the Table-1 rows (E1..E10), the scaling study (E11), the
ablations (E12) and the sensitivity sweeps (E13a/E13b) — and returns the
records; ``render_full_report`` turns them into the text EXPERIMENTS.md
embeds.  Pass ``workers`` (the CLI's ``--workers``) to shard each
experiment's trial cases across processes; records are identical at every
worker count.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from .ablation import AblationSettings, run_assignment_ablation, run_representative_ablation
from .records import ExperimentRecord, track_runtime_health
from .report import render_records
from .scaling import ScalingSettings, run_scaling
from .sensitivity import (
    SensitivitySettings,
    run_outlier_sensitivity,
    run_support_size_sensitivity,
)
from .table1 import Table1Settings, run_all_table1


def run_everything(
    *,
    table1_settings: Table1Settings | None = None,
    scaling_settings: ScalingSettings | None = None,
    ablation_settings: AblationSettings | None = None,
    sensitivity_settings: SensitivitySettings | None = None,
    include_scaling: bool = True,
    include_ablation: bool = True,
    include_sensitivity: bool = True,
    workers: int | None = None,
    prune: bool | None = None,
    time_budget: float | None = None,
    gap_target: float | None = None,
) -> Sequence[ExperimentRecord]:
    """Run every experiment in DESIGN.md's index (E1..E13).

    ``workers`` overrides the ``workers`` field of every settings object at
    once (the scaling experiment and the timed E13b sweep always run
    serially — they measure wall clock, and contended workers would skew
    the fitted exponents / growth verdicts).  ``prune`` (the CLI's
    ``--no-prune`` maps to ``False``) toggles branch-and-bound pruning in
    the brute-force references; records are bit-identical either way.
    ``time_budget`` (the CLI's ``--time-budget``, seconds) caps each
    brute-force reference solve; exhausted references report their best
    incumbent plus an optimality certificate instead of the exact optimum.
    ``gap_target`` (the CLI's ``--gap-target``) stops each reference as
    soon as its certified relative optimality gap reaches the target —
    the precision analogue of ``time_budget`` (requires pruning).

    Every record carries a ``"runtime_health"`` summary entry when the
    runtime degraded during its experiment (pool rebuilds, chunk retries,
    deadline hits, serial fallbacks — see :mod:`repro.runtime.health`);
    clean runs report nothing, keeping records byte-stable.
    """
    table1_settings = table1_settings or Table1Settings()
    ablation_settings = ablation_settings or AblationSettings()
    sensitivity_settings = sensitivity_settings or SensitivitySettings()
    if workers is not None:
        table1_settings = replace(table1_settings, workers=workers)
        ablation_settings = replace(ablation_settings, workers=workers)
        sensitivity_settings = replace(sensitivity_settings, workers=workers)
    if prune is not None:
        table1_settings = replace(table1_settings, prune=prune)
    if time_budget is not None:
        table1_settings = replace(table1_settings, time_budget=time_budget)
    if gap_target is not None:
        table1_settings = replace(table1_settings, gap_target=gap_target)
    records = list(run_all_table1(table1_settings))
    if include_scaling:
        records.append(track_runtime_health(run_scaling, scaling_settings))
    if include_ablation:
        records.append(track_runtime_health(run_representative_ablation, ablation_settings))
        records.append(track_runtime_health(run_assignment_ablation, ablation_settings))
    if include_sensitivity:
        records.append(track_runtime_health(run_outlier_sensitivity, sensitivity_settings))
        records.append(track_runtime_health(run_support_size_sensitivity, sensitivity_settings))
    return tuple(records)


def run_quick(
    *,
    workers: int | None = None,
    prune: bool | None = None,
    time_budget: float | None = None,
    gap_target: float | None = None,
) -> Sequence[ExperimentRecord]:
    """Lightweight run used by the CLI's ``--quick`` flag and smoke tests."""
    return run_everything(
        table1_settings=Table1Settings.quick(),
        scaling_settings=ScalingSettings.quick(),
        ablation_settings=AblationSettings.quick(),
        sensitivity_settings=SensitivitySettings.quick(),
        workers=workers,
        prune=prune,
        time_budget=time_budget,
        gap_target=gap_target,
    )


def render_full_report(records: Sequence[ExperimentRecord]) -> str:
    """Render all records as the plain-text report EXPERIMENTS.md embeds."""
    return render_records(records)
