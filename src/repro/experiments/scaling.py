"""Running-time scaling experiments (Table 1's running-time columns).

The paper claims ``O(z)`` for the 1-center construction and
``O(nz + n log k)`` for the Gonzalez-based k-center reductions.  These
experiments time the implementations across sweeps of ``n``, ``z`` and ``k``
and fit the growth exponent by least squares on the log-log curve; an
exponent near 1 in ``n`` (with ``z, k`` fixed), near 1 in ``z`` (with
``n, k`` fixed) and clearly sub-linear in ``k`` reproduce the claimed shapes.
(Python constant factors are large but irrelevant to the *shape*.)
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..algorithms.one_center import expected_point_one_center
from ..algorithms.restricted import solve_restricted_assigned
from ..cost.expected import assigned_cost_evaluator
from ..workloads.synthetic import gaussian_clusters
from .records import ExperimentRecord, ExperimentRow


@dataclass(frozen=True)
class ScalingSettings:
    """Sweep sizes for the scaling experiment."""

    n_values: tuple[int, ...] = (100, 200, 400, 800)
    z_values: tuple[int, ...] = (2, 4, 8, 16)
    k_values: tuple[int, ...] = (2, 4, 8, 16)
    base_n: int = 300
    base_z: int = 4
    base_k: int = 4
    repeats: int = 3
    seed: int = 0

    @classmethod
    def quick(cls) -> "ScalingSettings":
        """Smaller preset for the benchmark harness."""
        return cls(n_values=(50, 100, 200), z_values=(2, 4, 8), k_values=(2, 4, 8), base_n=100, repeats=2)


def _time_call(function: Callable[[], object], repeats: int) -> float:
    best = np.inf
    for _ in range(repeats):
        start = time.perf_counter()
        function()
        best = min(best, time.perf_counter() - start)
    return float(best)


def fit_exponent(sizes: Sequence[int], times: Sequence[float]) -> float:
    """Least-squares slope of log(time) against log(size)."""
    xs = np.log(np.asarray(sizes, dtype=float))
    ys = np.log(np.maximum(np.asarray(times, dtype=float), 1e-9))
    slope, _ = np.polyfit(xs, ys, 1)
    return float(slope)


def run_scaling(settings: ScalingSettings | None = None) -> ExperimentRecord:
    """E11 — running-time scaling of the Gonzalez-based reduction and Thm 2.1."""
    settings = settings or ScalingSettings()
    rows = []

    # Sweep n (k-center reduction, Gonzalez solver): expect ~linear.
    n_times = []
    for n in settings.n_values:
        dataset, _ = gaussian_clusters(n=n, z=settings.base_z, dimension=2, seed=settings.seed)
        elapsed = _time_call(
            lambda: solve_restricted_assigned(dataset, settings.base_k, assignment="expected-point", solver="gonzalez"),
            settings.repeats,
        )
        n_times.append(elapsed)
        rows.append(ExperimentRow(configuration=f"sweep=n n={n}", measured={"seconds": elapsed}))
    n_exponent = fit_exponent(settings.n_values, n_times)

    # Sweep z (1-center expected point, Theorem 2.1): expect ~linear in z.
    z_times = []
    for z in settings.z_values:
        dataset, _ = gaussian_clusters(n=settings.base_n, z=z, dimension=2, k_true=1, seed=settings.seed)
        elapsed = _time_call(lambda: expected_point_one_center(dataset), settings.repeats)
        z_times.append(elapsed)
        rows.append(ExperimentRow(configuration=f"sweep=z z={z}", measured={"seconds": elapsed}))
    z_exponent = fit_exponent(settings.z_values, z_times)

    # Sweep k (k-center reduction): expect sub-linear / mild growth.
    k_times = []
    for k in settings.k_values:
        dataset, _ = gaussian_clusters(n=settings.base_n, z=settings.base_z, dimension=2, seed=settings.seed)
        elapsed = _time_call(
            lambda: solve_restricted_assigned(dataset, k, assignment="expected-point", solver="gonzalez"),
            settings.repeats,
        )
        k_times.append(elapsed)
        rows.append(ExperimentRow(configuration=f"sweep=k k={k}", measured={"seconds": elapsed}))
    k_exponent = fit_exponent(settings.k_values, k_times)

    # Cost engine: batch kernel vs per-assignment scalar evaluation on the
    # exact E[max] engine (the hot path of local search and brute force).
    dataset, _ = gaussian_clusters(n=settings.base_n, z=settings.base_z, dimension=2, seed=settings.seed)
    rng = np.random.default_rng(settings.seed)
    centers = dataset.expected_points()[: settings.base_k]
    assignments = rng.integers(0, centers.shape[0], size=(64, dataset.size))
    evaluator = assigned_cost_evaluator(dataset, centers)
    batch_seconds = _time_call(lambda: evaluator.costs(assignments), settings.repeats)
    scalar_seconds = _time_call(
        lambda: [evaluator.cost(row) for row in assignments], settings.repeats
    )
    batch_speedup = float(scalar_seconds / max(batch_seconds, 1e-9))
    rows.append(
        ExperimentRow(
            configuration=f"sweep=cost-engine batch=64 n={settings.base_n}",
            measured={"seconds": batch_seconds, "scalar_seconds": scalar_seconds},
        )
    )

    # Local-search round: the round-amortized sweep (rest profiles divided
    # out of one cached union) vs per-point rest_profile re-sorts.
    assignment = rng.integers(0, centers.shape[0], size=dataset.size)
    all_columns = np.arange(centers.shape[0])

    def _per_point_round() -> None:
        for point in range(dataset.size):
            profile = evaluator.rest_profile(assignment, point)
            evaluator.move_costs(profile, all_columns)

    sweep = evaluator.local_search_sweep(assignment)

    def _amortized_round() -> None:
        for point in range(dataset.size):
            profile = sweep.rest_profile(point)
            evaluator.move_costs(profile, all_columns)

    per_point_seconds = _time_call(_per_point_round, settings.repeats)
    amortized_seconds = _time_call(_amortized_round, settings.repeats)
    sweep_speedup = float(per_point_seconds / max(amortized_seconds, 1e-9))
    rows.append(
        ExperimentRow(
            configuration=f"sweep=local-search-round n={settings.base_n}",
            measured={"seconds": amortized_seconds, "per_point_seconds": per_point_seconds},
        )
    )

    return ExperimentRecord(
        experiment_id="E11",
        paper_artifact="Table 1 running-time column",
        paper_claim="O(z) for Theorem 2.1; O(nz + n log k) for the Gonzalez reduction",
        rows=tuple(rows),
        summary={
            "n_exponent": n_exponent,
            "z_exponent": z_exponent,
            "k_exponent": k_exponent,
            "batch_engine_speedup": batch_speedup,
            "local_search_sweep_speedup": sweep_speedup,
            "n_shape_ok": n_exponent <= 1.5,
            "z_shape_ok": z_exponent <= 1.5,
            "k_shape_sublinear": k_exponent <= 1.0,
        },
    )
