"""Plain-text rendering of experiment records (no plotting dependencies)."""

from __future__ import annotations

from typing import Iterable, Sequence

from .records import ExperimentRecord


def format_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """Render an ASCII table with column widths fitted to the content."""
    materialised = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    separator = "-+-".join("-" * width for width in widths)
    lines = [" | ".join(header.ljust(width) for header, width in zip(headers, widths)), separator]
    for row in materialised:
        lines.append(" | ".join(cell.ljust(width) for cell, width in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.4g}"
    return str(cell)


def render_record(record: ExperimentRecord) -> str:
    """Render one experiment record as a titled ASCII table."""
    keys: list[str] = []
    for row in record.rows:
        for key in row.measured:
            if key not in keys:
                keys.append(key)
    headers = ["configuration", *keys]
    body = [[row.configuration, *[row.measured.get(key, "") for key in keys]] for row in record.rows]
    title = f"{record.experiment_id} — {record.paper_artifact} (paper claim: {record.paper_claim})"
    summary = ", ".join(f"{key}={_fmt(value)}" for key, value in record.summary.items())
    table = format_table(headers, body)
    return f"{title}\n{table}" + (f"\nsummary: {summary}" if summary else "")


def render_records(records: Iterable[ExperimentRecord]) -> str:
    """Render several experiment records separated by blank lines."""
    return "\n\n".join(render_record(record) for record in records)
