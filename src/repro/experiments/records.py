"""Record types shared by the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable, Mapping, Sequence

from ..runtime import health


@dataclass(frozen=True)
class ExperimentRow:
    """One measured configuration inside an experiment."""

    configuration: str
    measured: Mapping[str, float]


@dataclass(frozen=True)
class ExperimentRecord:
    """Everything the harness reports about one experiment (Table 1 row etc.).

    Attributes
    ----------
    experiment_id:
        Identifier from DESIGN.md's experiment index (``"E1"`` .. ``"E12"``).
    paper_artifact:
        The table/figure (or remark) of the paper being reproduced.
    paper_claim:
        The paper's claim, as a human-readable string (e.g. ``"factor 2"``).
    rows:
        Per-configuration measurements.
    summary:
        Aggregate values (e.g. worst measured ratio) used by EXPERIMENTS.md.
    """

    experiment_id: str
    paper_artifact: str
    paper_claim: str
    rows: Sequence[ExperimentRow] = field(default_factory=tuple)
    summary: Mapping[str, Any] = field(default_factory=dict)

    def worst(self, key: str) -> float:
        """Largest value of ``key`` across the rows (e.g. worst ratio)."""
        values = [row.measured[key] for row in self.rows if key in row.measured]
        return max(values) if values else float("nan")

    def best(self, key: str) -> float:
        """Smallest value of ``key`` across the rows."""
        values = [row.measured[key] for row in self.rows if key in row.measured]
        return min(values) if values else float("nan")


def runtime_health_summary(
    since: health.RuntimeHealth, *, always: bool = False
) -> dict[str, int] | None:
    """The runtime-health window since ``since``, or ``None`` when clean.

    ``always=False`` (the record-attaching default) reports only when a
    degradation counter moved, keeping clean experiment records byte-stable.
    ``always=True`` reports the window unconditionally — zeroed counters
    included — which is what a monitoring surface wants: the server's
    ``/stats`` endpoint uses this so "no degradation" is an explicit row of
    zeros rather than an absent key.  Reset-generation handling comes from
    :func:`repro.runtime.health.delta`: a global reset inside the window
    re-baselines at zero instead of producing negative counts.
    """
    delta = health.delta(since)
    if not always and not delta.any():
        return None
    return delta.as_dict()


def track_runtime_health(
    run: Callable[..., ExperimentRecord],
    *args: Any,
    always: bool = False,
    **kwargs: Any,
) -> ExperimentRecord:
    """Run one experiment and attach the runtime-health delta to its record.

    Snapshots :mod:`repro.runtime.health` around the call; if any degradation
    counter moved (pool rebuilds, chunk retries, transport fallbacks, deadline
    hits, serial fallbacks), the delta lands in the record's summary under
    ``"runtime_health"``.  Fault-free runs report nothing by default, so
    existing records stay byte-stable; ``always=True`` attaches the (possibly
    all-zero) delta unconditionally for callers that want clean runs to say
    so explicitly.  ``always`` is consumed here — it is never forwarded to
    ``run``.
    """
    before = health.snapshot()
    record = run(*args, **kwargs)
    summary_delta = runtime_health_summary(before, always=always)
    if summary_delta is None:
        return record
    summary = dict(record.summary)
    summary["runtime_health"] = summary_delta
    return replace(record, summary=summary)
