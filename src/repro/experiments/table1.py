"""Reproduction of Table 1: one experiment per row of the paper's summary.

The paper's evaluation artifact is Table 1 — a summary of approximation
factors and running times for each (objective, metric, assignment) pairing.
Each ``run_e*`` function here regenerates one row (or a pair of rows sharing
a workload) empirically:

* it solves synthetic instances with the corresponding algorithm,
* divides the achieved expected cost by a *provable lower bound* on the
  relevant optimum (and, on micro instances, by the brute-force best-known
  cost), and
* reports the worst observed ratio next to the paper's guaranteed factor.

A measured ratio at or below the guarantee reproduces the row; ratios are
typically far below it because the guarantees are worst-case.

Each experiment's independent trial cases are module-level functions mapped
over :func:`repro.runtime.parallel.parallel_map`; ``Table1Settings.workers``
(the CLI's ``--workers``) shards them across processes.  All seven
experiments of a run share the runtime's one persistent pool (spawned on
first use, reused afterwards), and a worker count above the available CPUs
is clamped rather than oversubscribed.  ``workers=1`` (the default) runs the
same cases in the same order in-process, so records are bit-identical for
every worker count — cases regenerate their workloads from fixed seeds and
never share state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..algorithms.factors import RESTRICTED_ED_VS_UNRESTRICTED_FACTOR
from ..algorithms.metric_space import solve_metric_unrestricted
from ..algorithms.one_center import expected_point_one_center, refined_uncertain_one_center
from ..algorithms.restricted import solve_restricted_assigned
from ..algorithms.unrestricted import solve_unrestricted_assigned
from ..baselines.brute_force import (
    brute_force_restricted_assigned,
    brute_force_unrestricted_assigned,
)
from ..baselines.cormode_mcgregor import cormode_mcgregor_baseline
from ..baselines.guha_munagala import guha_munagala_baseline
from ..baselines.wang_zhang_1d import wang_zhang_1d
from ..bounds.lower_bounds import assigned_cost_lower_bound
from ..assignments.policies import ExpectedDistanceAssignment, ExpectedPointAssignment
from ..runtime.parallel import parallel_map
from ..workloads.graphs import graph_uncertain_workload
from ..workloads.synthetic import gaussian_clusters, heavy_tailed, line_workload, uniform_cloud
from .records import ExperimentRecord, ExperimentRow, track_runtime_health


@dataclass(frozen=True)
class Table1Settings:
    """Knobs controlling how heavy the Table-1 experiments are.

    ``quick`` presets are used by the pytest-benchmark targets so a full
    benchmark run stays in the minutes range; the defaults are what
    EXPERIMENTS.md reports.  ``workers`` shards each experiment's trial
    cases across processes (1 = serial; results are identical either way).
    """

    trials: int = 3
    n_small: int = 6
    n_medium: int = 40
    z: int = 4
    k: int = 3
    epsilon: float = 0.1
    seed: int = 0
    workers: int = 1
    #: Branch-and-bound pruning for the brute-force references (the CLI's
    #: ``--no-prune`` clears it).  Pruned and unpruned references are
    #: bit-identical; the flag exists to measure/debug the pruning layer.
    prune: bool = True
    #: Wall-clock budget in seconds for each brute-force reference solve
    #: (the CLI's ``--time-budget``).  ``None`` (the default) runs to
    #: completion.  With a budget, a reference that runs out of time
    #: returns its best incumbent plus a ``(cost, lower_bound, gap)``
    #: certificate instead of the exact optimum — see
    #: :mod:`repro.baselines.brute_force`.
    time_budget: float | None = None
    #: Certified relative optimality gap at which each brute-force reference
    #: may stop early (the CLI's ``--gap-target``).  ``None`` (the default)
    #: runs to completion; ``0.0`` never stops early (bit-identical to the
    #: exact run).  Requires ``prune`` — the certified gap is measured
    #: against the admissible chunk bounds the pruning layer computes.
    gap_target: float | None = None

    @classmethod
    def quick(cls) -> "Table1Settings":
        """Smaller preset for benchmark harness runs."""
        return cls(trials=2, n_small=5, n_medium=25, z=3, k=2)


def _euclidean_micro_workloads(settings: Table1Settings):
    """Small Euclidean instances where brute force references are affordable."""
    for trial in range(settings.trials):
        yield gaussian_clusters(
            n=settings.n_small,
            z=settings.z,
            dimension=2,
            k_true=settings.k,
            seed=settings.seed + trial,
        )
        yield uniform_cloud(
            n=settings.n_small,
            z=settings.z,
            dimension=2,
            seed=settings.seed + 100 + trial,
        )


def _e1_case(settings: Table1Settings, item: tuple[int, int]) -> tuple[ExperimentRow, float]:
    dimension, trial = item
    dataset, spec = gaussian_clusters(
        n=settings.n_medium,
        z=settings.z,
        dimension=dimension,
        k_true=1,
        seed=settings.seed + trial,
    )
    theorem = expected_point_one_center(dataset)
    reference = refined_uncertain_one_center(dataset)
    ratio = theorem.expected_cost / max(reference.expected_cost, 1e-12)
    row = ExperimentRow(
        configuration=f"{spec.describe()} trial={trial}",
        measured={
            "theorem_2_1_cost": theorem.expected_cost,
            "reference_cost": reference.expected_cost,
            "ratio": ratio,
        },
    )
    return row, ratio


def run_e1_one_center(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E1 — Table 1 row 1: 1-center, Euclidean, factor 2, O(z) time."""
    settings = settings or Table1Settings()
    items = [(dimension, trial) for dimension in (1, 2, 3, 8) for trial in range(settings.trials)]
    cases = parallel_map(_e1_case, items, payload=settings, workers=settings.workers)
    rows = [row for row, _ in cases]
    worst_ratio = max((ratio for _, ratio in cases), default=0.0)
    return ExperimentRecord(
        experiment_id="E1",
        paper_artifact="Table 1 row 1 (1-center, Euclidean)",
        paper_claim="factor 2, O(z) time",
        rows=tuple(rows),
        summary={"worst_ratio": worst_ratio, "bound": 2.0, "within_bound": worst_ratio <= 2.0 + 1e-9},
    )


def _restricted_case(payload, item) -> tuple[list[ExperimentRow], dict[str, float]]:
    settings, assignment, policy_cls = payload
    dataset, spec = item
    reference = brute_force_restricted_assigned(
        dataset,
        settings.k,
        assignment=policy_cls(),
        prune=settings.prune,
        time_budget=settings.time_budget,
        gap_target=settings.gap_target,
    )
    lower_bound = assigned_cost_lower_bound(dataset, settings.k)
    denominator = max(min(reference.expected_cost, np.inf), lower_bound, 1e-12)
    rows = []
    worst = {"gonzalez": 0.0, "epsilon": 0.0}
    for solver in ("gonzalez", "epsilon"):
        result = solve_restricted_assigned(
            dataset, settings.k, assignment=assignment, solver=solver, epsilon=settings.epsilon
        )
        ratio = result.expected_cost / denominator
        worst[solver] = max(worst[solver], ratio)
        rows.append(
            ExperimentRow(
                configuration=f"{spec.describe()} solver={solver}",
                measured={
                    "cost": result.expected_cost,
                    "reference_cost": reference.expected_cost,
                    "lower_bound": lower_bound,
                    "ratio_vs_reference": ratio,
                    "guaranteed_factor": result.guaranteed_factor or float("nan"),
                },
            )
        )
    return rows, worst


def _run_restricted(settings: Table1Settings, assignment: str, policy_cls) -> ExperimentRecord:
    gonzalez_bound = 4.0 + 2.0 if assignment == "expected-distance" else 2.0 + 2.0
    eps_bound = 4.0 + 1.0 + settings.epsilon if assignment == "expected-distance" else 2.0 + 1.0 + settings.epsilon
    cases = parallel_map(
        _restricted_case,
        list(_euclidean_micro_workloads(settings)),
        payload=(settings, assignment, policy_cls),
        workers=settings.workers,
    )
    rows = [row for case_rows, _ in cases for row in case_rows]
    worst = {"gonzalez": 0.0, "epsilon": 0.0}
    for _, case_worst in cases:
        for solver, ratio in case_worst.items():
            worst[solver] = max(worst[solver], ratio)
    experiment_id = "E2/E3" if assignment == "expected-distance" else "E4/E5"
    artifact = (
        "Table 1 rows 2-3 (restricted assigned, expected distance)"
        if assignment == "expected-distance"
        else "Table 1 rows 4-5 (restricted assigned, expected point)"
    )
    return ExperimentRecord(
        experiment_id=experiment_id,
        paper_artifact=artifact,
        paper_claim=f"factors {gonzalez_bound:g} (Gonzalez) / {eps_bound:g} (1+eps solver)",
        rows=tuple(rows),
        summary={
            "worst_ratio_gonzalez": worst["gonzalez"],
            "worst_ratio_epsilon": worst["epsilon"],
            "bound_gonzalez": gonzalez_bound,
            "bound_epsilon": eps_bound,
            "within_bound": worst["gonzalez"] <= gonzalez_bound + 1e-9 and worst["epsilon"] <= eps_bound + 1e-9,
        },
    )


def run_e2_e3_restricted_expected_distance(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E2/E3 — Table 1 rows 2-3: restricted assigned, ED assignment."""
    return _run_restricted(settings or Table1Settings(), "expected-distance", ExpectedDistanceAssignment)


def run_e4_e5_restricted_expected_point(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E4/E5 — Table 1 rows 4-5: restricted assigned, EP assignment."""
    return _run_restricted(settings or Table1Settings(), "expected-point", ExpectedPointAssignment)


def _unrestricted_case(settings: Table1Settings, item) -> tuple[list[ExperimentRow], dict[str, float]]:
    dataset, spec = item
    reference = brute_force_unrestricted_assigned(dataset, settings.k, prune=settings.prune)
    lower_bound = assigned_cost_lower_bound(dataset, settings.k)
    denominator = max(min(reference.expected_cost, np.inf), lower_bound, 1e-12)
    rows = []
    worst = {"gonzalez": 0.0, "epsilon": 0.0}
    for solver in ("gonzalez", "epsilon"):
        result = solve_unrestricted_assigned(
            dataset, settings.k, assignment="expected-point", solver=solver, epsilon=settings.epsilon
        )
        ratio = result.expected_cost / denominator
        worst[solver] = max(worst[solver], ratio)
        rows.append(
            ExperimentRow(
                configuration=f"{spec.describe()} solver={solver}",
                measured={
                    "cost": result.expected_cost,
                    "unrestricted_reference": reference.expected_cost,
                    "lower_bound": lower_bound,
                    "ratio_vs_reference": ratio,
                    "guaranteed_factor": result.guaranteed_factor or float("nan"),
                },
            )
        )
    return rows, worst


def run_e6_e7_unrestricted_euclidean(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E6/E7 — Table 1 rows 6-7: unrestricted assigned, Euclidean."""
    settings = settings or Table1Settings()
    cases = parallel_map(
        _unrestricted_case,
        list(_euclidean_micro_workloads(settings)),
        payload=settings,
        workers=settings.workers,
    )
    rows = [row for case_rows, _ in cases for row in case_rows]
    worst = {"gonzalez": 0.0, "epsilon": 0.0}
    for _, case_worst in cases:
        for solver, ratio in case_worst.items():
            worst[solver] = max(worst[solver], ratio)
    return ExperimentRecord(
        experiment_id="E6/E7",
        paper_artifact="Table 1 rows 6-7 (unrestricted assigned, Euclidean)",
        paper_claim=f"factors 4 (Gonzalez) / {3 + settings.epsilon:g} (1+eps solver)",
        rows=tuple(rows),
        summary={
            "worst_ratio_gonzalez": worst["gonzalez"],
            "worst_ratio_epsilon": worst["epsilon"],
            "bound_gonzalez": 4.0,
            "bound_epsilon": 3.0 + settings.epsilon,
            "within_bound": worst["gonzalez"] <= 4.0 + 1e-9 and worst["epsilon"] <= 3.0 + settings.epsilon + 1e-9,
        },
    )


def _e8_case(settings: Table1Settings, trial: int) -> tuple[ExperimentRow, float]:
    dataset, spec = line_workload(
        n=settings.n_small,
        z=settings.z,
        segment_count=settings.k,
        seed=settings.seed + trial,
    )
    solution = wang_zhang_1d(dataset, settings.k)
    reference = brute_force_unrestricted_assigned(dataset, settings.k, prune=settings.prune)
    lower_bound = assigned_cost_lower_bound(dataset, settings.k)
    denominator = max(min(reference.expected_cost, np.inf), lower_bound, 1e-12)
    ratio = solution.expected_cost / denominator
    row = ExperimentRow(
        configuration=f"{spec.describe()} trial={trial}",
        measured={
            "wang_zhang_cost": solution.expected_cost,
            "unrestricted_reference": reference.expected_cost,
            "lower_bound": lower_bound,
            "ratio_vs_reference": ratio,
        },
    )
    return row, ratio


def run_e8_one_dimensional(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E8 — Table 1 row 8: R^1 unrestricted assigned via Theorem 2.3."""
    settings = settings or Table1Settings()
    cases = parallel_map(
        _e8_case, list(range(settings.trials)), payload=settings, workers=settings.workers
    )
    rows = [row for row, _ in cases]
    worst_ratio = max((ratio for _, ratio in cases), default=0.0)
    return ExperimentRecord(
        experiment_id="E8",
        paper_artifact="Table 1 row 8 (R^1, unrestricted assigned)",
        paper_claim=f"factor {RESTRICTED_ED_VS_UNRESTRICTED_FACTOR:g} (Theorem 2.3)",
        rows=tuple(rows),
        summary={
            "worst_ratio": worst_ratio,
            "bound": RESTRICTED_ED_VS_UNRESTRICTED_FACTOR,
            "within_bound": worst_ratio <= RESTRICTED_ED_VS_UNRESTRICTED_FACTOR + 1e-9,
        },
    )


def _e9_case(settings: Table1Settings, trial: int) -> tuple[list[ExperimentRow], dict[str, float]]:
    dataset, spec = graph_uncertain_workload(
        n=settings.n_small + 2,
        z=settings.z,
        node_count=24,
        seed=settings.seed + trial,
    )
    reference = brute_force_unrestricted_assigned(dataset, settings.k, prune=settings.prune)
    lower_bound = assigned_cost_lower_bound(dataset, settings.k)
    denominator = max(min(reference.expected_cost, np.inf), lower_bound, 1e-12)
    rows = []
    worst = {"one-center": 0.0, "expected-distance": 0.0}
    for assignment in ("one-center", "expected-distance"):
        result = solve_metric_unrestricted(dataset, settings.k, assignment=assignment)
        ratio = result.expected_cost / denominator
        worst[assignment] = max(worst[assignment], ratio)
        rows.append(
            ExperimentRow(
                configuration=f"{spec.describe()} assignment={assignment}",
                measured={
                    "cost": result.expected_cost,
                    "unrestricted_reference": reference.expected_cost,
                    "lower_bound": lower_bound,
                    "ratio_vs_reference": ratio,
                    "guaranteed_factor": result.guaranteed_factor or float("nan"),
                },
            )
        )
    return rows, worst


def run_e9_general_metric(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E9 — Table 1 row 9: unrestricted assigned in a general (graph) metric."""
    settings = settings or Table1Settings()
    cases = parallel_map(
        _e9_case, list(range(settings.trials)), payload=settings, workers=settings.workers
    )
    rows = [row for case_rows, _ in cases for row in case_rows]
    worst = {"one-center": 0.0, "expected-distance": 0.0}
    for _, case_worst in cases:
        for assignment, ratio in case_worst.items():
            worst[assignment] = max(worst[assignment], ratio)
    return ExperimentRecord(
        experiment_id="E9",
        paper_artifact="Table 1 row 9 (any metric, unrestricted assigned)",
        paper_claim="factor 3+2f (OC) / 5+2f (ED); 5+2eps / 7+2eps with a (1+eps) solver",
        rows=tuple(rows),
        summary={
            "worst_ratio_one_center": worst["one-center"],
            "worst_ratio_expected_distance": worst["expected-distance"],
            "bound_one_center_gonzalez": 3.0 + 2.0 * 2.0,
            "bound_expected_distance_gonzalez": 5.0 + 2.0 * 2.0,
            "within_bound": worst["one-center"] <= 7.0 + 1e-9 and worst["expected-distance"] <= 9.0 + 1e-9,
        },
    )


def _e10_case(settings: Table1Settings, item) -> tuple[ExperimentRow, bool]:
    trial, maker = item
    dataset, spec = maker(n=settings.n_medium, z=settings.z, dimension=2, seed=settings.seed + trial)
    ours = solve_unrestricted_assigned(dataset, settings.k, assignment="expected-point", solver="epsilon")
    gm = guha_munagala_baseline(dataset, settings.k)
    cm = cormode_mcgregor_baseline(dataset, settings.k)
    win = ours.expected_cost <= min(gm.expected_cost, cm.expected_cost) + 1e-12
    row = ExperimentRow(
        configuration=f"{spec.describe()}",
        measured={
            "paper_algorithm_cost": ours.expected_cost,
            "guha_munagala_style_cost": gm.expected_cost,
            "cormode_mcgregor_style_cost": cm.expected_cost,
            "improvement_vs_gm": gm.expected_cost / max(ours.expected_cost, 1e-12),
            "improvement_vs_cm": cm.expected_cost / max(ours.expected_cost, 1e-12),
        },
    )
    return row, win


def run_e10_baseline_comparison(settings: Table1Settings | None = None) -> ExperimentRecord:
    """E10 — abstract claim: improvement over prior constant-factor baselines."""
    settings = settings or Table1Settings()
    items = [
        (trial, maker)
        for trial in range(settings.trials)
        for maker in (gaussian_clusters, heavy_tailed)
    ]
    cases = parallel_map(_e10_case, items, payload=settings, workers=settings.workers)
    rows = [row for row, _ in cases]
    wins = sum(1 for _, win in cases if win)
    total = len(cases)
    return ExperimentRecord(
        experiment_id="E10",
        paper_artifact="Abstract / Section 4 (improvement over [14]; 15+eps -> 5+eps)",
        paper_claim="paper's algorithms should match or beat prior-style baselines",
        rows=tuple(rows),
        summary={"win_fraction": wins / max(total, 1)},
    )


def run_all_table1(settings: Table1Settings | None = None) -> Sequence[ExperimentRecord]:
    """Run every Table-1 experiment and return the records in order."""
    settings = settings or Table1Settings()
    return tuple(
        track_runtime_health(run, settings)
        for run in (
            run_e1_one_center,
            run_e2_e3_restricted_expected_distance,
            run_e4_e5_restricted_expected_point,
            run_e6_e7_unrestricted_euclidean,
            run_e8_one_dimensional,
            run_e9_general_metric,
            run_e10_baseline_comparison,
        )
    )
