"""Ground-truth expected costs by full realization enumeration.

These evaluators sum ``prob(R) * max_i d(...)`` over *every* realization of
the dataset.  They are exponential and exist purely to validate the
O(N log N) engine in :mod:`repro.cost.expected` and the Monte-Carlo
estimator; tests compare all three.
"""

from __future__ import annotations

from itertools import product
from typing import Sequence

import numpy as np

from .._validation import as_point_array
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.realization import iter_realizations


def enumerate_expected_max(
    values_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
    *,
    max_realizations: int | None = 200_000,
) -> float:
    """``E[max_i V_i]`` by enumerating the full product space.

    Exponential ground truth for the sorted-sweep kernel, used by the
    differential tests (including instances with explicit zero-probability
    support entries, which simply contribute zero-weight realizations).
    """
    n = len(values_per_point)
    if n == 0 or len(probabilities_per_point) != n:
        raise ValidationError("need matching, non-empty values and probabilities")
    values = [np.asarray(v, dtype=float).reshape(-1) for v in values_per_point]
    probabilities = [np.asarray(p, dtype=float).reshape(-1) for p in probabilities_per_point]
    realization_count = 1
    for support in values:
        realization_count *= support.shape[0]
    if max_realizations is not None and realization_count > max_realizations:
        raise ValidationError(
            f"enumeration would visit {realization_count} realizations; cap is {max_realizations}"
        )
    total = 0.0
    for combo in product(*[range(v.shape[0]) for v in values]):
        probability = 1.0
        maximum = -np.inf
        for variable, choice in enumerate(combo):
            probability *= probabilities[variable][choice]
            maximum = max(maximum, values[variable][choice])
        total += probability * maximum
    return total


def enumerate_expected_cost_unassigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    *,
    max_realizations: int | None = 200_000,
) -> float:
    """Unassigned expected cost by summing over every realization."""
    centers = as_point_array(centers, name="centers")
    metric = dataset.metric
    total = 0.0
    mass = 0.0
    for realization in iter_realizations(dataset, max_realizations=max_realizations):
        distances = metric.pairwise(realization.locations, centers).min(axis=1)
        total += realization.probability * float(distances.max())
        mass += realization.probability
    if not np.isclose(mass, 1.0, atol=1e-6):
        raise ValidationError(f"realization probabilities sum to {mass}, expected 1")
    return total


def enumerate_expected_cost_assigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
    *,
    max_realizations: int | None = 200_000,
) -> float:
    """Assigned expected cost by summing over every realization."""
    centers = as_point_array(centers, name="centers")
    assignment = np.asarray(assignment, dtype=int).reshape(-1)
    if assignment.shape[0] != dataset.size:
        raise ValidationError("assignment must have one entry per uncertain point")
    metric = dataset.metric
    total = 0.0
    mass = 0.0
    for realization in iter_realizations(dataset, max_realizations=max_realizations):
        assigned_centers = centers[assignment]
        distances = np.array(
            [
                metric.distance(realization.locations[i], assigned_centers[i])
                for i in range(dataset.size)
            ]
        )
        total += realization.probability * float(distances.max())
        mass += realization.probability
    if not np.isclose(mass, 1.0, atol=1e-6):
        raise ValidationError(f"realization probabilities sum to {mass}, expected 1")
    return total
