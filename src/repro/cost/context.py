"""Shared incremental cost-evaluation service for one (dataset, candidates) pair.

Every solver layer that scores more than one candidate configuration —
local-search assignment polish, threshold-greedy baselines, coordinate
descent, brute-force subset enumeration, the experiment sweeps — needs the
same ingredients: per-point distance supports to a fixed candidate set,
expected distances, and the exact ``E[max]`` kernel's per-candidate sorted
CDF columns.  Before this module each layer rebuilt (and often re-sorted)
those from scratch per candidate configuration via
:func:`repro.cost.expected.expected_cost_assigned`.

:class:`CostContext` is built **once per (dataset, candidate-centers) pair**
and caches:

* ``supports[i]`` — the ``(z_i, m)`` distance matrix from point ``i``'s
  locations to every candidate (pinned lazily on first batch use, then one
  metric call per point, ever);
* ``expected`` — the ``(n, m)`` expected-distance matrix (the ED assignment
  rule and the threshold-greedy baseline both argmin over it);
* the lazily built :class:`~repro.cost.expected.AssignedCostEvaluator` with
  its per-candidate sorted CDF columns (batch + incremental assigned costs);
* per-point *global value-rank tables* for the batched unassigned evaluator:
  every support entry's position in the point's value-sorted ``(z_i * m)``
  entry list, computed once.  A subset's min-reduced support is then
  recovered in sorted order from per-location rank minima, keyed on the
  precomputed per-candidate value order — the min-reduced float values
  themselves are never comparison-sorted per chunk (an integer rank sort of
  the same shape replaces it; the union sweep dominates either way).

The cached structure also powers the **admissible lower-bound kernels**
behind the branch-and-bound brute force
(:meth:`CostContext.subset_assigned_lower_bounds`,
:meth:`CostContext.subset_unassigned_lower_bounds`,
:meth:`CostContext.assignment_lower_bounds` — re-exported with their lemma
context by :mod:`repro.bounds.lower_bounds`): pure gathers/min-reductions
over the expected matrix and pinned supports, no sorts, so bounding a chunk
is an order of magnitude cheaper than exactly scoring it.

Consumers: :class:`repro.assignments.policies.OptimalAssignment`, the
``polish_assignment`` path of :mod:`repro.algorithms.unrestricted`, all four
baselines (:mod:`repro.baselines.brute_force`,
:mod:`repro.baselines.guha_munagala`, :mod:`repro.baselines.wang_zhang_1d`,
:mod:`repro.baselines.cormode_mcgregor`) and the ablation/sensitivity
experiment loops.  Rebuild the context whenever the dataset *or* the
candidate set changes; assignments and subsets over a fixed candidate set
never require a rebuild.  Two cheaper-than-rebuild paths exist for the
"candidates changed" case:

* when only *some* candidate rows changed,
  :meth:`CostContext.replace_candidate_columns` (in place) or
  :meth:`CostContext.with_candidates` (copy-on-write) splice the affected
  columns — one metric pass over the replacements and a re-sort of just
  those CDF columns (``wang_zhang_1d``'s coordinate descent runs on this);
* when the *same* pair recurs across calls,
  :class:`repro.runtime.store.ContextStore` memoizes whole contexts by
  content fingerprint (LRU-bounded; a changed dataset or candidate byte is
  a miss and rebuilds).

Contexts with their lazy caches materialized pickle cleanly, which is how
:mod:`repro.runtime.parallel` ships one fully built context to every worker
of a sharded brute-force enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_point_array
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset
from .expected import (
    AssignedCostEvaluator,
    LocalSearchSweep,
    _log_zero_deltas,
    _sweep_rows,
    _sweep_rows_presorted,
    expected_max_of_independent,
)

#: Rows per chunk pushed through the batched sweep kernels.
DEFAULT_CHUNK_ROWS = 2048

#: Internal row blocking of the rank-merge unassigned sweep.  The sweep is
#: cache-bound — a block's working set is several ``(B, sum_i z_i)`` arrays —
#: and 512 rows keeps it inside typical L2/L3 (measured ~40% faster than
#: 2048-row blocks).  Blocking never changes results (rows are independent);
#: callers' ``chunk_rows`` still caps the block as a memory bound.
RANK_MERGE_BLOCK_ROWS = 512


@dataclass
class _RankMergeTables:
    """Global value-rank structure behind the rank-merge unassigned sweep.

    ``values_by_rank[r]`` is the ``r``-th smallest support value across
    **all** points' entries (one stable argsort over the whole instance, ever)
    and each group stacks same-``z`` points' per-entry global ranks into one
    ``(g, z, m)`` integer array (plus the matching ``(g, z)`` probability
    rows), so the per-chunk min-reduction / CDF pass runs as a handful of 3-D
    kernel calls instead of one 2-D call per point.

    Because the global ranking is a stable sort over the same entry
    enumeration every per-point ranking uses, per-point relative orders are
    preserved: sorting a subset's per-location *global* rank minima yields
    exactly the entry order the historical per-row float sort produced — with
    unique integer keys, so the merge can use the default (unstable) sort and
    still be deterministic.
    """

    values_by_rank: np.ndarray
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]]  # (points, ranks, weights)


class CostContext:
    """Incremental exact-cost service for a fixed (dataset, candidates) pair."""

    def __init__(
        self,
        dataset: UncertainDataset,
        candidates: np.ndarray,
        *,
        pin_supports: bool = True,
    ) -> None:
        """``pin_supports=False`` keeps ``expected`` reads from caching the
        ``(z_i, m)`` support matrices — for expected-matrix-only consumers
        over huge candidate sets (the threshold-greedy baseline's
        ``m = sum_i z_i``), where pinning would cost ``O((sum_i z_i)^2)``
        memory.  Batch scoring still pins on first use either way."""
        candidates = as_point_array(candidates, name="candidates")
        self.dataset = dataset
        self.candidates = candidates
        self.probabilities = [point.probabilities for point in dataset.points]
        self._pin_supports = pin_supports
        self._supports: list[np.ndarray] | None = None
        self._evaluator: AssignedCostEvaluator | None = None
        self._expected: np.ndarray | None = None
        self._rank_tables: list[tuple[np.ndarray, np.ndarray]] | None = None
        self._rank_merge: _RankMergeTables | None = None
        #: True only on worker-side rebuilds of a float32-published context
        #: (``REPRO_CONTEXT_DTYPE=float32``): the cached tables carry float32
        #: precision, so chunk tasks must widen their prune margins and
        #: return survivor sets for exact float64 re-scoring instead of
        #: picking winners locally.  Parent-built contexts are always exact.
        self.float32 = False
        #: Float32 shadow of ``expected`` for bound gathers, present only on
        #: float32 worker rebuilds (``expected`` itself stays float64 there so
        #: argmin-based assignment selection is exact).
        self._expected32: np.ndarray | None = None
        #: Bumped on every in-place candidate mutation; shared-memory
        #: publications key on it so a spliced context is republished.
        self._version = 0

    # -- cached structure ---------------------------------------------------

    @property
    def size(self) -> int:
        """Number of uncertain points."""
        return self.dataset.size

    @property
    def candidate_count(self) -> int:
        return self.candidates.shape[0]

    @property
    def supports(self) -> list[np.ndarray]:
        """Per-point ``(z_i, m)`` distance matrices; pinned on first use.

        Consumers that never batch over assignments or subsets (e.g. the
        threshold-greedy baseline, which only needs ``expected`` plus one
        final score) never pay the ``O(sum_i z_i * m)`` memory.
        """
        if self._supports is None:
            metric = self.dataset.metric
            self._supports = [
                metric.pairwise(point.locations, self.candidates) for point in self.dataset.points
            ]
        return self._supports

    @property
    def evaluator(self) -> AssignedCostEvaluator:
        """Per-candidate sorted CDF columns; built lazily, sorted once."""
        if self._evaluator is None:
            self._evaluator = AssignedCostEvaluator(self.supports, self.probabilities)
        return self._evaluator

    @property
    def expected(self) -> np.ndarray:
        """``(n, m)`` matrix of ``E[d(P_i, candidates[c])]``.

        Derived from the pinned supports (pinning them on first access, so a
        later batch scorer reuses the same metric pass) unless the context
        was built with ``pin_supports=False``, in which case it is streamed
        one point at a time and keeps ``O(n m)`` memory.
        """
        if self._expected is None:
            if self._pin_supports or self._supports is not None:
                self._expected = np.vstack(
                    [
                        probabilities @ support
                        for probabilities, support in zip(self.probabilities, self.supports)
                    ]
                )
            else:
                metric = self.dataset.metric
                self._expected = np.vstack(
                    [
                        point.probabilities @ metric.pairwise(point.locations, self.candidates)
                        for point in self.dataset.points
                    ]
                )
        return self._expected

    def _ranks(self) -> list[tuple[np.ndarray, np.ndarray]]:
        """Per point: ``(ranks, values_by_rank)`` over all ``z_i * m`` entries.

        ``ranks[j, c]`` is the position of entry ``(location j, candidate c)``
        in the point's value-sorted flat entry list, and
        ``values_by_rank[r]`` the value at position ``r`` — the key that lets
        subset min-reductions come out presorted.
        """
        if self._rank_tables is None:
            tables = []
            for support in self.supports:
                flat = support.ravel()
                order = np.argsort(flat, kind="stable")
                ranks = np.empty(flat.shape[0], dtype=np.int64)
                ranks[order] = np.arange(flat.shape[0])
                tables.append((ranks.reshape(support.shape), flat[order]))
            self._rank_tables = tables
        return self._rank_tables

    def _rank_merge_tables(self) -> _RankMergeTables:
        """Global rank tables for the rank-merge unassigned sweep; built once.

        One stable argsort over the flattened entries of *every* point yields
        a global value order; each entry's position in it is its global rank.
        Ranks are grouped by support size so the per-chunk work runs as 3-D
        kernels (the same same-``z`` grouping trick
        :meth:`AssignedCostEvaluator.replace_candidate_columns` uses).
        """
        if self._rank_merge is None:
            supports = self.supports
            flat = np.concatenate([support.ravel() for support in supports])
            order = np.argsort(flat, kind="stable")
            values_by_rank = flat[order]
            dtype = np.int32 if flat.shape[0] < 2**31 else np.int64
            ranks_flat = np.empty(flat.shape[0], dtype=dtype)
            ranks_flat[order] = np.arange(flat.shape[0], dtype=dtype)
            per_point = []
            offset = 0
            for support in supports:
                per_point.append(ranks_flat[offset : offset + support.size].reshape(support.shape))
                offset += support.size
            by_size: dict[int, list[int]] = {}
            for index, ranks in enumerate(per_point):
                by_size.setdefault(ranks.shape[0], []).append(index)
            groups = []
            for indices in by_size.values():
                groups.append(
                    (
                        np.asarray(indices, dtype=int),
                        np.stack([per_point[i] for i in indices]),
                        np.stack([self.probabilities[i] for i in indices]),
                    )
                )
            self._rank_merge = _RankMergeTables(values_by_rank=values_by_rank, groups=groups)
        return self._rank_merge

    # -- incremental candidate updates --------------------------------------

    def _new_support_blocks(self, new_candidates: np.ndarray) -> list[np.ndarray]:
        """Per-point ``(z_i, C)`` distance blocks to the replacement candidates.

        One metric call over the stacked locations instead of one per point.
        """
        metric = self.dataset.metric
        stacked = metric.pairwise(self.dataset.all_locations(), new_candidates)
        blocks = []
        offset = 0
        for point in self.dataset.points:
            blocks.append(stacked[offset : offset + point.support_size])
            offset += point.support_size
        return blocks

    def replace_candidate_columns(self, columns: np.ndarray, new_candidates: np.ndarray) -> None:
        """Swap ``candidates[columns]`` for ``new_candidates``, splicing caches.

        Everything already materialized is updated incrementally instead of
        rebuilt: the pinned support matrices get new columns from one metric
        pass, the expected matrix new dot products for those columns only,
        and the evaluator re-sorts just the replaced CDF columns
        (:meth:`AssignedCostEvaluator.replace_candidate_columns`).  The
        unassigned rank tables are global per point, so they are invalidated
        and rebuilt lazily on the next unassigned query.

        This is what lets ``wang_zhang_1d``'s coordinate descent keep one
        context per start and splice the moving grid/center columns per sweep
        instead of constructing a fresh context every sweep.
        """
        columns = np.asarray(columns, dtype=int).reshape(-1)
        new_candidates = as_point_array(new_candidates, name="new_candidates")
        if columns.size == 0:
            return
        if columns.min() < 0 or columns.max() >= self.candidate_count:
            raise ValidationError("candidate column index out of range")
        if np.unique(columns).shape[0] != columns.shape[0]:
            raise ValidationError("replacement column indices must be distinct")
        if new_candidates.shape != (columns.shape[0], self.candidates.shape[1]):
            raise ValidationError(
                f"new_candidates must have shape ({columns.shape[0]}, {self.candidates.shape[1]})"
            )
        self.candidates = self.candidates.copy()
        self.candidates[columns] = new_candidates
        needs_supports = (
            self._supports is not None or self._evaluator is not None or self._expected is not None
        )
        if not needs_supports:
            return
        blocks = self._new_support_blocks(new_candidates)
        if self._supports is not None:
            for support, block in zip(self._supports, blocks):
                support[:, columns] = block
        if self._expected is not None:
            for row, (probabilities, block) in enumerate(zip(self.probabilities, blocks)):
                self._expected[row, columns] = probabilities @ block
        if self._evaluator is not None:
            self._evaluator.replace_candidate_columns(columns, blocks)
        self._rank_tables = None
        self._rank_merge = None
        self._expected32 = None
        self._version += 1

    def with_candidates(self, new_candidates: np.ndarray) -> "CostContext":
        """A context over ``new_candidates`` reusing every unchanged column.

        When the new set has the same shape as the current one, the cached
        structure is cloned and only the differing columns are spliced via
        :meth:`replace_candidate_columns`; a changed shape falls back to a
        fresh build.  Returns ``self`` unchanged when nothing differs.
        """
        new_candidates = as_point_array(new_candidates, name="new_candidates")
        if new_candidates.shape != self.candidates.shape:
            return CostContext(self.dataset, new_candidates, pin_supports=self._pin_supports)
        changed = np.flatnonzero(np.any(new_candidates != self.candidates, axis=1))
        if changed.shape[0] == 0:
            return self
        twin = CostContext.__new__(CostContext)
        twin.dataset = self.dataset
        twin.candidates = self.candidates
        twin.probabilities = self.probabilities
        twin._pin_supports = self._pin_supports
        twin._supports = (
            None if self._supports is None else [support.copy() for support in self._supports]
        )
        twin._evaluator = None if self._evaluator is None else self._evaluator.clone()
        twin._expected = None if self._expected is None else self._expected.copy()
        twin._rank_tables = None
        twin._rank_merge = None
        twin.float32 = False
        twin._expected32 = None
        twin._version = 0
        twin.replace_candidate_columns(changed, new_candidates[changed])
        return twin

    # -- assigned objective -------------------------------------------------

    def assigned_cost(self, candidate_indices: np.ndarray) -> float:
        """Exact assigned cost when point ``i`` goes to ``candidate_indices[i]``.

        Scoring a single assignment never *forces* the evaluator build: when
        the per-candidate sorted columns are not pinned yet, the ``k``
        assigned columns are scored directly (distances to the assigned
        candidates only), which keeps one-shot consumers at ``O(n z)`` work.
        """
        candidate_indices = np.asarray(candidate_indices, dtype=int).reshape(-1)
        if self._evaluator is not None:
            return self._evaluator.cost(candidate_indices)
        if candidate_indices.shape[0] != self.size:
            raise ValidationError("assignment must have one entry per uncertain point")
        if candidate_indices.size and (
            candidate_indices.min() < 0 or candidate_indices.max() >= self.candidate_count
        ):
            raise ValidationError("candidate index out of range")
        if self._supports is not None:
            values = [
                support[:, column]
                for support, column in zip(self._supports, candidate_indices)
            ]
        else:
            metric = self.dataset.metric
            values = [
                metric.pairwise(point.locations, self.candidates[column : column + 1]).reshape(-1)
                for point, column in zip(self.dataset.points, candidate_indices)
            ]
        return expected_max_of_independent(values, self.probabilities)

    def assigned_costs(
        self, candidate_index_rows: np.ndarray, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> np.ndarray:
        """Exact assigned costs for a ``(B, n)`` batch of assignments."""
        return self.evaluator.costs(candidate_index_rows, chunk_rows=chunk_rows)

    def local_search_sweep(self, candidate_indices: np.ndarray) -> LocalSearchSweep:
        """Round-amortized single-point-move machinery over this context."""
        return self.evaluator.local_search_sweep(candidate_indices)

    # -- restricted assignment rules over candidate subsets -----------------

    def ed_assignment(self, subset: tuple[int, ...] | np.ndarray) -> np.ndarray:
        """Expected-distance assignment restricted to the subset's candidates."""
        columns = np.asarray(subset, dtype=int)
        local = self.expected[:, columns].argmin(axis=1)
        return columns[local]

    def ed_assignments(self, subset_rows: np.ndarray) -> np.ndarray:
        """Expected-distance assignments for a ``(B, kk)`` batch of subsets."""
        return self.score_assignments(self.expected, subset_rows)

    def score_assignments(self, scores: np.ndarray, subset_rows: np.ndarray) -> np.ndarray:
        """Per-subset argmin assignments for any ``(n, m)`` score matrix.

        This is the batched form of every "assign to the candidate minimising
        a per-(point, candidate) score" rule (ED, EP, OC, nearest-mode);
        policies expose their matrix via
        :meth:`repro.assignments.base.AssignmentPolicy.candidate_scores`.
        """
        subset_rows = np.atleast_2d(np.asarray(subset_rows, dtype=int))
        if scores.shape != (self.size, self.candidate_count):
            raise ValidationError(
                f"score matrix must be (n, m) = ({self.size}, {self.candidate_count})"
            )
        local = scores[:, subset_rows].argmin(axis=2)  # (n, B)
        return np.take_along_axis(subset_rows, local.T, axis=1)  # (B, n)

    # -- unassigned objective ------------------------------------------------

    def unassigned_cost(self, subset: tuple[int, ...] | np.ndarray) -> float:
        """Exact unassigned cost of one candidate subset."""
        return float(self.unassigned_costs(np.atleast_2d(np.asarray(subset, dtype=int)))[0])

    def _check_subset_rows(self, subset_rows: np.ndarray) -> np.ndarray:
        subset_rows = np.atleast_2d(np.asarray(subset_rows, dtype=int))
        if subset_rows.size and (
            subset_rows.min() < 0 or subset_rows.max() >= self.candidate_count
        ):
            raise ValidationError("candidate index out of range")
        if subset_rows.shape[1] == 0:
            raise ValidationError("subsets must contain at least one candidate")
        return subset_rows

    def unassigned_costs(
        self, subset_rows: np.ndarray, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> np.ndarray:
        """Exact unassigned costs for a ``(B, kk)`` batch of candidate subsets.

        The rank-merge sweep: every support entry's position in the globally
        value-sorted entry list is precomputed once
        (:meth:`_rank_merge_tables`), so for each point a subset's min-reduced
        support is the per-location minimum of *global* ranks, and the union
        of all points' entries comes out in value order by sorting those
        integer ranks — the min-reduced float values are never
        comparison-sorted per row.  The rank keys are distinct (the global
        ranking is a permutation), so the unstable default sort yields the
        exact entry order the historical per-row float sort produced and the
        sweep is bit-identical to :meth:`_unassigned_costs_float_sort`.

        Per-point work runs as same-``z`` grouped 3-D kernels instead of one
        2-D call per point, and each group's sort carries its location index
        in the key's low bits (``rank << shift | location``) so one in-place
        integer sort replaces the argsort-then-gather pair; the location
        bits come back out with a mask to index the probability rows.  The
        low bits never reorder anything — ranks are distinct, so the packed
        order *is* the rank order.
        """
        subset_rows = self._check_subset_rows(subset_rows)
        batch = subset_rows.shape[0]
        tables = self._rank_merge_tables()
        n = self.size
        groups = []
        for _, ranks, weights in tables.groups:
            g, z, _ = ranks.shape
            shift = max(1, int(z - 1).bit_length())
            dtype = (
                np.int32
                if (tables.values_by_rank.shape[0] << shift) < 2**31
                else np.int64
            )
            groups.append((ranks, weights, z, shift, dtype, np.arange(z, dtype=dtype)))
        total_z = sum(weights.shape[0] * weights.shape[1] for _, _, weights in tables.groups)
        block_rows = max(1, min(int(chunk_rows), RANK_MERGE_BLOCK_ROWS))
        out = np.empty(batch)
        for start in range(0, batch, block_rows):
            rows = subset_rows[start : start + block_rows]
            width = rows.shape[0]
            merged_ranks = np.empty((width, total_z), dtype=np.int64)
            log_delta = np.empty((width, total_z))
            zero_delta = np.empty((width, total_z), dtype=np.int32)
            column = 0
            for ranks, weights, z, shift, dtype, locations in groups:
                g = ranks.shape[0]
                span = g * z
                # (B, g, z): per-location global-rank minimum over the subset.
                rank_min = ranks[:, :, rows].min(axis=3).transpose(2, 0, 1)
                packed = (rank_min.astype(dtype) << shift) | locations
                packed.sort(axis=2)  # repro: noqa[FLOAT-SORT-HOTPATH] -- this IS the rank merge: bit-packed integer keys (global rank << shift | location), no float comparisons
                location = packed & ((1 << shift) - 1)
                sorted_probabilities = weights[np.arange(g)[None, :, None], location]
                cdf_after = np.cumsum(sorted_probabilities, axis=2)
                positive = cdf_after > 0.0
                log_after = np.where(positive, np.log(np.where(positive, cdf_after, 1.0)), 0.0)
                log_block = log_after.copy()
                log_block[:, :, 1:] -= log_after[:, :, :-1]
                zero_block = np.zeros((width, g, z), dtype=np.int32)
                zero_block[:, :, 0] -= positive[:, :, 0]
                zero_block[:, :, 1:] -= positive[:, :, 1:] & ~positive[:, :, :-1]
                merged_ranks[:, column : column + span] = (packed >> shift).reshape(width, span)
                log_delta[:, column : column + span] = log_block.reshape(width, span)
                zero_delta[:, column : column + span] = zero_block.reshape(width, span)
                column += span
            final = np.argsort(merged_ranks, axis=1)  # distinct keys: unstable ok
            sorted_values = tables.values_by_rank[np.take_along_axis(merged_ranks, final, axis=1)]
            out[start : start + width] = _sweep_rows_presorted(
                sorted_values,
                np.take_along_axis(log_delta, final, axis=1),
                np.take_along_axis(zero_delta, final, axis=1),
                n,
            )
        return out

    # -- admissible lower bounds (branch-and-bound pruning) ------------------

    def subset_assigned_lower_bounds(self, subset_rows: np.ndarray) -> np.ndarray:
        """``(B,)`` lower bounds on the assigned cost of candidate subsets.

        For any assignment ``A`` into subset ``S`` (any rule — ED, EP, OC,
        nearest-mode, black-box local search):

        ``EcostA(S) = E[max_i d(P_i, A(i))] >= max_i E[d(P_i, A(i))]
        >= max_i min_{c in S} E[d(P_i, c)]``

        — the per-point Lemma 3.2 argument applied subset-wise, so the bound
        is admissible for *every* restricted assignment rule at once.  Reads
        only the cached ``(n, m)`` expected-distance matrix: one gather, one
        min-reduce, one max-reduce per chunk, no sorts and no new memory
        beyond the ``(n, B, kk)`` gather.
        """
        subset_rows = self._check_subset_rows(subset_rows)
        table = self._expected32 if self._expected32 is not None else self.expected
        return table[:, subset_rows].min(axis=2).max(axis=0)

    def subset_unassigned_lower_bounds(self, subset_rows: np.ndarray) -> np.ndarray:
        """``(B,)`` lower bounds on the unassigned cost of candidate subsets.

        ``E[max_i min_{c in S} d(P_i, c)] >= max_i E[min_{c in S} d(P_i, c)]``
        (the max of a realization dominates every point's own min-distance,
        then take expectations).  Note the assigned-style bound built on
        ``min_c E[d]`` would *not* be admissible here — ``E[min] <= min E``
        — so this kernel min-reduces the pinned supports before the
        probability dot product.  No sorts; the full union sweep the bound
        replaces is what makes pruned rows cheap.
        """
        subset_rows = self._check_subset_rows(subset_rows)
        best: np.ndarray | None = None
        for support, probabilities in zip(self.supports, self.probabilities):
            reduced = support[:, subset_rows].min(axis=2)  # (z_i, B)
            bounds = probabilities @ reduced
            best = bounds if best is None else np.maximum(best, bounds, out=best)
        assert best is not None
        return best

    def subset_pair_lower_bounds(self, subset_rows: np.ndarray) -> np.ndarray:
        """``(B,)`` second-level bounds: the two-point max of per-point minima.

        Admissible for both objectives: with ``m_i(x) = min_{c in S} d(x, c)``
        any solution over ``S`` costs at least ``max(m_i(X_i), m_j(X_j))``
        realization-wise (the unassigned cost is the max over *all* points'
        minima; a restricted assignment satisfies ``d(P_i, A(P_i)) >= m_i``
        pointwise), so ``cost(S) >= E[max(m_i(X_i), m_j(X_j))]`` for every
        pair ``(i, j)`` — the kernel picks the two points with the largest
        ``E[m_i]`` and evaluates the pair expectation exactly via the
        product distribution (point independence).  Jensen gives
        ``E[max(Y, Z)] >= max(E[Y], E[Z])``, so this always dominates the
        unassigned first-level bound; it is *incomparable* with the assigned
        first-level bound (``E[m_i] <= min_c E[d(P_i, c)]``), which is why
        :meth:`subset_two_level_lower_bounds` maxes the levels.

        Two passes: a per-point min-reduce/dot for the ``(n, B)`` expected
        minima (the same gather the unassigned bound runs), then one
        outer-max expectation per *distinct* top pair — chunked enumerations
        share a handful of pairs, so the quadratic-in-``z`` part runs a few
        times per chunk, not per subset.
        """
        subset_rows = self._check_subset_rows(subset_rows)
        batch = subset_rows.shape[0]
        n = self.size
        if n < 2 or batch == 0:
            return np.zeros(batch)
        supports = self.supports
        expected_minima = np.empty((n, batch))
        for i, (support, weight) in enumerate(zip(supports, self.probabilities)):
            expected_minima[i] = weight @ support[:, subset_rows].min(axis=2)
        top_two = np.argpartition(expected_minima, n - 2, axis=0)[n - 2 :]
        first = np.minimum(top_two[0], top_two[1])
        second = np.maximum(top_two[0], top_two[1])
        pair_keys = first * n + second
        out = np.empty(batch)
        for key in np.unique(pair_keys):
            mask = pair_keys == key
            i, j = int(key) // n, int(key) % n
            rows = subset_rows[mask]
            reduced_i = supports[i][:, rows].min(axis=2)  # (z_i, Bg)
            reduced_j = supports[j][:, rows].min(axis=2)  # (z_j, Bg)
            pairwise_max = np.maximum(reduced_i[:, None, :], reduced_j[None, :, :])
            out[mask] = np.einsum(
                "i,j,ijb->b", self.probabilities[i], self.probabilities[j], pairwise_max
            )
        return out

    def subset_two_level_lower_bounds(
        self, subset_rows: np.ndarray, *, objective: str = "assigned"
    ) -> np.ndarray:
        """``(B,)`` elementwise max of the first-level and pair bounds.

        Each level is individually admissible for the named objective
        (:meth:`subset_assigned_lower_bounds` /
        :meth:`subset_unassigned_lower_bounds` and
        :meth:`subset_pair_lower_bounds`), so the pointwise max is too —
        this is the bound the best-first scheduler orders chunks by.
        """
        if objective == "assigned":
            level1 = self.subset_assigned_lower_bounds(subset_rows)
        elif objective == "unassigned":
            level1 = self.subset_unassigned_lower_bounds(subset_rows)
        else:
            raise ValidationError(f"unknown bound objective {objective!r}")
        return np.maximum(level1, self.subset_pair_lower_bounds(subset_rows))

    def assignment_lower_bounds(self, candidate_index_rows: np.ndarray) -> np.ndarray:
        """``(B,)`` lower bounds on the assigned cost of explicit assignments.

        Admissible by Jensen applied to the max:
        ``E[max_i d(P_i, A(i))] >= max_i E[d(P_i, A(i))]`` — one gather from
        the cached expected matrix and a row max.  This is the per-row form
        the exhaustive-assignment enumeration prunes on (its prefix bound is
        the same quantity with unassigned points relaxed to their subset
        minimum).
        """
        candidate_index_rows = np.atleast_2d(np.asarray(candidate_index_rows, dtype=int))
        if candidate_index_rows.shape[1] != self.size:
            raise ValidationError("assignment rows must have one entry per uncertain point")
        return self.expected[
            np.arange(self.size)[None, :], candidate_index_rows
        ].max(axis=1)

    def _unassigned_costs_float_sort(
        self, subset_rows: np.ndarray, *, chunk_rows: int = DEFAULT_CHUNK_ROWS
    ) -> np.ndarray:
        """The historical per-row float-sort sweep, kept as the reference.

        Differential tests pin :meth:`unassigned_costs` bit-identical to this
        implementation, and the ``unassigned_rank_merge`` benchmark case
        measures the rank merge against it.
        """
        subset_rows = self._check_subset_rows(subset_rows)
        batch = subset_rows.shape[0]
        tables = self._ranks()
        out = np.empty(batch)
        for start in range(0, batch, chunk_rows):
            rows = subset_rows[start : start + chunk_rows]
            value_blocks = []
            log_blocks = []
            zero_blocks = []
            for (ranks, values_by_rank), weight in zip(tables, self.probabilities):
                min_rank = ranks[:, rows].min(axis=2).T  # (B, z_i)
                order = np.argsort(min_rank, axis=1, kind="stable")
                sorted_values = values_by_rank[np.take_along_axis(min_rank, order, axis=1)]
                sorted_probabilities = weight[order]
                cdf_after = np.cumsum(sorted_probabilities, axis=1)
                cdf_before = np.concatenate(
                    [np.zeros((rows.shape[0], 1)), cdf_after[:, :-1]], axis=1
                )
                log_delta, zero_delta = _log_zero_deltas(cdf_after, cdf_before)
                value_blocks.append(sorted_values)
                log_blocks.append(log_delta)
                zero_blocks.append(zero_delta)
            out[start : start + rows.shape[0]] = _sweep_rows(
                np.concatenate(value_blocks, axis=1),
                np.concatenate(log_blocks, axis=1),
                np.concatenate(zero_blocks, axis=1),
                len(tables),
            )
        return out


def cost_context(dataset: UncertainDataset, candidates: np.ndarray) -> CostContext:
    """Build the shared :class:`CostContext` for ``(dataset, candidates)``."""
    return CostContext(dataset, candidates)
