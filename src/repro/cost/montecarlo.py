"""Monte-Carlo estimation of the expected k-center costs.

The exact engine in :mod:`repro.cost.expected` is preferred everywhere (it is
both exact and fast), but the Monte-Carlo estimator is useful for
cross-checking, for plugging in arbitrary per-realization cost functions and
for stress tests on very large supports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_point_array, as_rng, check_positive_int
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset


@dataclass(frozen=True)
class MonteCarloEstimate:
    """An estimate with its standard error and a 95% confidence interval."""

    value: float
    standard_error: float
    samples: int

    @property
    def confidence_interval(self) -> tuple[float, float]:
        """Normal-approximation 95% confidence interval.

        The k-center cost objectives are non-negative (they are expectations
        of distances), so the lower endpoint is clamped at 0 rather than
        reporting an impossible negative cost.
        """
        half_width = 1.96 * self.standard_error
        return max(0.0, self.value - half_width), self.value + half_width

    def within(self, other: float, *, sigmas: float = 4.0) -> bool:
        """Whether ``other`` lies within ``sigmas`` standard errors."""
        return abs(other - self.value) <= sigmas * max(self.standard_error, 1e-12)


def _estimate(costs: np.ndarray) -> MonteCarloEstimate:
    samples = costs.shape[0]
    value = float(costs.mean())
    spread = float(costs.std(ddof=1)) if samples > 1 else 0.0
    return MonteCarloEstimate(value=value, standard_error=spread / np.sqrt(samples), samples=samples)


def monte_carlo_cost_unassigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    *,
    samples: int = 10_000,
    rng: int | np.random.Generator | None = 0,
) -> MonteCarloEstimate:
    """Estimate the unassigned expected cost from sampled realizations."""
    check_positive_int(samples, name="samples")
    centers = as_point_array(centers, name="centers")
    generator = as_rng(rng)
    metric = dataset.metric
    # Precompute, per uncertain point, the distance of each of its locations
    # to the nearest center; then sampling reduces to an index lookup.
    per_point_values = [
        metric.pairwise(point.locations, centers).min(axis=1) for point in dataset.points
    ]
    costs = np.zeros(samples)
    for point, values in zip(dataset.points, per_point_values):
        indices = generator.choice(point.support_size, p=point.probabilities, size=samples)
        np.maximum(costs, values[indices], out=costs)
    return _estimate(costs)


def monte_carlo_cost_assigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
    *,
    samples: int = 10_000,
    rng: int | np.random.Generator | None = 0,
) -> MonteCarloEstimate:
    """Estimate the assigned expected cost from sampled realizations."""
    check_positive_int(samples, name="samples")
    centers = as_point_array(centers, name="centers")
    assignment = np.asarray(assignment, dtype=int).reshape(-1)
    if assignment.shape[0] != dataset.size:
        raise ValidationError("assignment must have one entry per uncertain point")
    generator = as_rng(rng)
    metric = dataset.metric
    per_point_values = [
        metric.pairwise(point.locations, centers[assignment[i] : assignment[i] + 1]).reshape(-1)
        for i, point in enumerate(dataset.points)
    ]
    costs = np.zeros(samples)
    for point, values in zip(dataset.points, per_point_values):
        indices = generator.choice(point.support_size, p=point.probabilities, size=samples)
        np.maximum(costs, values[indices], out=costs)
    return _estimate(costs)
