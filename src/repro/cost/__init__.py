"""Expected-cost engines: exact O(N log N), batch/incremental, enumeration, Monte-Carlo.

The exact engine handles zero-probability support entries correctly (they
contribute no mass; see :mod:`repro.cost.expected` for the semantics) and
offers three evaluation shapes: scalar (:func:`expected_max_of_independent`),
batched over assignments or value rows (:func:`expected_max_batch`,
:func:`expected_max_batch_values`) and incremental single-point moves
(:class:`AssignedCostEvaluator`).
"""

from .enumeration import (
    enumerate_expected_cost_assigned,
    enumerate_expected_cost_unassigned,
    enumerate_expected_max,
)
from .expected import (
    AssignedCostEvaluator,
    RestProfile,
    assigned_cost_evaluator,
    distance_supports_for_assignment,
    distance_supports_for_centers,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_distance,
    expected_distance_matrix,
    expected_max_batch,
    expected_max_batch_values,
    expected_max_of_independent,
    expected_one_center_cost,
)
from .montecarlo import MonteCarloEstimate, monte_carlo_cost_assigned, monte_carlo_cost_unassigned

__all__ = [
    "expected_max_of_independent",
    "expected_max_batch",
    "expected_max_batch_values",
    "AssignedCostEvaluator",
    "RestProfile",
    "assigned_cost_evaluator",
    "expected_cost_assigned",
    "expected_cost_unassigned",
    "expected_distance",
    "expected_distance_matrix",
    "expected_one_center_cost",
    "distance_supports_for_assignment",
    "distance_supports_for_centers",
    "enumerate_expected_cost_assigned",
    "enumerate_expected_cost_unassigned",
    "enumerate_expected_max",
    "MonteCarloEstimate",
    "monte_carlo_cost_assigned",
    "monte_carlo_cost_unassigned",
]
