"""Expected-cost engines and the shared cost-evaluation service.

Exact kernel (:mod:`repro.cost.expected`)
    ``E[max]`` of independent discrete distances in ``O(N log N)`` with
    correct zero-probability semantics, in three evaluation shapes: scalar
    (:func:`expected_max_of_independent`), batched over assignments or value
    rows (:func:`expected_max_batch`, :func:`expected_max_batch_values`) and
    incremental single-point moves (:class:`AssignedCostEvaluator` +
    :class:`LocalSearchSweep`).

Shared service (:mod:`repro.cost.context`)
    :class:`CostContext` — built **once per (dataset, candidate-centers)
    pair** — caches what every solver layer re-derives otherwise:

    * per-point ``(z_i, m)`` distance supports (one metric call per point);
    * the ``(n, m)`` expected-distance matrix (ED-style argmin rules);
    * per-candidate sorted CDF columns inside a lazily built
      :class:`AssignedCostEvaluator` for batch/incremental *assigned* costs;
    * per-point global value-rank tables for the batched *unassigned*
      evaluator, which recovers each subset's min-reduced support in value
      order from integer ranks instead of re-sorting the float values per
      chunk.

    Rebuild the context when the dataset or candidate set changes; new
    assignments, subsets or local-search rounds over the same candidates
    reuse the cached structure.  Consumers: ``OptimalAssignment``, the
    ``polish_assignment`` path of the unrestricted solver, all four
    baselines, and the ablation/sensitivity experiment loops.

Reference engines
    Full realization enumeration (:mod:`repro.cost.enumeration`) and
    Monte-Carlo estimation (:mod:`repro.cost.montecarlo`) validate the exact
    kernel in the test suite.
"""

from .context import CostContext, cost_context
from .enumeration import (
    enumerate_expected_cost_assigned,
    enumerate_expected_cost_unassigned,
    enumerate_expected_max,
)
from .expected import (
    AssignedCostEvaluator,
    LocalSearchSweep,
    RestProfile,
    assigned_cost_evaluator,
    distance_supports_for_assignment,
    distance_supports_for_centers,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_distance,
    expected_distance_matrix,
    expected_max_batch,
    expected_max_batch_values,
    expected_max_of_independent,
    expected_one_center_cost,
)
from .montecarlo import MonteCarloEstimate, monte_carlo_cost_assigned, monte_carlo_cost_unassigned

__all__ = [
    "expected_max_of_independent",
    "expected_max_batch",
    "expected_max_batch_values",
    "AssignedCostEvaluator",
    "LocalSearchSweep",
    "RestProfile",
    "CostContext",
    "cost_context",
    "assigned_cost_evaluator",
    "expected_cost_assigned",
    "expected_cost_unassigned",
    "expected_distance",
    "expected_distance_matrix",
    "expected_one_center_cost",
    "distance_supports_for_assignment",
    "distance_supports_for_centers",
    "enumerate_expected_cost_assigned",
    "enumerate_expected_cost_unassigned",
    "enumerate_expected_max",
    "MonteCarloEstimate",
    "monte_carlo_cost_assigned",
    "monte_carlo_cost_unassigned",
]
