"""Expected-cost engines: exact O(N log N), enumeration, Monte-Carlo."""

from .enumeration import enumerate_expected_cost_assigned, enumerate_expected_cost_unassigned
from .expected import (
    distance_supports_for_assignment,
    distance_supports_for_centers,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_distance,
    expected_distance_matrix,
    expected_max_of_independent,
    expected_one_center_cost,
)
from .montecarlo import MonteCarloEstimate, monte_carlo_cost_assigned, monte_carlo_cost_unassigned

__all__ = [
    "expected_max_of_independent",
    "expected_cost_assigned",
    "expected_cost_unassigned",
    "expected_distance",
    "expected_distance_matrix",
    "expected_one_center_cost",
    "distance_supports_for_assignment",
    "distance_supports_for_centers",
    "enumerate_expected_cost_assigned",
    "enumerate_expected_cost_unassigned",
    "MonteCarloEstimate",
    "monte_carlo_cost_assigned",
    "monte_carlo_cost_unassigned",
]
