"""Exact expected-cost computation for uncertain k-center objectives.

The paper's objectives are expectations of a maximum over *independent*
per-point random distances:

* assigned cost: ``EcostA(C) = E[ max_i d(X_i, A(P_i)) ]`` where each
  ``d(X_i, A(P_i))`` is a discrete random variable with support
  ``{d(P_ij, A(P_i))}_j`` and probabilities ``p_ij``;
* unassigned cost: ``Ecost(C) = E[ max_i d(X_i, C) ]`` where the support is
  ``{min_c d(P_ij, c)}_j``.

Although the probability space has ``prod_i z_i`` realizations, the expected
maximum of independent discrete random variables is computable exactly in
``O(N log N)`` time for ``N = sum_i z_i`` total locations:

``E[max] = sum_v v * (F(v) - F(v^-))`` over the sorted union of supports,
with ``F(v) = prod_i F_i(v)`` the CDF of the maximum.  We sweep the sorted
values while maintaining each point's partial CDF and the product of the
CDFs (tracking zero factors separately and the non-zero product in log space
for numerical robustness).

This engine is the workhorse every solver, baseline and experiment uses to
report costs, and it is validated against full realization enumeration in the
test suite.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_point_array
from ..exceptions import ValidationError
from ..metrics.base import Metric
from ..uncertain.dataset import UncertainDataset


def expected_max_of_independent(
    values_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
) -> float:
    """Exact ``E[max_i V_i]`` for independent non-negative discrete variables.

    Parameters
    ----------
    values_per_point:
        ``values_per_point[i]`` is the support of variable ``i``.
    probabilities_per_point:
        Matching probabilities, each summing to one.

    Notes
    -----
    Runs in ``O(N log N)`` for ``N`` total support points.  Values may repeat
    within and across variables.
    """
    n = len(values_per_point)
    if n == 0:
        raise ValidationError("expected_max_of_independent needs at least one variable")
    if len(probabilities_per_point) != n:
        raise ValidationError("values and probabilities must have the same number of variables")

    owners = []
    values = []
    probabilities = []
    for index in range(n):
        support = np.asarray(values_per_point[index], dtype=float).reshape(-1)
        weight = np.asarray(probabilities_per_point[index], dtype=float).reshape(-1)
        if support.shape[0] != weight.shape[0] or support.shape[0] == 0:
            raise ValidationError(f"variable {index}: support and probabilities must be non-empty and aligned")
        owners.append(np.full(support.shape[0], index))
        values.append(support)
        probabilities.append(weight)
    owners = np.concatenate(owners)
    values = np.concatenate(values)
    probabilities = np.concatenate(probabilities)

    order = np.argsort(values, kind="stable")
    owners = owners[order]
    values = values[order]
    probabilities = probabilities[order]

    # Per-variable partial CDF, the count of variables whose CDF is still 0
    # and the sum of logs of the non-zero CDFs.
    partial_cdf = np.zeros(n)
    zero_count = n
    log_sum = 0.0

    expected = 0.0
    previous_cdf_of_max = 0.0
    total = values.shape[0]
    position = 0
    while position < total:
        value = values[position]
        # Fold in every location that shares this value before evaluating F.
        while position < total and values[position] == value:
            owner = owners[position]
            old = partial_cdf[owner]
            new = old + probabilities[position]
            partial_cdf[owner] = new
            if old == 0.0:
                zero_count -= 1
                if new > 0.0:
                    log_sum += np.log(new)
            else:
                if new > 0.0:
                    log_sum += np.log(new) - np.log(old)
                else:  # pragma: no cover - probabilities are non-negative
                    zero_count += 1
            position += 1
        cdf_of_max = float(np.exp(log_sum)) if zero_count == 0 else 0.0
        cdf_of_max = min(cdf_of_max, 1.0)
        if cdf_of_max > previous_cdf_of_max:
            expected += float(value) * (cdf_of_max - previous_cdf_of_max)
            previous_cdf_of_max = cdf_of_max
    # Guard against log-space drift: the final CDF must be 1.
    if previous_cdf_of_max < 1.0 - 1e-9:
        # Distribute the missing mass on the largest value (conservative fix;
        # drift of this size only occurs with thousands of factors).
        expected += float(values[-1]) * (1.0 - previous_cdf_of_max)
    return float(expected)


def distance_supports_for_assignment(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-point distance supports for a fixed assignment.

    ``assignment[i]`` is the index (into ``centers``) each uncertain point is
    assigned to.
    """
    centers = as_point_array(centers, name="centers")
    assignment = np.asarray(assignment, dtype=int).reshape(-1)
    if assignment.shape[0] != dataset.size:
        raise ValidationError("assignment must have one entry per uncertain point")
    if assignment.min() < 0 or assignment.max() >= centers.shape[0]:
        raise ValidationError("assignment refers to a center index that does not exist")
    metric = dataset.metric
    values = []
    probabilities = []
    for point, center_index in zip(dataset.points, assignment):
        target = centers[center_index : center_index + 1]
        distances = metric.pairwise(point.locations, target).reshape(-1)
        values.append(distances)
        probabilities.append(point.probabilities)
    return values, probabilities


def distance_supports_for_centers(
    dataset: UncertainDataset,
    centers: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-point distance-to-nearest-center supports (unassigned objective)."""
    centers = as_point_array(centers, name="centers")
    metric = dataset.metric
    values = []
    probabilities = []
    for point in dataset.points:
        distances = metric.pairwise(point.locations, centers).min(axis=1)
        values.append(distances)
        probabilities.append(point.probabilities)
    return values, probabilities


def expected_cost_assigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
) -> float:
    """Exact assigned expected cost ``EcostA(c_1 .. c_k)``."""
    values, probabilities = distance_supports_for_assignment(dataset, centers, assignment)
    return expected_max_of_independent(values, probabilities)


def expected_cost_unassigned(dataset: UncertainDataset, centers: np.ndarray) -> float:
    """Exact unassigned expected cost ``Ecost(c_1 .. c_k)``."""
    values, probabilities = distance_supports_for_centers(dataset, centers)
    return expected_max_of_independent(values, probabilities)


def expected_distance(dataset: UncertainDataset, point_index: int, target: np.ndarray) -> float:
    """``E[d(P_i, target)]`` under the dataset's metric."""
    if not 0 <= point_index < dataset.size:
        raise ValidationError(f"point_index {point_index} out of range [0, {dataset.size})")
    return dataset.points[point_index].expected_distance_to(target, dataset.metric)


def expected_distance_matrix(dataset: UncertainDataset, targets: np.ndarray) -> np.ndarray:
    """Matrix ``M[i, j] = E[d(P_i, targets[j])]``.

    This is the quantity the expected-distance assignment minimises per row.
    """
    targets = as_point_array(targets, name="targets")
    matrix = np.empty((dataset.size, targets.shape[0]))
    for index, point in enumerate(dataset.points):
        matrix[index] = point.expected_distances_to_many(targets, dataset.metric)
    return matrix


def expected_one_center_cost(dataset: UncertainDataset, center: np.ndarray) -> float:
    """Unassigned expected cost of a single center (Theorem 2.1 objective)."""
    center = np.asarray(center, dtype=float).reshape(1, -1)
    return expected_cost_unassigned(dataset, center)
