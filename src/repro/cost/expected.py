"""Exact expected-cost computation for uncertain k-center objectives.

The paper's objectives are expectations of a maximum over *independent*
per-point random distances:

* assigned cost: ``EcostA(C) = E[ max_i d(X_i, A(P_i)) ]`` where each
  ``d(X_i, A(P_i))`` is a discrete random variable with support
  ``{d(P_ij, A(P_i))}_j`` and probabilities ``p_ij``;
* unassigned cost: ``Ecost(C) = E[ max_i d(X_i, C) ]`` where the support is
  ``{min_c d(P_ij, c)}_j``.

Although the probability space has ``prod_i z_i`` realizations, the expected
maximum of independent discrete random variables is computable exactly in
``O(N log N)`` time for ``N = sum_i z_i`` total locations:

``E[max] = sum_v v * (F(v) - F(v^-))`` over the sorted union of supports,
with ``F(v) = prod_i F_i(v)`` the CDF of the maximum.

The kernel is fully vectorized: each support entry is turned into a
*log-space delta* ``log F_i(after) - log F_i(before)`` of its variable's
partial CDF (computed with one lexsort and segment cumulative sums), plus an
explicit zero-mass delta that records when a variable's CDF first becomes
positive.  A single argsort of the value union followed by cumulative sums
then yields ``F`` at every sweep position — no Python-level loop over
entries.  Tracking "how many variables still have zero CDF" as its own
counter (rather than inferring it from which entries have been folded) makes
zero-probability supports correct *by construction*.

Zero-probability semantics
--------------------------
Explicit zeros in a probability vector are legal (``as_probability_vector``
accepts them and clips tiny negatives to 0).  A zero-probability entry
contributes nothing to its variable's CDF, so the CDF of the maximum stays 0
until every variable has accumulated *positive* mass.  The historical
pure-Python sweep (kept as :func:`_expected_max_reference`) decremented its
zero counter as soon as a variable's smallest entry was folded in, even when
that entry had probability 0, silently corrupting the result; the vectorized
kernel's zero-mass deltas fire only on the transition to positive mass.

Batch and incremental APIs
--------------------------
* :func:`expected_max_of_independent` — scalar ``E[max]`` (thin wrapper over
  the vectorized kernel).
* :func:`expected_max_batch` — many assignments against shared per-variable
  candidate supports in one call.
* :func:`expected_max_batch_values` — many rows of arbitrary per-variable
  values (e.g. min-over-subset distances) in one call.
* :class:`AssignedCostEvaluator` — precomputes per-candidate sorted CDF
  structure once and re-evaluates the exact assigned cost after a
  single-point move *without re-sorting the full union* (the unchanged
  points' sorted sweep is cached and the moved point's distribution is
  integrated against it).
* :class:`LocalSearchSweep` — amortizes :meth:`AssignedCostEvaluator.rest_profile`
  across a whole local-search round: the sorted union of *all* variables'
  entries is maintained once per assignment, each point's rest profile is
  derived in ``O(N)`` by dividing that point's contribution out of the cached
  cumulative products, and an accepted move splices the moved variable's
  entries into the union by ``searchsorted`` instead of re-sorting.

Higher layers should not consume these primitives directly when they score
many candidate configurations — :class:`repro.cost.context.CostContext`
bundles them (plus the batched unassigned evaluator) into the shared
per-(dataset, candidate-centers) service the solvers, baselines and
experiments are built on.

This engine is the workhorse every solver, baseline and experiment uses to
report costs, and it is validated against full realization enumeration in the
test suite.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .._validation import as_point_array
from ..exceptions import ValidationError
from ..uncertain.dataset import UncertainDataset


# ---------------------------------------------------------------------------
# Vectorized kernel internals
# ---------------------------------------------------------------------------


def _flatten_variables(
    values_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
) -> tuple[np.ndarray, np.ndarray, np.ndarray, int]:
    """Validate and flatten ragged per-variable supports into entry arrays."""
    n = len(values_per_point)
    if n == 0:
        raise ValidationError("expected_max_of_independent needs at least one variable")
    if len(probabilities_per_point) != n:
        raise ValidationError("values and probabilities must have the same number of variables")
    owners = []
    values = []
    probabilities = []
    for index in range(n):
        support = np.asarray(values_per_point[index], dtype=float).reshape(-1)
        weight = np.asarray(probabilities_per_point[index], dtype=float).reshape(-1)
        if support.shape[0] != weight.shape[0] or support.shape[0] == 0:
            raise ValidationError(f"variable {index}: support and probabilities must be non-empty and aligned")
        owners.append(np.full(support.shape[0], index))
        values.append(support)
        probabilities.append(weight)
    return (
        np.concatenate(values),
        np.concatenate(probabilities),
        np.concatenate(owners),
        n,
    )


def _log_zero_deltas(cdf_after: np.ndarray, cdf_before: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Per-entry log-CDF increments and zero-mass transitions.

    ``log_delta`` is ``log cdf_after - log cdf_before`` where both are
    positive, ``log cdf_after`` where the entry takes its variable's CDF from
    0 to positive, and 0 where the CDF stays 0 (a zero-probability prefix —
    the case the historical implementation mishandled).  ``zero_delta`` is
    ``-1`` exactly on the 0-to-positive transitions.
    """
    positive_after = cdf_after > 0.0
    positive_before = cdf_before > 0.0
    log_after = np.where(positive_after, np.log(np.where(positive_after, cdf_after, 1.0)), 0.0)
    log_before = np.where(positive_before, np.log(np.where(positive_before, cdf_before, 1.0)), 0.0)
    log_delta = log_after - log_before
    zero_delta = -(positive_after & ~positive_before).astype(float)
    return log_delta, zero_delta


def _entry_deltas(
    values: np.ndarray, probabilities: np.ndarray, owners: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Log/zero deltas for ragged flattened entries, in the input entry order.

    One lexsort groups each variable's entries in value order; segment
    cumulative sums produce every partial CDF without a Python loop.
    """
    total = values.shape[0]
    order = np.lexsort((values, owners))
    sorted_probabilities = probabilities[order]
    sorted_owners = owners[order]
    running = np.cumsum(sorted_probabilities)
    is_start = np.empty(total, dtype=bool)
    is_start[0] = True
    is_start[1:] = sorted_owners[1:] != sorted_owners[:-1]
    starts = np.flatnonzero(is_start)
    # Offset of each variable's segment = running mass before the segment;
    # running is non-decreasing so a forward max-fill recovers it everywhere.
    offsets = np.zeros(total)
    offsets[starts[1:]] = running[starts[1:] - 1]
    offsets = np.maximum.accumulate(offsets)
    cdf_after = running - offsets
    cdf_before = np.empty(total)
    cdf_before[1:] = cdf_after[:-1]
    cdf_before[is_start] = 0.0
    log_delta_sorted, zero_delta_sorted = _log_zero_deltas(cdf_after, cdf_before)
    log_delta = np.empty(total)
    zero_delta = np.empty(total)
    log_delta[order] = log_delta_sorted
    zero_delta[order] = zero_delta_sorted
    return log_delta, zero_delta


def _sweep(values: np.ndarray, log_delta: np.ndarray, zero_delta: np.ndarray, n: int) -> float:
    """``E[max]`` from per-entry deltas — one argsort plus cumulative sums."""
    order = np.argsort(values, kind="stable")
    sorted_values = values[order]
    cumulative_log = np.cumsum(log_delta[order])
    zero_count = float(n) + np.cumsum(zero_delta[order])
    cdf_of_max = np.where(zero_count < 0.5, np.exp(np.minimum(cumulative_log, 0.0)), 0.0)
    increments = np.diff(cdf_of_max, prepend=0.0)
    expected = float(np.dot(sorted_values, increments))
    # Guard against log-space drift: the final CDF must be 1; any missing
    # mass is conservatively placed on the largest value.
    expected += float(sorted_values[-1]) * float(max(0.0, 1.0 - cdf_of_max[-1]))
    return expected


def _sweep_rows_presorted(
    sorted_values: np.ndarray,
    sorted_log_delta: np.ndarray,
    sorted_zero_delta: np.ndarray,
    n: int,
) -> np.ndarray:
    """Row-wise ``E[max]`` for entry arrays already in union-value order.

    The tail of :func:`_sweep_rows`, shared with the rank-merge unassigned
    sweep (:meth:`repro.cost.context.CostContext.unassigned_costs`), which
    produces its sorted entries by an integer rank merge instead of a float
    sort — using one helper keeps the two paths bit-identical by
    construction.
    """
    cumulative_log = np.cumsum(sorted_log_delta, axis=1)
    zero_count = float(n) + np.cumsum(sorted_zero_delta, axis=1)
    cdf_of_max = np.where(zero_count < 0.5, np.exp(np.minimum(cumulative_log, 0.0)), 0.0)
    increments = np.diff(cdf_of_max, prepend=0.0, axis=1)
    expected = np.einsum("bt,bt->b", sorted_values, increments)
    expected += sorted_values[:, -1] * np.maximum(0.0, 1.0 - cdf_of_max[:, -1])
    return expected


def _sweep_rows(
    values: np.ndarray, log_delta: np.ndarray, zero_delta: np.ndarray, n: int
) -> np.ndarray:
    """Row-wise ``E[max]`` for ``(B, N)`` entry arrays sharing a variable count."""
    order = np.argsort(values, axis=1, kind="stable")
    sorted_values = np.take_along_axis(values, order, axis=1)
    return _sweep_rows_presorted(
        sorted_values,
        np.take_along_axis(log_delta, order, axis=1),
        np.take_along_axis(zero_delta, order, axis=1),
        n,
    )


# ---------------------------------------------------------------------------
# Public scalar / batch entry points
# ---------------------------------------------------------------------------


def expected_max_of_independent(
    values_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
) -> float:
    """Exact ``E[max_i V_i]`` for independent non-negative discrete variables.

    Parameters
    ----------
    values_per_point:
        ``values_per_point[i]`` is the support of variable ``i``.
    probabilities_per_point:
        Matching probabilities, each summing to one.  Entries may be exactly
        0; they contribute no mass (see the module docstring for the
        zero-probability semantics).

    Notes
    -----
    Runs in ``O(N log N)`` for ``N`` total support points with a bounded
    number of NumPy kernel calls (no Python loop over entries).  Values may
    repeat within and across variables.
    """
    values, probabilities, owners, n = _flatten_variables(values_per_point, probabilities_per_point)
    log_delta, zero_delta = _entry_deltas(values, probabilities, owners, n)
    return _sweep(values, log_delta, zero_delta, n)


def _expected_max_reference(
    values_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
) -> float:
    """Historical pure-Python sweep, kept for differential testing.

    The ``zero_count`` bookkeeping bug is fixed here too: the counter is
    decremented only when a variable's partial CDF actually becomes positive,
    not whenever its smallest entry (possibly of probability 0) is folded in.
    """
    values, probabilities, owners, n = _flatten_variables(values_per_point, probabilities_per_point)

    order = np.argsort(values, kind="stable")
    owners = owners[order]
    values = values[order]
    probabilities = probabilities[order]

    partial_cdf = np.zeros(n)
    zero_count = n
    log_sum = 0.0

    expected = 0.0
    previous_cdf_of_max = 0.0
    total = values.shape[0]
    position = 0
    while position < total:
        value = values[position]
        while position < total and values[position] == value:
            owner = owners[position]
            old = partial_cdf[owner]
            new = old + probabilities[position]
            partial_cdf[owner] = new
            if old == 0.0:
                if new > 0.0:
                    zero_count -= 1
                    log_sum += np.log(new)
            else:
                log_sum += np.log(new) - np.log(old)
            position += 1
        cdf_of_max = float(np.exp(log_sum)) if zero_count == 0 else 0.0
        cdf_of_max = min(cdf_of_max, 1.0)
        if cdf_of_max > previous_cdf_of_max:
            expected += float(value) * (cdf_of_max - previous_cdf_of_max)
            previous_cdf_of_max = cdf_of_max
    if previous_cdf_of_max < 1.0 - 1e-9:
        expected += float(values[-1]) * (1.0 - previous_cdf_of_max)
    return float(expected)


def expected_max_batch(
    supports: Sequence[np.ndarray],
    probabilities: Sequence[np.ndarray],
    column_sets: np.ndarray,
) -> np.ndarray:
    """Exact ``E[max]`` for many column selections against shared supports.

    Parameters
    ----------
    supports:
        ``supports[i]`` is a ``(z_i, m)`` matrix whose column ``c`` is the
        support of variable ``i`` under candidate ``c`` (e.g. distances from
        point ``i``'s locations to candidate center ``c``).
    probabilities:
        ``probabilities[i]`` is the ``(z_i,)`` probability vector of variable
        ``i`` (shared by all of its columns).
    column_sets:
        ``(B, n)`` integer array; row ``b`` selects column
        ``column_sets[b, i]`` for variable ``i``.

    Returns
    -------
    ``(B,)`` array of exact expected maxima, one per row of ``column_sets``.
    """
    return AssignedCostEvaluator(supports, probabilities).costs(column_sets)


def expected_max_batch_values(
    values_rows_per_point: Sequence[np.ndarray],
    probabilities_per_point: Sequence[np.ndarray],
) -> np.ndarray:
    """Exact ``E[max]`` for many rows of arbitrary per-variable values.

    ``values_rows_per_point[i]`` is a ``(B, z_i)`` array: row ``b`` holds
    variable ``i``'s support values in problem ``b`` (e.g. min-over-subset
    distances).  Probabilities are shared across rows.  Returns ``(B,)``.
    """
    n = len(values_rows_per_point)
    if n == 0:
        raise ValidationError("expected_max_batch_values needs at least one variable")
    if len(probabilities_per_point) != n:
        raise ValidationError("values and probabilities must have the same number of variables")
    value_blocks = []
    log_blocks = []
    zero_blocks = []
    batch = None
    for index in range(n):
        block = np.asarray(values_rows_per_point[index], dtype=float)
        if block.ndim != 2 or block.shape[1] == 0:
            raise ValidationError(f"variable {index}: values must be a non-empty (B, z) array")
        if batch is None:
            batch = block.shape[0]
        elif block.shape[0] != batch:
            raise ValidationError("every variable must provide the same number of rows")
        weight = np.asarray(probabilities_per_point[index], dtype=float).reshape(-1)
        if weight.shape[0] != block.shape[1]:
            raise ValidationError(f"variable {index}: support and probabilities must be aligned")
        order = np.argsort(block, axis=1, kind="stable")
        sorted_values = np.take_along_axis(block, order, axis=1)
        sorted_probabilities = weight[order]
        cdf_after = np.cumsum(sorted_probabilities, axis=1)
        cdf_before = np.concatenate([np.zeros((block.shape[0], 1)), cdf_after[:, :-1]], axis=1)
        log_delta, zero_delta = _log_zero_deltas(cdf_after, cdf_before)
        value_blocks.append(sorted_values)
        log_blocks.append(log_delta)
        zero_blocks.append(zero_delta)
    return _sweep_rows(
        np.concatenate(value_blocks, axis=1),
        np.concatenate(log_blocks, axis=1),
        np.concatenate(zero_blocks, axis=1),
        n,
    )


# ---------------------------------------------------------------------------
# Incremental evaluator
# ---------------------------------------------------------------------------


def _sorted_column_structure(
    support: np.ndarray, weight: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-column sorted values, partial CDFs and log/zero deltas.

    The single place both the full evaluator build and the incremental
    column-replacement path derive a column's sweep structure, so a spliced
    column is bit-identical to the same column in a from-scratch build (all
    operations are per-column: sort, cumulative sum, elementwise deltas).
    """
    order = np.argsort(support, axis=0, kind="stable")
    sorted_values = np.take_along_axis(support, order, axis=0)
    sorted_probabilities = weight[order]
    cdf_after = np.cumsum(sorted_probabilities, axis=0)
    cdf_before = np.vstack([np.zeros((1, support.shape[1])), cdf_after[:-1]])
    log_delta, zero_delta = _log_zero_deltas(cdf_after, cdf_before)
    return sorted_values, cdf_after, log_delta, zero_delta


@dataclass(frozen=True)
class RestProfile:
    """Cached sorted sweep of every variable except one.

    ``values`` is the sorted union of the other variables' supports and
    ``products`` the CDF of their maximum after each sorted position (0 while
    any of them still has zero mass).  Both arrays are empty when the
    instance has a single variable.
    """

    point: int
    values: np.ndarray
    products: np.ndarray


class AssignedCostEvaluator:
    """Batch + incremental exact assigned-cost evaluation on fixed supports.

    The constructor sorts every ``(variable, candidate)`` column once and
    stores its partial CDFs and log/zero deltas.  After that:

    * :meth:`cost` / :meth:`costs` evaluate full assignments by gathering the
      precomputed per-column entries and running the shared sweep kernel —
      the per-column sorts are never redone;
    * :meth:`rest_profile` + :meth:`move_costs` evaluate all single-point
      moves of one variable against the cached sweep of the others, without
      re-sorting the full union: the moved variable's step CDF is integrated
      against the others' cached product via
      ``E[max] = v_max - integral of F(v) dv``.
    """

    def __init__(
        self,
        supports: Sequence[np.ndarray],
        probabilities: Sequence[np.ndarray],
    ) -> None:
        self.n = len(supports)
        if self.n == 0:
            raise ValidationError("AssignedCostEvaluator needs at least one variable")
        if len(probabilities) != self.n:
            raise ValidationError("supports and probabilities must have the same number of variables")
        self._values: list[np.ndarray] = []
        self._cdfs: list[np.ndarray] = []
        self._log_deltas: list[np.ndarray] = []
        self._zero_deltas: list[np.ndarray] = []
        self._probabilities: list[np.ndarray] = []
        self.columns: int | None = None
        for index in range(self.n):
            support = np.asarray(supports[index], dtype=float)
            if support.ndim != 2 or support.shape[0] == 0 or support.shape[1] == 0:
                raise ValidationError(f"variable {index}: support must be a non-empty (z, m) matrix")
            weight = np.asarray(probabilities[index], dtype=float).reshape(-1)
            if weight.shape[0] != support.shape[0]:
                raise ValidationError(f"variable {index}: support and probabilities must be aligned")
            if self.columns is None:
                self.columns = support.shape[1]
            elif support.shape[1] != self.columns:
                raise ValidationError("every variable must offer the same number of candidate columns")
            values, cdf_after, log_delta, zero_delta = _sorted_column_structure(support, weight)
            self._values.append(values)
            self._cdfs.append(cdf_after)
            self._log_deltas.append(log_delta)
            self._zero_deltas.append(zero_delta)
            self._probabilities.append(weight)

    # -- batch path ---------------------------------------------------------

    def _check_columns(self, columns: np.ndarray) -> np.ndarray:
        columns = np.asarray(columns, dtype=int)
        if columns.shape[-1] != self.n:
            raise ValidationError(f"expected one column per variable ({self.n}), got {columns.shape[-1]}")
        if columns.size and (columns.min() < 0 or columns.max() >= self.columns):
            raise ValidationError("column index out of range")
        return columns

    def cost(self, columns: np.ndarray) -> float:
        """Exact ``E[max]`` of a single assignment (one column per variable)."""
        columns = self._check_columns(np.asarray(columns, dtype=int).reshape(-1))
        values = np.concatenate([self._values[i][:, columns[i]] for i in range(self.n)])
        log_delta = np.concatenate([self._log_deltas[i][:, columns[i]] for i in range(self.n)])
        zero_delta = np.concatenate([self._zero_deltas[i][:, columns[i]] for i in range(self.n)])
        return _sweep(values, log_delta, zero_delta, self.n)

    def costs(self, column_sets: np.ndarray, *, chunk_rows: int = 4096) -> np.ndarray:
        """Exact ``E[max]`` for a ``(B, n)`` batch of assignments."""
        column_sets = self._check_columns(np.atleast_2d(np.asarray(column_sets, dtype=int)))
        batch = column_sets.shape[0]
        out = np.empty(batch)
        for start in range(0, batch, chunk_rows):
            rows = column_sets[start : start + chunk_rows]
            values = np.concatenate([self._values[i][:, rows[:, i]].T for i in range(self.n)], axis=1)
            log_delta = np.concatenate(
                [self._log_deltas[i][:, rows[:, i]].T for i in range(self.n)], axis=1
            )
            zero_delta = np.concatenate(
                [self._zero_deltas[i][:, rows[:, i]].T for i in range(self.n)], axis=1
            )
            out[start : start + rows.shape[0]] = _sweep_rows(values, log_delta, zero_delta, self.n)
        return out

    # -- incremental path ---------------------------------------------------

    def rest_profile(self, columns: np.ndarray, point: int) -> RestProfile:
        """Sorted sweep of every variable except ``point`` under ``columns``."""
        columns = self._check_columns(np.asarray(columns, dtype=int).reshape(-1))
        if not 0 <= point < self.n:
            raise ValidationError(f"point {point} out of range [0, {self.n})")
        others = [i for i in range(self.n) if i != point]
        if not others:
            return RestProfile(point=point, values=np.empty(0), products=np.empty(0))
        values = np.concatenate([self._values[i][:, columns[i]] for i in others])
        log_delta = np.concatenate([self._log_deltas[i][:, columns[i]] for i in others])
        zero_delta = np.concatenate([self._zero_deltas[i][:, columns[i]] for i in others])
        order = np.argsort(values, kind="stable")
        values = values[order]
        cumulative_log = np.cumsum(log_delta[order])
        zero_count = float(len(others)) + np.cumsum(zero_delta[order])
        products = np.where(zero_count < 0.5, np.exp(np.minimum(cumulative_log, 0.0)), 0.0)
        return RestProfile(point=point, values=values, products=products)

    def move_costs(self, profile: RestProfile, candidate_columns: np.ndarray) -> np.ndarray:
        """Exact assigned cost for each candidate column of the profiled point.

        Uses ``E[max] = v_max - integral F(v) dv`` with
        ``F = F_rest * F_point``: the cumulative integral ``G`` of the
        piecewise-constant rest product is built once per profile in ``O(N)``,
        and because the moved point's step CDF is constant between its support
        knots the integral reduces to ``sum_j F_point(s_j) (G(s_{j+1}) -
        G(s_j))`` — only ``z + 1`` evaluations of ``G`` per candidate column,
        located for all columns with one ``searchsorted`` over the shared rest
        values.  No union re-sort happens per move.
        """
        candidate_columns = np.asarray(candidate_columns, dtype=int).reshape(-1)
        if candidate_columns.size and (
            candidate_columns.min() < 0 or candidate_columns.max() >= self.columns
        ):
            raise ValidationError("column index out of range")
        point = profile.point
        rest_values = profile.values
        rest_products = profile.products
        support = self._values[point][:, candidate_columns]  # (z, C)
        cdf = self._cdfs[point][:, candidate_columns]  # (z, C)
        z, width = support.shape
        if width == 0:
            return np.empty(0)
        if rest_values.size == 0:
            # Single-variable instance: E[V] = v_z - sum_j F(s_j) (s_{j+1} - s_j).
            return support[-1] - np.sum(cdf[:-1] * np.diff(support, axis=0), axis=0)
        # ``G(v) = integral of F_rest up to v`` is piecewise linear with slope
        # ``rest_products[t]`` on ``[rest_values[t], rest_values[t+1])`` (and
        # slope ``rest_products[-1] ~= 1`` beyond the last rest value).  It is
        # built once per profile in O(N); each candidate column then needs
        # only its z + 1 step knots evaluated against G, because the point's
        # step CDF is constant between consecutive support values:
        # ``integral F_rest F_point = sum_j F_point(s_j) (G(s_{j+1}) - G(s_j))``.
        g_knots = np.concatenate(([0.0], np.cumsum(rest_products[:-1] * np.diff(rest_values))))
        v_max = np.maximum(support[-1], rest_values[-1])  # (C,)
        queries = np.vstack([support, v_max[None, :]])  # (z + 1, C)
        index = np.searchsorted(rest_values, queries.ravel(), side="right").reshape(z + 1, width) - 1
        clipped = np.clip(index, 0, rest_values.shape[0] - 1)
        g_at_queries = np.where(
            index >= 0,
            g_knots[clipped] + rest_products[clipped] * (queries - rest_values[clipped]),
            0.0,
        )
        return v_max - np.einsum("jc,jc->c", cdf, np.diff(g_at_queries, axis=0))

    def local_search_sweep(self, columns: np.ndarray) -> "LocalSearchSweep":
        """A :class:`LocalSearchSweep` over the current assignment ``columns``."""
        return LocalSearchSweep(self, columns)

    # -- incremental candidate-column updates -------------------------------

    def replace_candidate_columns(
        self, columns: np.ndarray, supports: Sequence[np.ndarray]
    ) -> None:
        """Splice new candidate columns into the cached sorted structure.

        ``supports[i]`` is the ``(z_i, C)`` block of variable ``i``'s
        distances to the ``C`` replacement candidates; column ``c`` of each
        block replaces cached column ``columns[c]``.  Only the replaced
        columns are re-sorted — ``O(n z C log z)`` against the
        ``O(n z m log z)`` full rebuild — and the spliced columns are
        bit-identical to a from-scratch build (same per-column kernels).

        In-place: previously derived :class:`RestProfile` /
        :class:`LocalSearchSweep` objects hold copies of the old columns and
        must be rebuilt if they referenced a replaced column.
        """
        columns = np.asarray(columns, dtype=int).reshape(-1)
        if columns.size == 0:
            return
        if columns.min() < 0 or columns.max() >= self.columns:
            raise ValidationError("column index out of range")
        if np.unique(columns).shape[0] != columns.shape[0]:
            raise ValidationError("replacement column indices must be distinct")
        if len(supports) != self.n:
            raise ValidationError(f"expected one support block per variable ({self.n})")
        blocks = []
        for index in range(self.n):
            block = np.asarray(supports[index], dtype=float)
            expected_shape = (self._values[index].shape[0], columns.shape[0])
            if block.shape != expected_shape:
                raise ValidationError(
                    f"variable {index}: replacement block must have shape {expected_shape}"
                )
            blocks.append(block)
        # Group variables by support size: each group's sort / cumulative-sum /
        # delta pass runs as one 3-D kernel call instead of one per variable
        # (the per-column results are identical — every operation is
        # independent along the variable and column axes).
        by_size: dict[int, list[int]] = {}
        for index, block in enumerate(blocks):
            by_size.setdefault(block.shape[0], []).append(index)
        for indices in by_size.values():
            stacked = np.stack([blocks[i] for i in indices])  # (g, z, C)
            weights = np.stack([self._probabilities[i] for i in indices])  # (g, z)
            order = np.argsort(stacked, axis=1, kind="stable")
            sorted_values = np.take_along_axis(stacked, order, axis=1)
            sorted_probabilities = np.take_along_axis(
                np.broadcast_to(weights[:, :, None], stacked.shape), order, axis=1
            )
            cdf_after = np.cumsum(sorted_probabilities, axis=1)
            cdf_before = np.concatenate(
                [np.zeros((len(indices), 1, columns.shape[0])), cdf_after[:, :-1]], axis=1
            )
            log_delta, zero_delta = _log_zero_deltas(cdf_after, cdf_before)
            for position, index in enumerate(indices):
                self._values[index][:, columns] = sorted_values[position]
                self._cdfs[index][:, columns] = cdf_after[position]
                self._log_deltas[index][:, columns] = log_delta[position]
                self._zero_deltas[index][:, columns] = zero_delta[position]

    def replace_candidate_column(self, column: int, supports: Sequence[np.ndarray]) -> None:
        """Single-column form of :meth:`replace_candidate_columns`.

        ``supports[i]`` is variable ``i``'s ``(z_i,)`` distance vector to the
        replacement candidate.
        """
        blocks = [np.asarray(values, dtype=float).reshape(-1, 1) for values in supports]
        self.replace_candidate_columns(np.asarray([column], dtype=int), blocks)

    def clone(self) -> "AssignedCostEvaluator":
        """A deep copy whose columns can be replaced without mutating this one."""
        twin = AssignedCostEvaluator.__new__(AssignedCostEvaluator)
        twin.n = self.n
        twin.columns = self.columns
        twin._values = [values.copy() for values in self._values]
        twin._cdfs = [cdf.copy() for cdf in self._cdfs]
        twin._log_deltas = [delta.copy() for delta in self._log_deltas]
        twin._zero_deltas = [delta.copy() for delta in self._zero_deltas]
        twin._probabilities = list(self._probabilities)
        return twin


class LocalSearchSweep:
    """Round-amortized rest profiles for single-point local search.

    :meth:`AssignedCostEvaluator.rest_profile` re-concatenates and re-sorts
    the other ``n - 1`` variables' columns for *every* profiled point, even
    though the ``n`` profiles of one local-search round share all but one
    variable.  This class maintains the sorted union sweep of **all**
    variables under the current assignment (values, per-entry log/zero
    deltas, owners, and their cumulative sums) and derives any point's rest
    profile in ``O(N)`` by subtracting that point's own cumulative
    contribution in log space — with the same explicit zero-mass counter the
    kernel uses, so zero-probability supports stay correct.

    The profile keeps the moved point's entry positions in the sorted union;
    they only add breakpoints on which the rest product is constant, which
    the :meth:`AssignedCostEvaluator.move_costs` integral ignores (zero-width
    or equal-product intervals), so the move costs match the per-point
    profiles to floating-point associativity.

    Accepting a move splices the moved variable's presorted column into the
    union via ``searchsorted`` + ``insert`` — the union is never re-sorted
    from scratch during a round.
    """

    def __init__(self, evaluator: AssignedCostEvaluator, columns: np.ndarray) -> None:
        self._evaluator = evaluator
        columns = evaluator._check_columns(np.asarray(columns, dtype=int).reshape(-1))
        self._columns = columns.copy()
        n = evaluator.n
        values = np.concatenate([evaluator._values[i][:, columns[i]] for i in range(n)])
        log_delta = np.concatenate([evaluator._log_deltas[i][:, columns[i]] for i in range(n)])
        zero_delta = np.concatenate([evaluator._zero_deltas[i][:, columns[i]] for i in range(n)])
        owner = np.concatenate(
            [np.full(evaluator._values[i].shape[0], i) for i in range(n)]
        )
        order = np.argsort(values, kind="stable")
        self._values = values[order]
        self._log_delta = log_delta[order]
        self._zero_delta = zero_delta[order]
        self._owner = owner[order]
        self._refresh()

    def _refresh(self) -> None:
        self._cum_log = np.cumsum(self._log_delta)
        self._cum_zero = np.cumsum(self._zero_delta)

    @property
    def columns(self) -> np.ndarray:
        """The current assignment (candidate column per variable)."""
        return self._columns.copy()

    def column_of(self, point: int) -> int:
        return int(self._columns[point])

    def cost(self) -> float:
        """Exact ``E[max]`` of the current assignment from the cached sweep."""
        zero_count = float(self._evaluator.n) + self._cum_zero
        cdf_of_max = np.where(zero_count < 0.5, np.exp(np.minimum(self._cum_log, 0.0)), 0.0)
        increments = np.diff(cdf_of_max, prepend=0.0)
        expected = float(np.dot(self._values, increments))
        expected += float(self._values[-1]) * float(max(0.0, 1.0 - cdf_of_max[-1]))
        return expected

    def rest_profile(self, point: int) -> RestProfile:
        """Sorted sweep of every variable except ``point`` — no re-sort."""
        n = self._evaluator.n
        if not 0 <= point < n:
            raise ValidationError(f"point {point} out of range [0, {n})")
        if n == 1:
            return RestProfile(point=point, values=np.empty(0), products=np.empty(0))
        mine = self._owner == point
        own_log = np.cumsum(np.where(mine, self._log_delta, 0.0))
        own_zero = np.cumsum(np.where(mine, self._zero_delta, 0.0))
        rest_log = self._cum_log - own_log
        rest_zero_count = float(n - 1) + (self._cum_zero - own_zero)
        products = np.where(rest_zero_count < 0.5, np.exp(np.minimum(rest_log, 0.0)), 0.0)
        return RestProfile(point=point, values=self._values, products=products)

    def apply_move(self, point: int, column: int) -> None:
        """Reassign ``point`` to ``column`` and splice the union in place."""
        evaluator = self._evaluator
        n = evaluator.n
        if not 0 <= point < n:
            raise ValidationError(f"point {point} out of range [0, {n})")
        column = int(column)
        if not 0 <= column < evaluator.columns:
            raise ValidationError("column index out of range")
        if column == int(self._columns[point]):
            return
        keep = self._owner != point
        values = self._values[keep]
        new_values = evaluator._values[point][:, column]
        positions = np.searchsorted(values, new_values, side="left")
        self._values = np.insert(values, positions, new_values)
        self._log_delta = np.insert(
            self._log_delta[keep], positions, evaluator._log_deltas[point][:, column]
        )
        self._zero_delta = np.insert(
            self._zero_delta[keep], positions, evaluator._zero_deltas[point][:, column]
        )
        self._owner = np.insert(self._owner[keep], positions, point)
        self._columns[point] = column
        self._refresh()


# ---------------------------------------------------------------------------
# Dataset-facing helpers (supports construction + cost wrappers)
# ---------------------------------------------------------------------------


def distance_supports_for_assignment(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-point distance supports for a fixed assignment.

    ``assignment[i]`` is the index (into ``centers``) each uncertain point is
    assigned to.
    """
    centers = as_point_array(centers, name="centers")
    assignment = np.asarray(assignment, dtype=int).reshape(-1)
    if assignment.shape[0] != dataset.size:
        raise ValidationError("assignment must have one entry per uncertain point")
    if assignment.min() < 0 or assignment.max() >= centers.shape[0]:
        raise ValidationError("assignment refers to a center index that does not exist")
    metric = dataset.metric
    values = []
    probabilities = []
    for point, center_index in zip(dataset.points, assignment):
        target = centers[center_index : center_index + 1]
        distances = metric.pairwise(point.locations, target).reshape(-1)
        values.append(distances)
        probabilities.append(point.probabilities)
    return values, probabilities


def distance_supports_for_centers(
    dataset: UncertainDataset,
    centers: np.ndarray,
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Per-point distance-to-nearest-center supports (unassigned objective)."""
    centers = as_point_array(centers, name="centers")
    metric = dataset.metric
    values = []
    probabilities = []
    for point in dataset.points:
        distances = metric.pairwise(point.locations, centers).min(axis=1)
        values.append(distances)
        probabilities.append(point.probabilities)
    return values, probabilities


def assigned_cost_evaluator(dataset: UncertainDataset, centers: np.ndarray) -> AssignedCostEvaluator:
    """An :class:`AssignedCostEvaluator` over a dataset's center distances.

    Column ``c`` of variable ``i`` is ``d(P_ij, centers[c])``, so assignment
    vectors index centers directly.
    """
    centers = as_point_array(centers, name="centers")
    metric = dataset.metric
    supports = [metric.pairwise(point.locations, centers) for point in dataset.points]
    probabilities = [point.probabilities for point in dataset.points]
    return AssignedCostEvaluator(supports, probabilities)


def expected_cost_assigned(
    dataset: UncertainDataset,
    centers: np.ndarray,
    assignment: np.ndarray,
) -> float:
    """Exact assigned expected cost ``EcostA(c_1 .. c_k)``."""
    values, probabilities = distance_supports_for_assignment(dataset, centers, assignment)
    return expected_max_of_independent(values, probabilities)


def expected_cost_unassigned(dataset: UncertainDataset, centers: np.ndarray) -> float:
    """Exact unassigned expected cost ``Ecost(c_1 .. c_k)``."""
    values, probabilities = distance_supports_for_centers(dataset, centers)
    return expected_max_of_independent(values, probabilities)


def expected_distance(dataset: UncertainDataset, point_index: int, target: np.ndarray) -> float:
    """``E[d(P_i, target)]`` under the dataset's metric."""
    if not 0 <= point_index < dataset.size:
        raise ValidationError(f"point_index {point_index} out of range [0, {dataset.size})")
    return dataset.points[point_index].expected_distance_to(target, dataset.metric)


def expected_distance_matrix(dataset: UncertainDataset, targets: np.ndarray) -> np.ndarray:
    """Matrix ``M[i, j] = E[d(P_i, targets[j])]``.

    This is the quantity the expected-distance assignment minimises per row.
    """
    targets = as_point_array(targets, name="targets")
    matrix = np.empty((dataset.size, targets.shape[0]))
    for index, point in enumerate(dataset.points):
        matrix[index] = point.expected_distances_to_many(targets, dataset.metric)
    return matrix


def expected_one_center_cost(dataset: UncertainDataset, center: np.ndarray) -> float:
    """Unassigned expected cost of a single center (Theorem 2.1 objective)."""
    center = np.asarray(center, dtype=float).reshape(1, -1)
    return expected_cost_unassigned(dataset, center)
