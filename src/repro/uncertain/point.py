"""The uncertain point model: a discrete distribution over locations.

An uncertain point ``P_i`` is an independent random variable taking one of
``z_i`` possible locations ``P_i1 .. P_iz`` with probabilities ``p_i1 ..
p_iz`` summing to one — exactly the model in the paper's problem statement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

from .._validation import (
    as_point_array,
    as_probability_vector,
    as_rng,
)
from ..exceptions import NotSupportedError, ValidationError
from ..metrics.base import Metric


@dataclass(frozen=True)
class UncertainPoint:
    """A discrete probability distribution over possible locations.

    Attributes
    ----------
    locations:
        ``(z, d)`` array of the possible locations (``(z, 1)`` element
        indices for finite metrics).
    probabilities:
        ``(z,)`` probability vector summing to one.
    label:
        Optional identifier carried through for reporting.
    """

    locations: np.ndarray
    probabilities: np.ndarray
    label: str | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        locations = as_point_array(self.locations, name="locations")
        probabilities = as_probability_vector(
            self.probabilities, size=locations.shape[0], name="probabilities"
        )
        locations.setflags(write=False)
        probabilities.setflags(write=False)
        object.__setattr__(self, "locations", locations)
        object.__setattr__(self, "probabilities", probabilities)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def certain(cls, location: Sequence[float] | np.ndarray, *, label: str | None = None) -> "UncertainPoint":
        """A degenerate uncertain point with a single location."""
        array = np.asarray(location, dtype=float).reshape(1, -1)
        return cls(locations=array, probabilities=np.array([1.0]), label=label)

    @classmethod
    def uniform(cls, locations: Sequence[Sequence[float]] | np.ndarray, *, label: str | None = None) -> "UncertainPoint":
        """An uncertain point with equal probability on every location."""
        array = as_point_array(locations, name="locations")
        z = array.shape[0]
        return cls(locations=array, probabilities=np.full(z, 1.0 / z), label=label)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def support_size(self) -> int:
        """Number of possible locations (the paper's ``z_i``)."""
        return int(self.locations.shape[0])

    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return int(self.locations.shape[1])

    @property
    def is_certain(self) -> bool:
        """Whether the point is deterministic (probability 1 on one location)."""
        return bool(np.isclose(self.probabilities.max(), 1.0))

    def __len__(self) -> int:
        return self.support_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, float]]:
        for location, probability in zip(self.locations, self.probabilities):
            yield location, float(probability)

    # ------------------------------------------------------------------
    # Representatives and expectations
    # ------------------------------------------------------------------
    def expected_point(self) -> np.ndarray:
        """The paper's ``P̄``: the probability-weighted average location.

        Only meaningful in a normed vector space; the caller is responsible
        for using this in a metric with ``supports_expected_point``.
        """
        return (self.probabilities[:, None] * self.locations).sum(axis=0)

    def expected_distance_to(self, target: Sequence[float] | np.ndarray, metric: Metric) -> float:
        """``E[d(P, target)] = sum_j p_j d(P_j, target)``."""
        target = np.asarray(target, dtype=float).reshape(1, -1)
        distances = metric.pairwise(self.locations, target).reshape(-1)
        return float((self.probabilities * distances).sum())

    def expected_distances_to_many(self, targets: np.ndarray, metric: Metric) -> np.ndarray:
        """Vector of ``E[d(P, t)]`` for each row ``t`` of ``targets``."""
        targets = as_point_array(targets, name="targets")
        distances = metric.pairwise(self.locations, targets)
        return self.probabilities @ distances

    def distance_distribution(self, target: Sequence[float] | np.ndarray, metric: Metric) -> tuple[np.ndarray, np.ndarray]:
        """Support and probabilities of the random distance ``d(P, target)``."""
        target = np.asarray(target, dtype=float).reshape(1, -1)
        distances = metric.pairwise(self.locations, target).reshape(-1)
        return distances, self.probabilities.copy()

    # ------------------------------------------------------------------
    # Sampling and serialization
    # ------------------------------------------------------------------
    def sample(self, rng: int | np.random.Generator | None = None, size: int | None = None) -> np.ndarray:
        """Draw realization(s) of the point.

        Returns a single ``(d,)`` location when ``size`` is ``None`` and an
        ``(size, d)`` array otherwise.
        """
        generator = as_rng(rng)
        if size is None:
            index = int(generator.choice(self.support_size, p=self.probabilities))
            return self.locations[index].copy()
        indices = generator.choice(self.support_size, p=self.probabilities, size=size)
        return self.locations[indices].copy()

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation."""
        return {
            "locations": self.locations.tolist(),
            "probabilities": self.probabilities.tolist(),
            "label": self.label,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "UncertainPoint":
        """Inverse of :meth:`to_dict`."""
        if "locations" not in payload or "probabilities" not in payload:
            raise ValidationError("uncertain point payload needs 'locations' and 'probabilities'")
        return cls(
            locations=np.asarray(payload["locations"], dtype=float),
            probabilities=np.asarray(payload["probabilities"], dtype=float),
            label=payload.get("label"),
        )

    def restricted_to_support(self, indices: Sequence[int]) -> "UncertainPoint":
        """Condition the point on a subset of its support (renormalised)."""
        indices = list(indices)
        if not indices:
            raise ValidationError("cannot restrict an uncertain point to an empty support")
        locations = self.locations[indices]
        probabilities = self.probabilities[indices]
        total = probabilities.sum()
        if total <= 0:
            raise NotSupportedError("cannot condition on a zero-probability event")
        return UncertainPoint(locations=locations, probabilities=probabilities / total, label=self.label)
