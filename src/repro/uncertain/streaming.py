"""Streaming uncertain 1-center (probabilistic smallest enclosing ball).

The related work the paper builds on includes Munteanu, Sohler and Feldman's
streaming algorithm for the *probabilistic smallest enclosing ball* problem
(SoCG 2014).  This module provides a practical streaming counterpart of
Theorem 2.1 for the reproduction's extension suite:

* uncertain points arrive one at a time and are **not stored**;
* the sketch maintains, in ``O(z + s)`` memory, everything needed to produce
  a center with the same factor-2 guarantee as Theorem 2.1:

  - the expected point of the *first* uncertain point seen (the paper's
    ``P̄_1`` — any fixed anchor works, and the first is the only one a
    one-pass algorithm can commit to without storing the stream),
  - a reservoir sample of ``s`` uncertain points used to *estimate* the
    expected cost of the anchor center at any time.

Theorem 2.1's proof never uses anything about the other points except through
``Ecost(c*)``, so the anchor expected point remains a 2-approximation of the
optimal uncertain 1-center of everything seen so far; the sketch simply
cannot evaluate the exact cost without a second pass, which is what the
reservoir estimate (and the exact :func:`finalise` helper, given a second
pass) are for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, check_positive_int
from ..cost.expected import expected_one_center_cost
from ..exceptions import NotSupportedError, ValidationError
from .dataset import UncertainDataset
from .point import UncertainPoint


@dataclass
class StreamingOneCenterSketch:
    """One-pass sketch for the uncertain 1-center problem.

    Parameters
    ----------
    reservoir_size:
        Number of uncertain points kept for cost estimation (memory knob).
    seed:
        Randomness for reservoir sampling.
    """

    reservoir_size: int = 32
    seed: int | np.random.Generator | None = 0

    def __post_init__(self) -> None:
        check_positive_int(self.reservoir_size, name="reservoir_size")
        self._rng = as_rng(self.seed)
        self._anchor: np.ndarray | None = None
        self._count = 0
        self._reservoir: list[UncertainPoint] = []

    # ------------------------------------------------------------------
    # Stream interface
    # ------------------------------------------------------------------
    def update(self, point: UncertainPoint) -> None:
        """Consume one uncertain point from the stream."""
        if not isinstance(point, UncertainPoint):
            raise ValidationError(f"expected an UncertainPoint, got {type(point).__name__}")
        if self._anchor is None:
            self._anchor = point.expected_point()
        elif point.dimension != self._anchor.shape[0]:
            raise ValidationError(
                f"stream dimension changed from {self._anchor.shape[0]} to {point.dimension}"
            )
        self._count += 1
        # Standard reservoir sampling keeps a uniform sample of the stream.
        if len(self._reservoir) < self.reservoir_size:
            self._reservoir.append(point)
        else:
            slot = int(self._rng.integers(0, self._count))
            if slot < self.reservoir_size:
                self._reservoir[slot] = point

    def extend(self, points) -> None:
        """Consume an iterable of uncertain points."""
        for point in points:
            self.update(point)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of uncertain points consumed so far."""
        return self._count

    @property
    def center(self) -> np.ndarray:
        """The current center (the anchor expected point, Theorem 2.1)."""
        if self._anchor is None:
            raise ValidationError("the sketch has not seen any point yet")
        return self._anchor.copy()

    @property
    def guaranteed_factor(self) -> float:
        """Approximation factor of :attr:`center` (Theorem 2.1's 2)."""
        return 2.0

    def estimated_cost(self) -> float:
        """Estimate ``Ecost(center)`` from the reservoir sample.

        The reservoir holds a uniform sample of the stream, so the expected
        max over the sample is a (downward-biased, consistent) estimate of
        the expected max over the stream; it is exact when the whole stream
        fits in the reservoir.
        """
        if self._anchor is None:
            raise ValidationError("the sketch has not seen any point yet")
        dataset = UncertainDataset(points=tuple(self._reservoir))
        return expected_one_center_cost(dataset, self._anchor)

    def finalise(self, dataset: UncertainDataset) -> float:
        """Exact cost of the sketch's center on a full dataset (second pass)."""
        if not dataset.metric.supports_expected_point:
            raise NotSupportedError("the streaming sketch targets Euclidean-style metrics")
        return expected_one_center_cost(dataset, self.center)
