"""Certain-point reductions of an uncertain dataset.

This is the heart of the paper's approach (Section 2): replace each uncertain
point ``P_i`` by a single *certain* representative, solve deterministic
k-center on the representatives, and read the centers back.

Two representatives are used by the theorems:

* **expected point** ``P̄_i = sum_j p_ij P_ij`` — Euclidean/normed spaces only
  (Theorems 2.1, 2.2, 2.4, 2.5);
* **per-point 1-center** ``P̃_i`` — the point of the space minimising the
  expected distance ``sum_j p_ij d(P_ij, q)`` (Theorems 2.6, 2.7).  In a
  finite metric the minimiser is found over every element; in a Euclidean
  space it is the probability-weighted geometric median (provided for
  ablations even though the paper uses ``P̄`` there).

A third, heuristic representative (the probability-weighted *medoid*: the
best of the point's own locations) is included for the ablation experiment
E12.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from ..deterministic.one_center import discrete_weighted_one_center
from ..exceptions import NotSupportedError, ValidationError
from ..geometry.median import geometric_median
from .dataset import UncertainDataset

RepresentativeKind = Literal["expected-point", "one-center", "medoid"]


def expected_point_reduction(dataset: UncertainDataset) -> np.ndarray:
    """Return the ``(n, d)`` array of expected points ``P̄_1 .. P̄_n``."""
    return dataset.expected_points()


def one_center_reduction(
    dataset: UncertainDataset,
    *,
    candidates: np.ndarray | None = None,
) -> np.ndarray:
    """Return the ``(n, d)`` array of per-point 1-centers ``P̃_1 .. P̃_n``.

    For a metric supporting expected points (Euclidean and friends) the
    1-center of a single uncertain point is its weighted geometric median and
    is computed with Weiszfeld iteration.  Otherwise the minimiser is taken
    over a finite candidate set: ``candidates`` if given, else every candidate
    the metric exposes for the dataset's locations (all elements of a finite
    metric).
    """
    metric = dataset.metric
    representatives = []
    if metric.supports_expected_point and candidates is None:
        for point in dataset.points:
            representatives.append(geometric_median(point.locations, point.probabilities))
        return np.vstack(representatives)

    if candidates is None:
        candidates = metric.candidate_centers(dataset.all_locations())
    for point in dataset.points:
        center, _ = discrete_weighted_one_center(point.locations, point.probabilities, metric, candidates)
        representatives.append(center)
    return np.vstack(representatives)


def medoid_reduction(dataset: UncertainDataset) -> np.ndarray:
    """Heuristic representative: the point's own best location.

    For each uncertain point, pick the location ``P_ij`` minimising the
    expected distance to the point's other locations.  Used only as an
    ablation comparator (E12); the paper proves nothing about it.
    """
    metric = dataset.metric
    representatives = []
    for point in dataset.points:
        expected = point.expected_distances_to_many(point.locations, metric)
        representatives.append(point.locations[int(np.argmin(expected))])
    return np.vstack(representatives)


def reduce_dataset(
    dataset: UncertainDataset,
    kind: RepresentativeKind = "expected-point",
    *,
    candidates: np.ndarray | None = None,
) -> np.ndarray:
    """Dispatch to one of the representative constructions by name."""
    if kind == "expected-point":
        if not dataset.metric.supports_expected_point:
            raise NotSupportedError(
                "expected-point reduction requires a normed vector space; "
                "use kind='one-center' in general metric spaces"
            )
        return expected_point_reduction(dataset)
    if kind == "one-center":
        return one_center_reduction(dataset, candidates=candidates)
    if kind == "medoid":
        return medoid_reduction(dataset)
    raise ValidationError(f"unknown representative kind {kind!r}")
