"""A collection of independent uncertain points plus its ambient metric."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .._validation import as_rng, check_same_dimension
from ..exceptions import NotSupportedError, ValidationError
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from .point import UncertainPoint


@dataclass(frozen=True)
class UncertainDataset:
    """An ordered collection of independent uncertain points.

    The dataset also carries the metric of the ambient space so that cost
    computations, assignments and solvers agree on distances without passing
    the metric separately everywhere.
    """

    points: tuple[UncertainPoint, ...]
    metric: Metric = field(default_factory=EuclideanMetric)

    def __post_init__(self) -> None:
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        if len(self.points) == 0:
            raise ValidationError("an uncertain dataset needs at least one point")
        for point in self.points:
            if not isinstance(point, UncertainPoint):
                raise ValidationError(f"expected UncertainPoint, got {type(point).__name__}")
        check_same_dimension(*(point.locations for point in self.points))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_locations(
        cls,
        locations: Sequence[Sequence[Sequence[float]]],
        probabilities: Sequence[Sequence[float]] | None = None,
        metric: Metric | None = None,
        labels: Sequence[str] | None = None,
    ) -> "UncertainDataset":
        """Build a dataset from nested location/probability lists.

        ``locations[i]`` is the list of candidate locations of point ``i``;
        ``probabilities[i]`` the matching probabilities (uniform if omitted).
        """
        points = []
        for index, location_list in enumerate(locations):
            label = labels[index] if labels is not None else f"P{index}"
            if probabilities is None:
                points.append(UncertainPoint.uniform(location_list, label=label))
            else:
                points.append(
                    UncertainPoint(
                        locations=np.asarray(location_list, dtype=float),
                        probabilities=np.asarray(probabilities[index], dtype=float),
                        label=label,
                    )
                )
        return cls(points=tuple(points), metric=metric or EuclideanMetric())

    @classmethod
    def from_certain_points(cls, points: np.ndarray, metric: Metric | None = None) -> "UncertainDataset":
        """Wrap a deterministic point set as degenerate uncertain points."""
        points = np.asarray(points, dtype=float)
        if points.ndim == 1:
            points = points.reshape(-1, 1)
        wrapped = tuple(UncertainPoint.certain(row, label=f"P{i}") for i, row in enumerate(points))
        return cls(points=wrapped, metric=metric or EuclideanMetric())

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of uncertain points (the paper's ``n``)."""
        return len(self.points)

    @property
    def dimension(self) -> int:
        """Dimension of the ambient space."""
        return self.points[0].dimension

    @property
    def max_support_size(self) -> int:
        """The paper's ``z = max_i z_i``."""
        return max(point.support_size for point in self.points)

    @property
    def total_locations(self) -> int:
        """Total number of locations across every point (``sum_i z_i``)."""
        return sum(point.support_size for point in self.points)

    @property
    def realization_count(self) -> int:
        """Number of distinct realizations ``prod_i z_i`` (may be huge)."""
        count = 1
        for point in self.points:
            count *= point.support_size
        return count

    def __len__(self) -> int:
        return self.size

    def __iter__(self) -> Iterator[UncertainPoint]:
        return iter(self.points)

    def __getitem__(self, index: int) -> UncertainPoint:
        return self.points[index]

    # ------------------------------------------------------------------
    # Stacked views used by solvers
    # ------------------------------------------------------------------
    def all_locations(self) -> np.ndarray:
        """Every location of every point stacked into one array."""
        return np.vstack([point.locations for point in self.points])

    def location_owners(self) -> np.ndarray:
        """For each row of :meth:`all_locations`, the owning point index."""
        owners = [np.full(point.support_size, index) for index, point in enumerate(self.points)]
        return np.concatenate(owners)

    def all_probabilities(self) -> np.ndarray:
        """Location probabilities aligned with :meth:`all_locations`."""
        return np.concatenate([point.probabilities for point in self.points])

    def expected_points(self) -> np.ndarray:
        """The paper's ``P̄_1 .. P̄_n`` stacked into an ``(n, d)`` array.

        Raises
        ------
        NotSupportedError
            If the dataset's metric does not support expected points (finite
            metrics); use the 1-center representatives instead.
        """
        if not self.metric.supports_expected_point:
            raise NotSupportedError(
                "expected points require a normed vector space metric; "
                "use one_center_representatives() for general metric spaces"
            )
        return np.vstack([point.expected_point() for point in self.points])

    # ------------------------------------------------------------------
    # Sampling and serialization
    # ------------------------------------------------------------------
    def sample_realization(self, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw one realization: an ``(n, d)`` array, one location per point."""
        generator = as_rng(rng)
        return np.vstack([point.sample(generator) for point in self.points])

    def sample_realizations(self, count: int, rng: int | np.random.Generator | None = None) -> np.ndarray:
        """Draw ``count`` realizations as a ``(count, n, d)`` array."""
        generator = as_rng(rng)
        realizations = np.empty((count, self.size, self.dimension))
        for point_index, point in enumerate(self.points):
            indices = generator.choice(point.support_size, p=point.probabilities, size=count)
            realizations[:, point_index, :] = point.locations[indices]
        return realizations

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (metric is *not* serialized)."""
        return {"points": [point.to_dict() for point in self.points]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any], metric: Metric | None = None) -> "UncertainDataset":
        """Inverse of :meth:`to_dict`."""
        points = tuple(UncertainPoint.from_dict(entry) for entry in payload.get("points", []))
        if not points:
            raise ValidationError("dataset payload contains no points")
        return cls(points=points, metric=metric or EuclideanMetric())

    def save_json(self, path: str | Path) -> None:
        """Write the dataset to a JSON file."""
        Path(path).write_text(json.dumps(self.to_dict(), indent=2))

    @classmethod
    def load_json(cls, path: str | Path, metric: Metric | None = None) -> "UncertainDataset":
        """Read a dataset previously written by :meth:`save_json`."""
        payload = json.loads(Path(path).read_text())
        return cls.from_dict(payload, metric=metric)

    # ------------------------------------------------------------------
    # Convenience transformations
    # ------------------------------------------------------------------
    def subset(self, indices: Iterable[int]) -> "UncertainDataset":
        """Dataset restricted to the uncertain points at ``indices``."""
        chosen = tuple(self.points[i] for i in indices)
        return UncertainDataset(points=chosen, metric=self.metric)

    def with_metric(self, metric: Metric) -> "UncertainDataset":
        """Same points, different ambient metric."""
        return UncertainDataset(points=self.points, metric=metric)
