"""Realization enumeration and sampling utilities.

A *realization* of an uncertain dataset fixes one location per uncertain
point; its probability is the product of the chosen locations' probabilities
(the points are independent).  Exhaustive enumeration is exponential
(``prod_i z_i`` realizations) and only used as ground truth on small
instances; Monte-Carlo sampling covers the rest.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator

import numpy as np

from .._validation import as_rng, check_positive_int
from ..exceptions import ValidationError
from .dataset import UncertainDataset

#: Refuse to enumerate more realizations than this (ground-truth use only).
MAX_ENUMERATED_REALIZATIONS = 2_000_000


@dataclass(frozen=True)
class Realization:
    """One realization of an uncertain dataset."""

    locations: np.ndarray
    probability: float
    choice_indices: tuple[int, ...]


def iter_realizations(dataset: UncertainDataset, *, max_realizations: int | None = MAX_ENUMERATED_REALIZATIONS) -> Iterator[Realization]:
    """Yield every realization of ``dataset`` with its probability.

    Raises
    ------
    ValidationError
        If the number of realizations exceeds ``max_realizations`` (pass
        ``None`` to disable the check — not recommended).
    """
    count = dataset.realization_count
    if max_realizations is not None and count > max_realizations:
        raise ValidationError(
            f"dataset has {count} realizations, more than the enumeration cap "
            f"{max_realizations}; use Monte-Carlo estimation instead"
        )
    supports = [range(point.support_size) for point in dataset.points]
    for choice in product(*supports):
        locations = np.vstack([dataset.points[i].locations[j] for i, j in enumerate(choice)])
        probability = 1.0
        for i, j in enumerate(choice):
            probability *= float(dataset.points[i].probabilities[j])
        yield Realization(locations=locations, probability=probability, choice_indices=tuple(choice))


def enumerate_realizations(dataset: UncertainDataset, *, max_realizations: int | None = MAX_ENUMERATED_REALIZATIONS) -> list[Realization]:
    """Materialise :func:`iter_realizations` into a list."""
    return list(iter_realizations(dataset, max_realizations=max_realizations))


def sample_realizations(
    dataset: UncertainDataset,
    count: int,
    rng: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Draw ``count`` independent realizations as a ``(count, n, d)`` array."""
    check_positive_int(count, name="count")
    return dataset.sample_realizations(count, rng=as_rng(rng))


def realization_probability(dataset: UncertainDataset, choice_indices: tuple[int, ...]) -> float:
    """Probability of the realization selecting ``choice_indices``."""
    if len(choice_indices) != dataset.size:
        raise ValidationError("choice_indices must pick one location per uncertain point")
    probability = 1.0
    for point, choice in zip(dataset.points, choice_indices):
        if not 0 <= choice < point.support_size:
            raise ValidationError(f"choice index {choice} out of range for support size {point.support_size}")
        probability *= float(point.probabilities[choice])
    return probability
