"""Uncertain-data model: points, datasets, realizations, reductions."""

from .dataset import UncertainDataset
from .point import UncertainPoint
from .realization import (
    MAX_ENUMERATED_REALIZATIONS,
    Realization,
    enumerate_realizations,
    iter_realizations,
    realization_probability,
    sample_realizations,
)
from .reduction import (
    RepresentativeKind,
    expected_point_reduction,
    medoid_reduction,
    one_center_reduction,
    reduce_dataset,
)
from .streaming import StreamingOneCenterSketch

__all__ = [
    "UncertainPoint",
    "UncertainDataset",
    "Realization",
    "iter_realizations",
    "enumerate_realizations",
    "sample_realizations",
    "realization_probability",
    "MAX_ENUMERATED_REALIZATIONS",
    "expected_point_reduction",
    "one_center_reduction",
    "medoid_reduction",
    "reduce_dataset",
    "RepresentativeKind",
    "StreamingOneCenterSketch",
]
