"""Metric-space substrate.

The paper's algorithms are parameterised by a metric space ``(X, d)``.  This
subpackage provides the :class:`Metric` interface plus concrete spaces:

* :class:`EuclideanMetric`, :class:`ManhattanMetric`, :class:`ChebyshevMetric`,
  :class:`MinkowskiMetric` — normed vector spaces (expected points supported);
* :class:`MatrixMetric` — explicit finite metric from a distance matrix;
* :class:`GraphMetric` — shortest-path metric of a weighted graph.
"""

from .base import Metric
from .euclidean import ChebyshevMetric, EuclideanMetric, ManhattanMetric, MinkowskiMetric
from .graph import GraphMetric
from .matrix import MatrixMetric

__all__ = [
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "MatrixMetric",
    "GraphMetric",
]
