"""Shortest-path metric of a weighted graph.

The graph metric is the canonical example of a finite, non-Euclidean metric
space: sensor networks, road networks and data-center topologies are the
database applications the paper's introduction motivates.  Distances are
all-pairs shortest-path lengths, precomputed once with networkx (Dijkstra) and
served from a :class:`~repro.metrics.matrix.MatrixMetric`.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import networkx as nx
import numpy as np

from ..exceptions import MetricError, ValidationError
from .matrix import MatrixMetric


class GraphMetric(MatrixMetric):
    """Finite metric induced by shortest paths in a weighted graph.

    Parameters
    ----------
    graph:
        An undirected :class:`networkx.Graph`.  Edge weights are read from
        ``weight`` (missing weights default to 1).  The graph must be
        connected, otherwise some distances would be infinite.
    weight:
        Name of the edge attribute holding the weight.
    """

    def __init__(self, graph: nx.Graph, *, weight: str = "weight"):
        if graph.number_of_nodes() == 0:
            raise ValidationError("graph metric requires a non-empty graph")
        if graph.is_directed():
            raise MetricError("graph metric requires an undirected graph")
        if any(data.get(weight, 1) < 0 for _, _, data in graph.edges(data=True)):
            raise MetricError("graph metric requires non-negative edge weights")
        if not nx.is_connected(graph):
            raise MetricError("graph metric requires a connected graph")

        self._nodes: list[Hashable] = list(graph.nodes())
        self._node_index: Mapping[Hashable, int] = {node: i for i, node in enumerate(self._nodes)}
        n = len(self._nodes)
        matrix = np.zeros((n, n), dtype=float)
        lengths = dict(nx.all_pairs_dijkstra_path_length(graph, weight=weight))
        for source, targets in lengths.items():
            i = self._node_index[source]
            for target, length in targets.items():
                matrix[i, self._node_index[target]] = float(length)
        # Shortest-path lengths already satisfy the metric axioms; skip the
        # O(n^3) validation pass.
        super().__init__(matrix, validate=False)

    @property
    def nodes(self) -> list[Hashable]:
        """Graph nodes in index order (index ``i`` encodes ``nodes[i]``)."""
        return list(self._nodes)

    def index_of(self, node: Hashable) -> int:
        """Return the element index of a graph node."""
        try:
            return self._node_index[node]
        except KeyError as exc:
            raise MetricError(f"node {node!r} is not in the graph") from exc

    def point_for(self, node: Hashable) -> np.ndarray:
        """Return the library point encoding of a graph node."""
        return self.element(self.index_of(node))

    def points_for(self, nodes: Sequence[Hashable]) -> np.ndarray:
        """Return point encodings for a sequence of graph nodes."""
        return np.array([[float(self.index_of(node))] for node in nodes])

    def node_of(self, point: np.ndarray | float) -> Hashable:
        """Return the graph node encoded by ``point``."""
        index = int(np.rint(np.asarray(point, dtype=float).reshape(-1)[0]))
        if not 0 <= index < self.size:
            raise MetricError(f"point index {index} out of range [0, {self.size})")
        return self._nodes[index]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(nodes={self.size})"
