"""Finite metric space defined by an explicit distance matrix.

Elements of the space are the integers ``0 .. n-1``; a *point* handed to the
rest of the library is a length-1 float vector holding the element index (the
same encoding the graph metric uses).  This is the natural substrate for the
paper's "general metric space" theorems (2.3, 2.6, 2.7) and for the
Guha–Munagala-style finite-metric baseline.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import MetricError, ValidationError
from .base import Metric


def _as_indices(points: np.ndarray | Sequence[float], size: int, *, name: str) -> np.ndarray:
    array = np.asarray(points, dtype=float)
    if array.ndim == 2:
        if array.shape[1] != 1:
            raise MetricError(f"{name}: finite-metric points must be 1-dimensional element indices")
        array = array[:, 0]
    array = np.atleast_1d(array)
    rounded = np.rint(array)
    if not np.allclose(array, rounded, atol=1e-9):
        raise MetricError(f"{name}: finite-metric points must be integer element indices, got {array!r}")
    indices = rounded.astype(int)
    if np.any(indices < 0) or np.any(indices >= size):
        raise MetricError(f"{name}: element index out of range [0, {size})")
    return indices


class MatrixMetric(Metric):
    """A finite metric given by an ``n x n`` symmetric distance matrix."""

    supports_expected_point = False

    def __init__(self, matrix: np.ndarray, *, validate: bool = True, atol: float = 1e-8):
        matrix = np.asarray(matrix, dtype=float)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValidationError(f"distance matrix must be square, got shape {matrix.shape}")
        if matrix.shape[0] == 0:
            raise ValidationError("distance matrix must be non-empty")
        if not np.all(np.isfinite(matrix)):
            raise ValidationError("distance matrix contains NaN or infinite entries")
        if validate:
            if np.any(matrix < -atol):
                raise MetricError("distance matrix has negative entries")
            if not np.allclose(matrix, matrix.T, atol=atol):
                raise MetricError("distance matrix is not symmetric")
            if np.any(np.abs(np.diag(matrix)) > atol):
                raise MetricError("distance matrix has a non-zero diagonal")
            # Triangle inequality: d(i, k) <= d(i, j) + d(j, k).
            n = matrix.shape[0]
            for j in range(n):
                via_j = matrix[:, j][:, None] + matrix[j, :][None, :]
                if np.any(matrix > via_j + atol):
                    raise MetricError("distance matrix violates the triangle inequality")
        self._matrix = np.maximum((matrix + matrix.T) / 2.0, 0.0)
        np.fill_diagonal(self._matrix, 0.0)

    @property
    def size(self) -> int:
        """Number of elements in the space."""
        return self._matrix.shape[0]

    @property
    def matrix(self) -> np.ndarray:
        """A read-only view of the underlying distance matrix."""
        view = self._matrix.view()
        view.flags.writeable = False
        return view

    def element(self, index: int) -> np.ndarray:
        """Return the library point encoding of element ``index``."""
        if not 0 <= int(index) < self.size:
            raise MetricError(f"element index {index} out of range [0, {self.size})")
        return np.array([float(index)])

    def all_elements(self) -> np.ndarray:
        """Return every element of the space as an ``(n, 1)`` point array."""
        return np.arange(self.size, dtype=float).reshape(-1, 1)

    def distance(self, a, b) -> float:
        ia = _as_indices(a, self.size, name="a")
        ib = _as_indices(b, self.size, name="b")
        if ia.size != 1 or ib.size != 1:
            raise MetricError("distance() expects single points; use pairwise() for batches")
        return float(self._matrix[ia[0], ib[0]])

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        ia = _as_indices(a, self.size, name="a")
        ib = _as_indices(b, self.size, name="b")
        return self._matrix[np.ix_(ia, ib)]

    def candidate_centers(self, points: np.ndarray) -> np.ndarray:
        """Centers may be any element of the finite space, not just inputs."""
        return self.all_elements()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(size={self.size})"
