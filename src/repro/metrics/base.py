"""Abstract metric-space interface used throughout the library.

The paper's algorithms are stated either for a Euclidean space or for a
general metric space.  The :class:`Metric` abstraction captures the minimal
interface both settings need:

* ``distance(a, b)`` — distance between two points,
* ``pairwise(A, B)`` — vectorised distance matrix,
* ``supports_expected_point`` — whether convex combinations of points are
  meaningful (true only for normed vector spaces, e.g. Euclidean), which the
  expected-point reduction of Theorems 2.1/2.2/2.4/2.5 requires,
* ``candidate_centers(points)`` — the set of positions a center may occupy.
  In a Euclidean space centers can live anywhere, but every algorithm in this
  library (like the ones cited by the paper) only ever *produces* centers from
  a finite candidate set; for finite metrics the candidates are the space's
  own elements.

Points are represented uniformly as 1-D ``float64`` numpy vectors.  Finite
metrics (graph or matrix based) represent a point as a length-1 vector holding
the integer element index; this keeps the uncertain-point machinery agnostic
of the underlying space.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

import numpy as np

from .._validation import as_point_array, as_single_point


class Metric(abc.ABC):
    """A metric space ``(X, d)``.

    Subclasses implement :meth:`distance` and :meth:`pairwise`; the remaining
    helpers have sensible default implementations in terms of those two.
    """

    #: Whether ``sum_i w_i x_i`` is a meaningful point of the space.  True for
    #: normed vector spaces (Euclidean / Minkowski); false for finite metrics.
    supports_expected_point: bool = False

    @abc.abstractmethod
    def distance(self, a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> float:
        """Return ``d(a, b)``."""

    @abc.abstractmethod
    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Return the ``(len(a), len(b))`` matrix of distances."""

    # ------------------------------------------------------------------
    # Default helpers
    # ------------------------------------------------------------------
    def distances_to_point(self, points: np.ndarray, target: np.ndarray) -> np.ndarray:
        """Vector of distances from each row of ``points`` to ``target``."""
        points = as_point_array(points)
        target = as_single_point(target)
        return self.pairwise(points, target.reshape(1, -1)).reshape(-1)

    def distance_to_set(self, point: np.ndarray, centers: np.ndarray) -> float:
        """Return ``min_{c in centers} d(point, c)``."""
        centers = as_point_array(centers, name="centers")
        point = as_single_point(point)
        return float(self.pairwise(point.reshape(1, -1), centers).min())

    def nearest_center(self, point: np.ndarray, centers: np.ndarray) -> tuple[int, float]:
        """Return ``(index, distance)`` of the closest center to ``point``."""
        centers = as_point_array(centers, name="centers")
        point = as_single_point(point)
        row = self.pairwise(point.reshape(1, -1), centers).reshape(-1)
        index = int(np.argmin(row))
        return index, float(row[index])

    def candidate_centers(self, points: np.ndarray) -> np.ndarray:
        """Finite set of candidate center positions for a point set.

        The default returns the points themselves (the "discrete" k-center
        candidate set), which is what general-metric algorithms use.  The
        Euclidean metric augments this in specific solvers, not here.
        """
        return as_point_array(points)

    def diameter(self, points: np.ndarray) -> float:
        """Return ``max_{a, b in points} d(a, b)``."""
        points = as_point_array(points)
        return float(self.pairwise(points, points).max())

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def check_axioms(self, points: Iterable[Sequence[float]] | np.ndarray, *, atol: float = 1e-8) -> bool:
        """Spot-check the metric axioms on a finite sample of points.

        Verifies symmetry, non-negativity, identity of indiscernibles on
        identical rows, and the triangle inequality over all triples of the
        sample.  Intended for tests and for validating user-supplied distance
        matrices; quadratic/cubic in the sample size.
        """
        sample = as_point_array(points)
        matrix = self.pairwise(sample, sample)
        if np.any(matrix < -atol):
            return False
        if not np.allclose(matrix, matrix.T, atol=atol):
            return False
        if np.any(np.abs(np.diag(matrix)) > atol):
            return False
        n = sample.shape[0]
        for i in range(n):
            # d(i, k) <= d(i, j) + d(j, k) for all j, k, vectorised per i.
            via = matrix[i, :, None] + matrix[:, :]
            if np.any(matrix[i, None, :] > via + atol):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
