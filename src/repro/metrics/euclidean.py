"""Normed vector-space metrics: Euclidean, Manhattan, Chebyshev, Minkowski.

These are the metrics for which the *expected point* of an uncertain point is
a meaningful element of the space (a convex combination of the possible
locations), which is what Theorems 2.1, 2.2, 2.4 and 2.5 of the paper rely
on.  Lemma 3.1 (``d(P̄, Q) <= E[d(P, Q)]``) only needs the triangle inequality
and absolute homogeneity of the norm, so every metric in this module exposes
``supports_expected_point = True``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .._validation import as_point_array, as_single_point
from ..exceptions import MetricError
from .base import Metric


class MinkowskiMetric(Metric):
    """The L_p metric on R^d for ``p >= 1`` (including ``p = inf``)."""

    supports_expected_point = True

    def __init__(self, order: float = 2.0):
        order = float(order)
        if not (order >= 1.0):
            raise MetricError(f"Minkowski order must satisfy p >= 1, got {order}")
        self.order = order

    def distance(self, a: Sequence[float] | np.ndarray, b: Sequence[float] | np.ndarray) -> float:
        va = as_single_point(a, name="a")
        vb = as_single_point(b, name="b")
        if va.shape != vb.shape:
            raise MetricError(f"dimension mismatch: {va.shape} vs {vb.shape}")
        return float(np.linalg.norm(va - vb, ord=self.order))

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = as_point_array(a, name="a")
        b = as_point_array(b, name="b")
        if a.shape[1] != b.shape[1]:
            raise MetricError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        diff = a[:, None, :] - b[None, :, :]
        if np.isinf(self.order):
            return np.abs(diff).max(axis=-1)
        if self.order == 2.0:
            return np.sqrt(np.maximum((diff * diff).sum(axis=-1), 0.0))
        if self.order == 1.0:
            return np.abs(diff).sum(axis=-1)
        return (np.abs(diff) ** self.order).sum(axis=-1) ** (1.0 / self.order)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(order={self.order})"


class EuclideanMetric(MinkowskiMetric):
    """The standard L_2 metric on R^d."""

    def __init__(self) -> None:
        super().__init__(order=2.0)

    def pairwise(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        a = as_point_array(a, name="a")
        b = as_point_array(b, name="b")
        if a.shape[1] != b.shape[1]:
            raise MetricError(f"dimension mismatch: {a.shape[1]} vs {b.shape[1]}")
        # ||x - y||^2 = ||x||^2 + ||y||^2 - 2 x.y: one BLAS product instead of
        # an (n, m, d) difference tensor.  The expansion cancels catastrophically
        # when x ~= y (the error floor is ~eps * ||x||^2, i.e. ~1e-7 *after* the
        # square root for unit-scale data — enough to report a nonzero
        # self-distance), so entries in the cancellation zone are recomputed
        # with the exact difference formula; d(x, x) is then exactly 0.
        sq_a = (a * a).sum(axis=1)[:, None]
        sq_b = (b * b).sum(axis=1)[None, :]
        squared = sq_a + sq_b - 2.0 * (a @ b.T)
        suspect = squared < 1e-8 * (sq_a + sq_b)
        if np.any(suspect):
            rows, cols = np.nonzero(suspect)
            difference = a[rows] - b[cols]
            squared[rows, cols] = (difference * difference).sum(axis=1)
        return np.sqrt(np.maximum(squared, 0.0))


class ManhattanMetric(MinkowskiMetric):
    """The L_1 (taxicab) metric on R^d."""

    def __init__(self) -> None:
        super().__init__(order=1.0)


class ChebyshevMetric(MinkowskiMetric):
    """The L_infinity metric on R^d."""

    def __init__(self) -> None:
        super().__init__(order=np.inf)
