"""Shared argument-validation helpers.

These helpers normalise user input into predictable numpy representations and
raise the library's own exception types with actionable messages.  They are
used by nearly every public entry point, so they are deliberately small,
dependency free (beyond numpy) and side-effect free.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .exceptions import (
    DimensionMismatchError,
    ProbabilityError,
    ValidationError,
)

#: Default absolute tolerance used when checking that probabilities sum to 1.
PROBABILITY_ATOL = 1e-9


def as_point_array(points: Iterable[Sequence[float]] | np.ndarray, *, name: str = "points") -> np.ndarray:
    """Convert ``points`` to a 2-D ``float64`` array of shape ``(n, d)``.

    One-dimensional input (a flat list of scalars) is interpreted as ``n``
    points in R^1 and reshaped to ``(n, 1)``.

    Raises
    ------
    ValidationError
        If the input is empty, ragged or not numeric.
    """
    try:
        array = np.asarray(points, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a numeric array-like, got {type(points).__name__}: {exc}") from exc
    if array.ndim == 1:
        array = array.reshape(-1, 1)
    if array.ndim != 2:
        raise ValidationError(f"{name} must be a 2-D array of shape (n, d); got shape {array.shape}")
    if array.shape[0] == 0:
        raise ValidationError(f"{name} must contain at least one point")
    if array.shape[1] == 0:
        raise ValidationError(f"{name} must have dimension >= 1")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite coordinates")
    return array


def as_single_point(point: Sequence[float] | float | np.ndarray, *, name: str = "point") -> np.ndarray:
    """Convert ``point`` to a 1-D ``float64`` coordinate vector."""
    array = np.asarray(point, dtype=float)
    if array.ndim == 0:
        array = array.reshape(1)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be a single coordinate vector; got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValidationError(f"{name} contains NaN or infinite coordinates")
    return array


def as_probability_vector(
    probabilities: Iterable[float] | np.ndarray,
    *,
    size: int | None = None,
    normalize: bool = False,
    name: str = "probabilities",
) -> np.ndarray:
    """Validate a discrete probability vector.

    Parameters
    ----------
    probabilities:
        The candidate probabilities.
    size:
        When given, the vector must have exactly this many entries.
    normalize:
        When true, a non-negative vector with a positive sum is rescaled to
        sum to one instead of being rejected.
    """
    try:
        vector = np.asarray(probabilities, dtype=float).reshape(-1)
    except (TypeError, ValueError) as exc:
        raise ProbabilityError(f"{name} must be numeric: {exc}") from exc
    if size is not None and vector.shape[0] != size:
        raise ProbabilityError(f"{name} must have length {size}, got {vector.shape[0]}")
    if vector.shape[0] == 0:
        raise ProbabilityError(f"{name} must be non-empty")
    if not np.all(np.isfinite(vector)):
        raise ProbabilityError(f"{name} contains NaN or infinite entries")
    if np.any(vector < -PROBABILITY_ATOL):
        raise ProbabilityError(f"{name} contains negative entries")
    vector = np.clip(vector, 0.0, None)
    total = float(vector.sum())
    if normalize:
        if total <= 0.0:
            raise ProbabilityError(f"{name} must have a positive sum to be normalised")
        return vector / total
    if abs(total - 1.0) > PROBABILITY_ATOL * max(1.0, vector.shape[0]):
        raise ProbabilityError(f"{name} must sum to 1 (got {total!r}); pass normalize=True to rescale")
    return vector / total


def check_same_dimension(*arrays: np.ndarray) -> int:
    """Check that every point array has the same dimension and return it."""
    dims = {int(a.shape[-1]) for a in arrays}
    if len(dims) > 1:
        raise DimensionMismatchError(f"mixed point dimensions: {sorted(dims)}")
    return dims.pop()


def check_positive_int(value: int, *, name: str, maximum: int | None = None) -> int:
    """Validate that ``value`` is a positive integer (optionally bounded)."""
    if not isinstance(value, (int, np.integer)) or isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got {type(value).__name__}")
    if value < 1:
        raise ValidationError(f"{name} must be >= 1, got {value}")
    if maximum is not None and value > maximum:
        raise ValidationError(f"{name} must be <= {maximum}, got {value}")
    return int(value)


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate an approximation slack parameter ``epsilon >= 0``."""
    try:
        value = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise ValidationError(f"{name} must be a float, got {type(epsilon).__name__}") from exc
    if not np.isfinite(value) or value < 0.0:
        raise ValidationError(f"{name} must be a finite value >= 0, got {value}")
    return value


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)
