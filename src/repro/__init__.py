"""uncertain-kcenter: the k-center problem for uncertain data.

A from-scratch reproduction of *"Improvements on the k-center Problem for
Uncertain Data"* (Alipour & Jafari, PODS 2018): uncertain points are discrete
distributions over possible locations, and the goal is to pick ``k`` centers
minimising the expected maximum distance over realizations.

Quickstart
----------
>>> import numpy as np
>>> from repro import UncertainPoint, UncertainDataset, solve_unrestricted_assigned
>>> points = [
...     UncertainPoint(locations=[[0.0, 0.0], [0.5, 0.2]], probabilities=[0.7, 0.3]),
...     UncertainPoint(locations=[[5.0, 5.0], [5.3, 4.9]], probabilities=[0.5, 0.5]),
...     UncertainPoint(locations=[[0.2, -0.1], [0.1, 0.3]], probabilities=[0.6, 0.4]),
... ]
>>> dataset = UncertainDataset(points=tuple(points))
>>> result = solve_unrestricted_assigned(dataset, k=2)
>>> result.centers.shape
(2, 2)

The public API re-exported here covers the data model, the cost engines, the
paper's algorithms (Theorems 2.1-2.7), the assignment rules, the deterministic
k-center substrate, the baselines, the synthetic workloads and the experiment
harness that regenerates Table 1.
"""

from __future__ import annotations

from .algorithms import (
    DETERMINISTIC_SOLVERS,
    ONE_CENTER_EXPECTED_POINT_FACTOR,
    RESTRICTED_ED_VS_UNRESTRICTED_FACTOR,
    UncertainKCenterResult,
    best_expected_point_one_center,
    exact_uncertain_one_center_discrete,
    expected_point_one_center,
    refined_uncertain_one_center,
    restricted_euclidean_factor,
    solve_facility_restricted,
    solve_metric_unrestricted,
    solve_restricted_assigned,
    solve_uncertain_kmeans,
    solve_uncertain_kmedian,
    solve_unrestricted_assigned,
    unrestricted_euclidean_factor,
    unrestricted_metric_factor,
)
from .assignments import (
    ASSIGNMENT_POLICIES,
    AssignmentPolicy,
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
    OptimalAssignment,
)
from .baselines import (
    brute_force_restricted_assigned,
    brute_force_unassigned,
    brute_force_unrestricted_assigned,
    cormode_mcgregor_baseline,
    guha_munagala_baseline,
    wang_zhang_1d,
)
from .bounds import assigned_cost_lower_bound, per_point_lower_bound
from .cost import (
    AssignedCostEvaluator,
    CostContext,
    LocalSearchSweep,
    MonteCarloEstimate,
    assigned_cost_evaluator,
    cost_context,
    enumerate_expected_cost_assigned,
    enumerate_expected_cost_unassigned,
    enumerate_expected_max,
    expected_cost_assigned,
    expected_cost_unassigned,
    expected_distance_matrix,
    expected_max_batch,
    expected_max_batch_values,
    expected_max_of_independent,
    expected_one_center_cost,
    monte_carlo_cost_assigned,
    monte_carlo_cost_unassigned,
)
from .deterministic import (
    KCenterResult,
    epsilon_kcenter,
    exact_discrete_kcenter,
    exact_euclidean_kcenter,
    exact_k_supplier,
    gonzalez_kcenter,
    hochbaum_shmoys_kcenter,
    k_supplier,
    one_dimensional_kcenter,
)
from .exceptions import (
    ConvergenceError,
    DimensionMismatchError,
    InfeasibleError,
    MetricError,
    NotSupportedError,
    ProbabilityError,
    ReproError,
    ValidationError,
)
from .geometry import Ball, geometric_median, smallest_enclosing_ball
from .io import dataset_from_records, dump_location_table, load_location_table
from .metrics import (
    ChebyshevMetric,
    EuclideanMetric,
    GraphMetric,
    ManhattanMetric,
    MatrixMetric,
    Metric,
    MinkowskiMetric,
)
from .runtime import ContextStore, available_workers, parallel_map
from .uncertain import (
    UncertainDataset,
    UncertainPoint,
    enumerate_realizations,
    expected_point_reduction,
    medoid_reduction,
    one_center_reduction,
    reduce_dataset,
    sample_realizations,
)
from .workloads import (
    EUCLIDEAN_WORKLOADS,
    WorkloadSpec,
    anisotropic_clusters,
    gaussian_clusters,
    graph_uncertain_workload,
    heavy_tailed,
    line_workload,
    random_graph_metric,
    uniform_cloud,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "UncertainPoint",
    "UncertainDataset",
    "enumerate_realizations",
    "sample_realizations",
    "expected_point_reduction",
    "one_center_reduction",
    "medoid_reduction",
    "reduce_dataset",
    # metrics
    "Metric",
    "EuclideanMetric",
    "ManhattanMetric",
    "ChebyshevMetric",
    "MinkowskiMetric",
    "MatrixMetric",
    "GraphMetric",
    # geometry
    "Ball",
    "smallest_enclosing_ball",
    "geometric_median",
    # deterministic substrate
    "KCenterResult",
    "gonzalez_kcenter",
    "hochbaum_shmoys_kcenter",
    "epsilon_kcenter",
    "exact_discrete_kcenter",
    "exact_euclidean_kcenter",
    "one_dimensional_kcenter",
    "k_supplier",
    "exact_k_supplier",
    # tabular I/O
    "dataset_from_records",
    "load_location_table",
    "dump_location_table",
    # cost engines
    "expected_max_of_independent",
    "expected_max_batch",
    "expected_max_batch_values",
    "AssignedCostEvaluator",
    "CostContext",
    "LocalSearchSweep",
    "assigned_cost_evaluator",
    "cost_context",
    "enumerate_expected_max",
    "expected_cost_assigned",
    "expected_cost_unassigned",
    "expected_one_center_cost",
    "expected_distance_matrix",
    "enumerate_expected_cost_assigned",
    "enumerate_expected_cost_unassigned",
    "MonteCarloEstimate",
    "monte_carlo_cost_assigned",
    "monte_carlo_cost_unassigned",
    # execution runtime
    "ContextStore",
    "parallel_map",
    "available_workers",
    # assignments
    "AssignmentPolicy",
    "ExpectedDistanceAssignment",
    "ExpectedPointAssignment",
    "OneCenterAssignment",
    "NearestLocationAssignment",
    "OptimalAssignment",
    "ASSIGNMENT_POLICIES",
    # the paper's algorithms
    "UncertainKCenterResult",
    "expected_point_one_center",
    "best_expected_point_one_center",
    "exact_uncertain_one_center_discrete",
    "refined_uncertain_one_center",
    "solve_restricted_assigned",
    "solve_unrestricted_assigned",
    "solve_metric_unrestricted",
    "solve_uncertain_kmedian",
    "solve_uncertain_kmeans",
    "solve_facility_restricted",
    "restricted_euclidean_factor",
    "unrestricted_euclidean_factor",
    "unrestricted_metric_factor",
    "ONE_CENTER_EXPECTED_POINT_FACTOR",
    "RESTRICTED_ED_VS_UNRESTRICTED_FACTOR",
    "DETERMINISTIC_SOLVERS",
    # baselines and bounds
    "brute_force_restricted_assigned",
    "brute_force_unrestricted_assigned",
    "brute_force_unassigned",
    "guha_munagala_baseline",
    "cormode_mcgregor_baseline",
    "wang_zhang_1d",
    "assigned_cost_lower_bound",
    "per_point_lower_bound",
    # workloads
    "WorkloadSpec",
    "gaussian_clusters",
    "uniform_cloud",
    "heavy_tailed",
    "line_workload",
    "anisotropic_clusters",
    "graph_uncertain_workload",
    "random_graph_metric",
    "EUCLIDEAN_WORKLOADS",
    # exceptions
    "ReproError",
    "ValidationError",
    "ProbabilityError",
    "DimensionMismatchError",
    "MetricError",
    "NotSupportedError",
    "ConvergenceError",
    "InfeasibleError",
]
