"""Deterministic, seed-driven fault injection for the runtime (REPRO_FAULTS).

The recovery paths PR 8 added to :mod:`repro.runtime` — chunk-granular
crash recovery, transport fallback on a failed shared-memory attach,
corrupt-spill tolerance, deadline truncation — are exactly the paths that
never execute on a healthy box, which means they rot unless CI can trigger
them on demand.  This module is the trigger: a registry of *fault kinds*
with injection points inside ``runtime/pool.py``, ``runtime/shm.py`` and
``runtime/store.py``, armed through the :mod:`repro._env` registry::

    REPRO_FAULTS=crash:p=0.05,slow:p=0.1:ms=200,shm_attach,spill_corrupt

* ``crash`` — the worker process dies with ``os._exit`` (no cleanup, no
  atexit: the honest simulation of an OOM kill) before running a chunk;
* ``slow`` — the chunk dispatch sleeps ``ms`` milliseconds first, which is
  how the ``time_budget`` deadline path gets exercised;
* ``shm_attach`` — a worker's shared-memory segment attach raises
  :class:`FaultInjected`, driving the per-call fallback to the
  ``("pickled", ...)`` transport;
* ``spill_corrupt`` — a context spill write truncates its payload, driving
  the checksum-verified read path's delete-and-rebuild recovery;
* ``serve_reject`` — the server's admission path (PR 9, :mod:`repro.serve`)
  rejects the request with a 503 + ``Retry-After`` as if overloaded,
  driving the client's retry/backoff machinery deterministically.

Determinism
-----------
Decisions are **stateless and seed-driven**: whether a site fires is a pure
hash of ``(kind, seed, site, token)`` where the token identifies the unit of
work (the pool passes ``(chunk_index, attempt)``).  The same spec therefore
injects the same faults at the same chunks on every run — a chaos CI job is
reproducible — and including the *attempt* in the token is what makes crash
recovery converge: a chunk whose first attempt fires re-rolls on its retry
instead of killing every fresh worker forever.

Like :mod:`repro.sanitize` (the pattern this module follows), everything is
zero-cost when off — every injection point is one trampoline call that
returns immediately while no fault is armed — unknown kinds in the spec are
a hard error rather than a silently ignored typo, and the armed spec
propagates into pool workers through the same initargs channel the shared
incumbent and the sanitizers use.
"""

from __future__ import annotations

import hashlib
import os
import time
from dataclasses import dataclass
from typing import Iterable

from ._env import env_str

#: Every fault kind this module can inject, in REPRO_FAULTS spelling.
FAULT_KINDS: tuple[str, ...] = (
    "crash",
    "slow",
    "shm_attach",
    "spill_corrupt",
    "serve_reject",
)

#: Exit status an injected crash dies with (any nonzero breaks the pool;
#: a recognizable value keeps post-mortems honest about who killed whom).
CRASH_EXIT_CODE = 70

#: Default injected latency for ``slow`` when the spec names no ``ms``.
DEFAULT_SLOW_MS = 100


class FaultInjected(RuntimeError):
    """Raised by an injection point standing in for a real environment fault."""


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault kind with its firing parameters."""

    kind: str
    #: Probability a site fires, decided by the deterministic hash draw.
    probability: float = 1.0
    #: Injected latency in milliseconds (``slow`` only).
    delay_ms: int = DEFAULT_SLOW_MS
    #: Seed folded into every draw, so distinct chaos runs are cheap.
    seed: int = 0

    def render(self) -> str:
        """The spec in parseable ``kind:p=..`` form (for pool initargs)."""
        parts = [self.kind, f"p={self.probability:g}"]
        if self.kind == "slow":
            parts.append(f"ms={self.delay_ms}")
        if self.seed:
            parts.append(f"seed={self.seed}")
        return ":".join(parts)


_armed: dict[str, FaultSpec] = {}


def parse_spec(raw: str | None) -> tuple[FaultSpec, ...]:
    """Parse a ``REPRO_FAULTS`` value; unknown kinds or keys are hard errors.

    A typo like ``REPRO_FAULTS=crsh:p=0.1`` silently injecting nothing would
    defeat the point of a chaos run, so unknown names raise (the same
    contract as :func:`repro.sanitize.parse_names`).
    """
    if not raw:
        return ()
    specs: list[FaultSpec] = []
    for entry in raw.split(","):
        entry = entry.strip()
        if not entry:
            continue
        kind, _, params = entry.partition(":")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {kind!r} in REPRO_FAULTS;"
                f" valid kinds: {', '.join(FAULT_KINDS)}"
            )
        probability = 1.0
        delay_ms = DEFAULT_SLOW_MS
        seed = 0
        for part in params.split(":") if params else ():
            key, separator, value = part.partition("=")
            key = key.strip()
            if not separator:
                raise ValueError(
                    f"malformed fault parameter {part!r} for {kind!r}; expected key=value"
                )
            try:
                if key == "p":
                    probability = float(value)
                elif key == "ms":
                    delay_ms = int(value)
                elif key == "seed":
                    seed = int(value)
                else:
                    raise ValueError(
                        f"unknown fault parameter {key!r} for {kind!r};"
                        " valid parameters: p, ms, seed"
                    )
            except (TypeError, OverflowError) as error:  # pragma: no cover - defensive
                raise ValueError(f"bad fault parameter {part!r} for {kind!r}") from error
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"fault probability must be within [0, 1], got {probability!r}")
        if delay_ms < 0:
            raise ValueError(f"fault delay must be non-negative, got {delay_ms!r}")
        specs.append(
            FaultSpec(kind=kind, probability=probability, delay_ms=delay_ms, seed=seed)
        )
    return tuple(specs)


def set_enabled(spec: str | Iterable[FaultSpec] | None) -> None:
    """Arm exactly the faults in ``spec`` (a raw string or parsed specs).

    ``None`` / ``""`` / ``()`` disarm everything.  This is both the
    programmatic switch (benchmarks, tests) and the worker-side receiver of
    the initargs handoff.
    """
    parsed = parse_spec(spec) if isinstance(spec, str) else tuple(spec or ())
    _armed.clear()
    for fault in parsed:
        _armed[fault.kind] = fault


def enabled(kind: str) -> bool:
    """Whether ``kind`` is armed (injection points never need this directly)."""
    return kind in _armed


def active(kind: str) -> FaultSpec | None:
    """The armed spec for ``kind``, if any."""
    return _armed.get(kind)


def enabled_spec() -> str:
    """The armed faults as one parseable string (for pool initargs)."""
    return ",".join(_armed[kind].render() for kind in FAULT_KINDS if kind in _armed)


def _fires(spec: FaultSpec, site: str, token: object) -> bool:
    """Stateless deterministic draw: pure hash of (kind, seed, site, token)."""
    if spec.probability >= 1.0:
        return True
    if spec.probability <= 0.0:
        return False
    digest = hashlib.sha256(
        f"{spec.kind}|{spec.seed}|{site}|{token!r}".encode()
    ).digest()
    return int.from_bytes(digest[:8], "big") < spec.probability * 2.0**64


def inject(kind: str, site: str, token: object = None) -> bool:
    """One injection point: fire fault ``kind`` at ``site`` if armed.

    Zero-cost when nothing is armed (one empty-dict lookup).  Returns
    ``True`` when the fault fired and execution continues (``slow``,
    ``spill_corrupt``, ``serve_reject`` — the caller applies the corruption
    or rejection itself so the fault model stays next to the path it
    perturbs); ``crash`` never returns and ``shm_attach`` raises
    :class:`FaultInjected`.  ``token`` identifies the unit of work so
    retries re-roll deterministically.
    """
    spec = _armed.get(kind)
    if spec is None:
        return False
    if not _fires(spec, site, token):
        return False
    if kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if kind == "slow":
        time.sleep(spec.delay_ms / 1000.0)
        return True
    if kind == "shm_attach":
        raise FaultInjected(f"injected shared-memory attach failure at {site} (token={token!r})")
    return True


_initial = env_str("REPRO_FAULTS")
if _initial is not None:
    set_enabled(parse_spec(_initial))


__all__ = [
    "CRASH_EXIT_CODE",
    "DEFAULT_SLOW_MS",
    "FAULT_KINDS",
    "FaultInjected",
    "FaultSpec",
    "active",
    "enabled",
    "enabled_spec",
    "inject",
    "parse_spec",
    "set_enabled",
]
