"""Assignment policies for the restricted assigned k-center problem.

In the *assigned* versions of the problem every realization of an uncertain
point ``P_i`` goes to the same center ``A(P_i)``.  A *restricted* assignment
fixes the rule ``A`` in advance as a function of the uncertain points and the
centers; the paper studies three such rules (expected distance, expected
point and 1-center assignments), implemented as subclasses here.

An :class:`AssignmentPolicy` maps ``(dataset, centers)`` to an integer array
``assignment`` with ``assignment[i]`` the index of the center the ``i``-th
uncertain point is assigned to.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING

import numpy as np

from .._validation import as_point_array
from ..uncertain.dataset import UncertainDataset

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (context imports cost)
    from ..cost.context import CostContext


class AssignmentPolicy(abc.ABC):
    """Rule assigning every uncertain point to one of the given centers."""

    #: Short machine-readable identifier used in reports and experiment rows.
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        """Return ``assignment[i]`` = index of the center for point ``i``."""

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray | None:
        """``(n, m)`` score matrix when the rule is "argmin of a score".

        Every restricted rule of the paper (ED, EP, OC) and the naive
        nearest-mode comparator assign each point to the candidate minimising
        a per-(point, candidate) score; exposing the matrix lets batch
        enumerators (brute force over candidate subsets, the shared
        :class:`~repro.cost.context.CostContext`) compute the rule's
        assignment for *every* subset with one argmin instead of calling
        :meth:`assign` per subset.  Rules that are not of this shape (e.g.
        local-search optimal assignment) return ``None``.
        """
        return None

    def chunk_assignments(self, context: "CostContext", subset_rows: np.ndarray) -> np.ndarray:
        """Batched assignments for a ``(B, kk)`` chunk of candidate subsets.

        Returns a ``(B, n)`` array of **global candidate indices** (columns
        of ``context.candidates``): row ``b`` assigns point ``i`` to
        candidate ``out[b, i]`` drawn from ``subset_rows[b]``.  The
        brute-force black-box shards call this once per chunk instead of
        once per subset, so score-matrix rules pay one
        :meth:`candidate_scores` evaluation for thousands of subsets.

        The default covers both policy shapes: an ``(n, m)`` score matrix
        becomes one batched argmin through
        :meth:`repro.cost.context.CostContext.score_assignments`; a
        score-less rule falls back to per-row :meth:`assign` calls over the
        subset's candidate locations (bit-identical to the unbatched path —
        the same ``assign`` on the same centers), translating local labels
        back to global columns.  Subclasses whose rule has cheaper batch
        structure (e.g. local search over a shared evaluator) may override.
        """
        subset_rows = np.atleast_2d(np.asarray(subset_rows, dtype=int))
        scores = self.candidate_scores(context.dataset, context.candidates)
        if scores is not None:
            return context.score_assignments(scores, subset_rows)
        out = np.empty((subset_rows.shape[0], context.size), dtype=int)
        for row_index, columns in enumerate(subset_rows):
            labels = self(context.dataset, context.candidates[columns])
            out[row_index] = columns[labels]
        return out

    def __call__(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        centers = as_point_array(centers, name="centers")
        assignment = np.asarray(self.assign(dataset, centers), dtype=int).reshape(-1)
        if assignment.shape[0] != dataset.size:
            raise RuntimeError(
                f"{type(self).__name__} returned {assignment.shape[0]} labels for {dataset.size} points"
            )
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
