"""Assignment policies for the restricted assigned k-center problem.

In the *assigned* versions of the problem every realization of an uncertain
point ``P_i`` goes to the same center ``A(P_i)``.  A *restricted* assignment
fixes the rule ``A`` in advance as a function of the uncertain points and the
centers; the paper studies three such rules (expected distance, expected
point and 1-center assignments), implemented as subclasses here.

An :class:`AssignmentPolicy` maps ``(dataset, centers)`` to an integer array
``assignment`` with ``assignment[i]`` the index of the center the ``i``-th
uncertain point is assigned to.
"""

from __future__ import annotations

import abc

import numpy as np

from .._validation import as_point_array
from ..uncertain.dataset import UncertainDataset


class AssignmentPolicy(abc.ABC):
    """Rule assigning every uncertain point to one of the given centers."""

    #: Short machine-readable identifier used in reports and experiment rows.
    name: str = "abstract"

    @abc.abstractmethod
    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        """Return ``assignment[i]`` = index of the center for point ``i``."""

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray | None:
        """``(n, m)`` score matrix when the rule is "argmin of a score".

        Every restricted rule of the paper (ED, EP, OC) and the naive
        nearest-mode comparator assign each point to the candidate minimising
        a per-(point, candidate) score; exposing the matrix lets batch
        enumerators (brute force over candidate subsets, the shared
        :class:`~repro.cost.context.CostContext`) compute the rule's
        assignment for *every* subset with one argmin instead of calling
        :meth:`assign` per subset.  Rules that are not of this shape (e.g.
        local-search optimal assignment) return ``None``.
        """
        return None

    def __call__(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        centers = as_point_array(centers, name="centers")
        assignment = np.asarray(self.assign(dataset, centers), dtype=int).reshape(-1)
        if assignment.shape[0] != dataset.size:
            raise RuntimeError(
                f"{type(self).__name__} returned {assignment.shape[0]} labels for {dataset.size} points"
            )
        return assignment

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
