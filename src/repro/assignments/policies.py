"""Concrete assignment policies: ED, EP, OC, nearest-location, and optimal.

* :class:`ExpectedDistanceAssignment` — ``A(P_i) = argmin_c E[d(P_i, c)]``
  (Wang–Zhang's rule; the paper's ``ED``).
* :class:`ExpectedPointAssignment` — ``A(P_i) = argmin_c d(P̄_i, c)``
  (the paper's new ``EP`` rule; Euclidean-style spaces only).
* :class:`OneCenterAssignment` — ``A(P_i) = argmin_c d(P̃_i, c)`` where
  ``P̃_i`` is the per-point 1-center (the paper's new ``OC`` rule; any
  metric).
* :class:`NearestLocationAssignment` — assigns to the center nearest to the
  point's most probable location; a naive comparator, no guarantee.
* :class:`OptimalAssignment` — the assignment minimising the true assigned
  expected cost for the *given* centers, found by local improvement over
  single-point moves (exact for ``n = 1`` trivially; in general a
  high-quality reference used when computing unrestricted optima on small
  instances together with exhaustive search, see
  :mod:`repro.baselines.brute_force`).
"""

from __future__ import annotations

import numpy as np

from ..cost.context import CostContext
from ..cost.expected import expected_distance_matrix
from ..exceptions import NotSupportedError, ValidationError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import one_center_reduction
from .base import AssignmentPolicy


class ExpectedDistanceAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center of minimum expected distance."""

    name = "expected-distance"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        matrix = expected_distance_matrix(dataset, centers)
        return matrix.argmin(axis=1)

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray:
        return expected_distance_matrix(dataset, candidates)


class ExpectedPointAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center nearest its expected point."""

    name = "expected-point"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        return self.candidate_scores(dataset, centers).argmin(axis=1)

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray:
        if not dataset.metric.supports_expected_point:
            raise NotSupportedError(
                "the expected-point assignment needs a normed vector space metric"
            )
        expected_points = dataset.expected_points()
        return dataset.metric.pairwise(expected_points, candidates)


class OneCenterAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center nearest its own 1-center."""

    name = "one-center"

    def __init__(self, candidates: np.ndarray | None = None):
        self._candidates = candidates

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        return self.candidate_scores(dataset, centers).argmin(axis=1)

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray:
        representatives = one_center_reduction(dataset, candidates=self._candidates)
        return dataset.metric.pairwise(representatives, candidates)


class NearestLocationAssignment(AssignmentPolicy):
    """Assign to the center nearest the point's most probable location."""

    name = "nearest-mode-location"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        return self.candidate_scores(dataset, centers).argmin(axis=1)

    def candidate_scores(self, dataset: UncertainDataset, candidates: np.ndarray) -> np.ndarray:
        modes = np.vstack(
            [point.locations[int(np.argmax(point.probabilities))] for point in dataset.points]
        )
        return dataset.metric.pairwise(modes, candidates)


class OptimalAssignment(AssignmentPolicy):
    """Best-response assignment for the *true* assigned expected cost.

    Starts from the expected-distance assignment and repeatedly moves single
    uncertain points to the center that lowers the exact assigned expected
    cost until no single move improves.  Because the objective is an
    expectation of a maximum the best response for a point depends on the
    others; single-move local search converges (the cost strictly decreases)
    but is not guaranteed to reach the global optimum — exhaustive search over
    all ``k^n`` assignments (see the brute-force baseline) provides the
    ground truth on small instances and agrees with this policy on every
    instance in the test suite.
    """

    name = "optimal-local"

    def __init__(self, max_rounds: int = 20, context: CostContext | None = None):
        self.max_rounds = max_rounds
        self._context = context

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        k = centers.shape[0]
        context = self._context
        if context is not None:
            if context.dataset is not dataset or not np.array_equal(context.candidates, centers):
                raise ValidationError(
                    "OptimalAssignment needs a CostContext built for exactly this "
                    "dataset and these centers (dataset or candidate set mismatch)"
                )
            # `expected` pins the supports it derives from, so the evaluator
            # below reuses the same metric pass — one pass for the whole
            # polish, with the ED seed assignment coming from the cache.
            assignment = context.expected.argmin(axis=1)
        else:
            assignment = ExpectedDistanceAssignment().assign(dataset, centers)
        if k == 1:
            return assignment
        # Incremental exact evaluation through the shared service: the sorted
        # union sweep is built once per round state (LocalSearchSweep) and
        # each point's rest profile is divided out of it, so neither the
        # union nor any candidate column is re-sorted per move.
        if context is None:
            context = CostContext(dataset, centers)
        evaluator = context.evaluator
        sweep = evaluator.local_search_sweep(assignment)
        all_centers = np.arange(k)
        best_cost = sweep.cost()
        for _ in range(self.max_rounds):
            improved = False
            for point_index in range(dataset.size):
                current = int(assignment[point_index])
                profile = sweep.rest_profile(point_index)
                costs = evaluator.move_costs(profile, all_centers)
                best_center = int(np.argmin(costs))
                # The tolerance is relative: when the maximum is dominated by
                # one point, moving the others leaves the cost *exactly*
                # unchanged, and an absolute threshold below one ulp would
                # accept last-bit noise as an improvement.
                tolerance = 1e-12 * max(1.0, abs(best_cost))
                if best_center != current and costs[best_center] < best_cost - tolerance:
                    assignment[point_index] = best_center
                    sweep.apply_move(point_index, best_center)
                    best_cost = float(costs[best_center])
                    improved = True
            if not improved:
                break
        return assignment

    def chunk_assignments(self, context: CostContext, subset_rows: np.ndarray) -> np.ndarray:
        """Batched local search sharing one evaluator across the whole chunk.

        The unbatched path builds a fresh ``CostContext`` (metric pass +
        sorted-column build) per subset; here every subset's local search
        runs over the *shared* full-candidate evaluator — its incremental
        machinery takes global column indices, so restricting moves to
        ``subset_rows[b]`` is just passing that row as the candidate set.
        The ED seed for all rows comes from one batched argmin.  Per row
        this is the same single-point-move loop as :meth:`assign` (same
        seed, same round cap, same relative tolerance, same strict-decrease
        acceptance), so the labels are bit-identical to the unbatched
        policy called on a context restricted to the row's candidates.
        """
        subset_rows = np.atleast_2d(np.asarray(subset_rows, dtype=int))
        assignments = context.ed_assignments(subset_rows)  # (B, n) global columns
        if subset_rows.shape[1] == 1 or context.size == 1:
            return assignments
        evaluator = context.evaluator
        for row_index, columns in enumerate(subset_rows):
            assignment = assignments[row_index]
            sweep = evaluator.local_search_sweep(assignment)
            best_cost = sweep.cost()
            for _ in range(self.max_rounds):
                improved = False
                for point_index in range(context.size):
                    current = int(assignment[point_index])
                    profile = sweep.rest_profile(point_index)
                    costs = evaluator.move_costs(profile, columns)
                    best_local = int(np.argmin(costs))
                    best_column = int(columns[best_local])
                    tolerance = 1e-12 * max(1.0, abs(best_cost))
                    if best_column != current and costs[best_local] < best_cost - tolerance:
                        assignment[point_index] = best_column
                        sweep.apply_move(point_index, best_column)
                        best_cost = float(costs[best_local])
                        improved = True
                if not improved:
                    break
        return assignments


#: Registry used by the CLI and the experiment harness.
ASSIGNMENT_POLICIES: dict[str, type[AssignmentPolicy]] = {
    ExpectedDistanceAssignment.name: ExpectedDistanceAssignment,
    ExpectedPointAssignment.name: ExpectedPointAssignment,
    OneCenterAssignment.name: OneCenterAssignment,
    NearestLocationAssignment.name: NearestLocationAssignment,
    OptimalAssignment.name: OptimalAssignment,
}
