"""Concrete assignment policies: ED, EP, OC, nearest-location, and optimal.

* :class:`ExpectedDistanceAssignment` — ``A(P_i) = argmin_c E[d(P_i, c)]``
  (Wang–Zhang's rule; the paper's ``ED``).
* :class:`ExpectedPointAssignment` — ``A(P_i) = argmin_c d(P̄_i, c)``
  (the paper's new ``EP`` rule; Euclidean-style spaces only).
* :class:`OneCenterAssignment` — ``A(P_i) = argmin_c d(P̃_i, c)`` where
  ``P̃_i`` is the per-point 1-center (the paper's new ``OC`` rule; any
  metric).
* :class:`NearestLocationAssignment` — assigns to the center nearest to the
  point's most probable location; a naive comparator, no guarantee.
* :class:`OptimalAssignment` — the assignment minimising the true assigned
  expected cost for the *given* centers, found by local improvement over
  single-point moves (exact for ``n = 1`` trivially; in general a
  high-quality reference used when computing unrestricted optima on small
  instances together with exhaustive search, see
  :mod:`repro.baselines.brute_force`).
"""

from __future__ import annotations

import numpy as np

from ..cost.expected import (
    assigned_cost_evaluator,
    expected_distance_matrix,
)
from ..exceptions import NotSupportedError
from ..uncertain.dataset import UncertainDataset
from ..uncertain.reduction import one_center_reduction
from .base import AssignmentPolicy


class ExpectedDistanceAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center of minimum expected distance."""

    name = "expected-distance"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        matrix = expected_distance_matrix(dataset, centers)
        return matrix.argmin(axis=1)


class ExpectedPointAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center nearest its expected point."""

    name = "expected-point"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        if not dataset.metric.supports_expected_point:
            raise NotSupportedError(
                "the expected-point assignment needs a normed vector space metric"
            )
        expected_points = dataset.expected_points()
        matrix = dataset.metric.pairwise(expected_points, centers)
        return matrix.argmin(axis=1)


class OneCenterAssignment(AssignmentPolicy):
    """Assign each uncertain point to the center nearest its own 1-center."""

    name = "one-center"

    def __init__(self, candidates: np.ndarray | None = None):
        self._candidates = candidates

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        representatives = one_center_reduction(dataset, candidates=self._candidates)
        matrix = dataset.metric.pairwise(representatives, centers)
        return matrix.argmin(axis=1)


class NearestLocationAssignment(AssignmentPolicy):
    """Assign to the center nearest the point's most probable location."""

    name = "nearest-mode-location"

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        modes = np.vstack(
            [point.locations[int(np.argmax(point.probabilities))] for point in dataset.points]
        )
        matrix = dataset.metric.pairwise(modes, centers)
        return matrix.argmin(axis=1)


class OptimalAssignment(AssignmentPolicy):
    """Best-response assignment for the *true* assigned expected cost.

    Starts from the expected-distance assignment and repeatedly moves single
    uncertain points to the center that lowers the exact assigned expected
    cost until no single move improves.  Because the objective is an
    expectation of a maximum the best response for a point depends on the
    others; single-move local search converges (the cost strictly decreases)
    but is not guaranteed to reach the global optimum — exhaustive search over
    all ``k^n`` assignments (see the brute-force baseline) provides the
    ground truth on small instances and agrees with this policy on every
    instance in the test suite.
    """

    name = "optimal-local"

    def __init__(self, max_rounds: int = 20):
        self.max_rounds = max_rounds

    def assign(self, dataset: UncertainDataset, centers: np.ndarray) -> np.ndarray:
        assignment = ExpectedDistanceAssignment().assign(dataset, centers)
        k = centers.shape[0]
        if k == 1:
            return assignment
        # Incremental exact evaluation: per candidate move, only the moved
        # point's distribution is integrated against the cached sweep of the
        # others — the union of supports is never re-sorted per move.
        evaluator = assigned_cost_evaluator(dataset, centers)
        all_centers = np.arange(k)
        best_cost = evaluator.cost(assignment)
        for _ in range(self.max_rounds):
            improved = False
            for point_index in range(dataset.size):
                current = int(assignment[point_index])
                profile = evaluator.rest_profile(assignment, point_index)
                costs = evaluator.move_costs(profile, all_centers)
                best_center = int(np.argmin(costs))
                # The tolerance is relative: when the maximum is dominated by
                # one point, moving the others leaves the cost *exactly*
                # unchanged, and an absolute threshold below one ulp would
                # accept last-bit noise as an improvement.
                tolerance = 1e-12 * max(1.0, abs(best_cost))
                if best_center != current and costs[best_center] < best_cost - tolerance:
                    assignment[point_index] = best_center
                    best_cost = float(costs[best_center])
                    improved = True
            if not improved:
                break
        return assignment


#: Registry used by the CLI and the experiment harness.
ASSIGNMENT_POLICIES: dict[str, type[AssignmentPolicy]] = {
    ExpectedDistanceAssignment.name: ExpectedDistanceAssignment,
    ExpectedPointAssignment.name: ExpectedPointAssignment,
    OneCenterAssignment.name: OneCenterAssignment,
    NearestLocationAssignment.name: NearestLocationAssignment,
    OptimalAssignment.name: OptimalAssignment,
}
