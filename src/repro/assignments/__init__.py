"""Assignment rules for the restricted assigned uncertain k-center problem."""

from .base import AssignmentPolicy
from .policies import (
    ASSIGNMENT_POLICIES,
    ExpectedDistanceAssignment,
    ExpectedPointAssignment,
    NearestLocationAssignment,
    OneCenterAssignment,
    OptimalAssignment,
)

__all__ = [
    "AssignmentPolicy",
    "ExpectedDistanceAssignment",
    "ExpectedPointAssignment",
    "OneCenterAssignment",
    "NearestLocationAssignment",
    "OptimalAssignment",
    "ASSIGNMENT_POLICIES",
]
