"""Loading uncertain points from tabular (CSV-style) data.

The paper motivates uncertain k-center with database workloads: tuples whose
attribute values are known only with uncertainty.  The natural interchange
format is a *location table*: one row per possible location, with the owning
entity, the location's probability and its coordinates — the same layout
block-factorised probabilistic databases use for discrete attribute-level
uncertainty.

``load_location_table`` / ``dump_location_table`` convert between that layout
and :class:`~repro.uncertain.dataset.UncertainDataset`:

===========  =====  ============  ======  ======
entity       prob   x0            x1      ...
===========  =====  ============  ======  ======
sensor-1     0.7    0.12          3.40
sensor-1     0.3    0.19          3.55
sensor-2     1.0    8.02          1.77
===========  =====  ============  ======  ======

Rows for the same entity are grouped in order of first appearance;
probabilities may be renormalised per entity (useful when the table stores
unnormalised confidence weights).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from .._validation import as_probability_vector
from ..exceptions import ValidationError
from ..metrics.base import Metric
from ..metrics.euclidean import EuclideanMetric
from ..uncertain.dataset import UncertainDataset
from ..uncertain.point import UncertainPoint


def dataset_from_records(
    records: Iterable[Sequence[object]],
    *,
    metric: Metric | None = None,
    normalize: bool = False,
) -> UncertainDataset:
    """Build a dataset from ``(entity, probability, *coordinates)`` records."""
    grouped: dict[str, list[tuple[float, tuple[float, ...]]]] = {}
    order: list[str] = []
    for row_number, record in enumerate(records):
        if len(record) < 3:
            raise ValidationError(
                f"row {row_number}: expected (entity, probability, coordinates...), got {record!r}"
            )
        entity = str(record[0])
        try:
            probability = float(record[1])
            coordinates = tuple(float(value) for value in record[2:])
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"row {row_number}: non-numeric probability or coordinate: {exc}") from exc
        if entity not in grouped:
            grouped[entity] = []
            order.append(entity)
        grouped[entity].append((probability, coordinates))

    if not order:
        raise ValidationError("the location table contains no rows")

    dimensions = {len(coords) for rows in grouped.values() for _, coords in rows}
    if len(dimensions) != 1:
        raise ValidationError(f"rows have inconsistent coordinate dimensions: {sorted(dimensions)}")

    points = []
    for entity in order:
        rows = grouped[entity]
        locations = np.array([coords for _, coords in rows], dtype=float)
        probabilities = as_probability_vector(
            [probability for probability, _ in rows],
            normalize=normalize,
            name=f"probabilities of entity {entity!r}",
        )
        points.append(UncertainPoint(locations=locations, probabilities=probabilities, label=entity))
    return UncertainDataset(points=tuple(points), metric=metric or EuclideanMetric())


def load_location_table(
    path: str | Path,
    *,
    metric: Metric | None = None,
    normalize: bool = False,
    delimiter: str = ",",
) -> UncertainDataset:
    """Load an uncertain dataset from a CSV location table.

    The file must have a header row whose first two columns are the entity
    identifier and the probability; every remaining column is a coordinate.
    """
    path = Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration as exc:
            raise ValidationError(f"{path} is empty") from exc
        if len(header) < 3:
            raise ValidationError(
                f"{path}: header must have at least 3 columns (entity, probability, coordinates...)"
            )
        records = [row for row in reader if row and any(cell.strip() for cell in row)]
    return dataset_from_records(records, metric=metric, normalize=normalize)


def dump_location_table(
    dataset: UncertainDataset,
    path: str | Path,
    *,
    delimiter: str = ",",
    coordinate_prefix: str = "x",
) -> None:
    """Write a dataset as a CSV location table (inverse of the loader)."""
    path = Path(path)
    dimension = dataset.dimension
    header = ["entity", "probability"] + [f"{coordinate_prefix}{axis}" for axis in range(dimension)]
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(header)
        for index, point in enumerate(dataset.points):
            label = point.label or f"P{index}"
            for location, probability in zip(point.locations, point.probabilities):
                writer.writerow([label, repr(float(probability)), *[repr(float(v)) for v in location]])
