"""Tabular (CSV) import/export of uncertain datasets."""

from .tables import dataset_from_records, dump_location_table, load_location_table

__all__ = ["dataset_from_records", "load_location_table", "dump_location_table"]
